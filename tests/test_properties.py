"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import WILDCARD, ByteBrainConfig
from repro.core.dedup import deduplicate
from repro.core.distance import cluster_similarities
from repro.core.encoding import HashEncoder, OrdinalEncoder
from repro.core.model import merge_consecutive_wildcards, template_similarity
from repro.core.saturation import profile_positions, saturation_from_profile
from repro.core.tokenizer import Tokenizer
from repro.core.tree import extract_template
from repro.evaluation.metrics import f1_grouping_accuracy, grouping_accuracy, parsing_accuracy


token_strategy = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=8,
)
token_row = st.lists(token_strategy, min_size=1, max_size=6)
log_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=0, max_size=120
)


class TestTokenizerProperties:
    @given(log_text)
    @settings(max_examples=150, deadline=None)
    def test_tokens_contain_no_delimiters(self, text):
        tokens = Tokenizer().tokenize(text)
        for token in tokens:
            assert " " not in token
            assert "=" not in token
            assert "," not in token

    @given(log_text.map(lambda text: text.replace(".", "")))
    @settings(max_examples=100, deadline=None)
    def test_tokenization_is_idempotent_on_joined_tokens(self, text):
        # Periods are excluded: a bare "." token is context-dependent (it is a
        # delimiter only before whitespace or end-of-line), so joining and
        # re-tokenizing is only guaranteed stable for period-free text.
        tokenizer = Tokenizer()
        tokens = tokenizer.tokenize(text)
        assert tokenizer.tokenize(" ".join(tokens)) == tokens


class TestEncodingProperties:
    @given(st.lists(token_strategy, min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_hash_encoding_is_deterministic_and_injective_in_practice(self, tokens):
        encoder = HashEncoder()
        first = encoder.encode_tokens(tokens)
        second = HashEncoder().encode_tokens(tokens)
        assert np.array_equal(first, second)
        distinct_tokens = len(set(tokens))
        assert len(set(first.tolist())) == distinct_tokens

    @given(st.lists(token_strategy, min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_ordinal_ids_are_dense(self, tokens):
        encoder = OrdinalEncoder()
        encoded = encoder.encode_tokens(tokens)
        assert set(encoded.tolist()) == set(range(len(set(tokens))))


class TestDedupProperties:
    @given(st.lists(token_row, min_size=0, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_counts_sum_and_inverse_reconstructs(self, rows):
        result = deduplicate(rows)
        assert sum(result.counts) == len(rows)
        assert [result.unique_tokens[i] for i in result.inverse] == [tuple(r) for r in rows]
        assert len(set(result.unique_tokens)) == len(result.unique_tokens)


class TestSaturationProperties:
    @given(st.lists(st.lists(token_strategy, min_size=3, max_size=3), min_size=1, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_saturation_is_in_unit_interval(self, rows):
        encoder = HashEncoder()
        codes = np.stack([encoder.encode_tokens(row) for row in rows])
        profile = profile_positions(codes)
        score = saturation_from_profile(profile)
        assert 0.0 <= score <= 1.0

    @given(st.lists(st.lists(token_strategy, min_size=4, max_size=4), min_size=2, max_size=10))
    @settings(max_examples=75, deadline=None)
    def test_subsets_never_less_saturated_than_needed(self, rows):
        # Shrinking a group to a single unique row always yields saturation 1.
        encoder = HashEncoder()
        codes = np.stack([encoder.encode_tokens(row) for row in rows])
        single = saturation_from_profile(profile_positions(codes, member_indices=[0]))
        assert single == 1.0


class TestDistanceProperties:
    @given(st.lists(st.lists(token_strategy, min_size=3, max_size=3), min_size=2, max_size=10))
    @settings(max_examples=75, deadline=None)
    def test_similarities_bounded_and_jit_consistent(self, rows):
        encoder = HashEncoder()
        codes = np.stack([encoder.encode_tokens(row) for row in rows])
        weights = np.ones(len(rows))
        members = list(range(len(rows) // 2 + 1))
        candidates = list(range(len(rows)))
        fast = cluster_similarities(codes, weights, members, candidates, jit_enabled=True)
        slow = cluster_similarities(codes, weights, members, candidates, jit_enabled=False)
        assert np.all(fast >= -1e-9) and np.all(fast <= 1.0 + 1e-9)
        assert np.allclose(fast, slow, atol=1e-9)


class TestTemplateProperties:
    @given(st.lists(st.lists(token_strategy, min_size=3, max_size=3), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_extracted_template_matches_every_member(self, rows):
        template = extract_template([tuple(r) for r in rows])
        for row in rows:
            for template_token, token in zip(template, row):
                assert template_token == WILDCARD or template_token == token

    @given(token_row)
    @settings(max_examples=100, deadline=None)
    def test_template_similarity_is_reflexive_and_symmetric(self, tokens):
        assert template_similarity(tokens, tokens) == 1.0
        other = list(reversed(tokens))
        assert template_similarity(tokens, other) == template_similarity(other, tokens)

    @given(st.lists(st.sampled_from(["a", "b", WILDCARD]), min_size=0, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_wildcard_merging_is_idempotent_and_never_longer(self, tokens):
        merged = merge_consecutive_wildcards(tokens)
        assert len(merged) <= len(tokens)
        assert merge_consecutive_wildcards(merged) == merged
        assert [t for t in merged if t != WILDCARD] == [t for t in tokens if t != WILDCARD]


class TestMetricProperties:
    labels = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60)

    @given(labels)
    @settings(max_examples=100, deadline=None)
    def test_metrics_are_perfect_when_prediction_equals_truth(self, truth):
        assert grouping_accuracy(truth, truth) == 1.0
        assert parsing_accuracy(truth, truth) == 1.0
        assert f1_grouping_accuracy(truth, truth) == 1.0

    @given(labels, st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_metrics_bounded_and_ordered(self, truth, rng):
        predicted = [rng.randint(0, 3) for _ in truth]
        ga = grouping_accuracy(predicted, truth)
        pa = parsing_accuracy(predicted, truth)
        f1 = f1_grouping_accuracy(predicted, truth)
        assert 0.0 <= ga <= 1.0
        assert 0.0 <= f1 <= 1.0
        assert ga <= pa <= 1.0

    @given(labels)
    @settings(max_examples=100, deadline=None)
    def test_relabelling_prediction_does_not_change_ga(self, truth):
        predicted = [label + 100 for label in truth]
        assert grouping_accuracy(predicted, truth) == 1.0


class TestParserProperty:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_parser_groups_structurally_identical_lines_together(self, seed):
        rng = np.random.default_rng(seed)
        lines = [
            f"user u{int(rng.integers(1000))} logged in from 10.0.{int(rng.integers(255))}.{int(rng.integers(255))}"
            for _ in range(60)
        ] + [f"cache flush completed in {int(rng.integers(500))} ms" for _ in range(60)]
        from repro.core.parser import ByteBrainParser

        parser = ByteBrainParser(ByteBrainConfig())
        results = parser.parse_corpus(lines)
        resolved = [parser.template_at(r.template_id, 0.6).template_id for r in results.results]
        login_groups = set(resolved[:60])
        cache_groups = set(resolved[60:])
        assert login_groups.isdisjoint(cache_groups)
