"""Parallel execution helpers (paper §3 "Parallel", §5.5.2).

The paper parallelises per-group training and per-log matching across a
small number of cores (1–5 in production).  Here the unit of parallelism is
a thread pool: the heavy inner loops are NumPy kernels that release the GIL,
so threads give a realistic speedup while keeping the in-process service
simple.  ``parallelism == 1`` reproduces *ByteBrain Sequential*.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

__all__ = ["map_parallel", "chunk", "chunk_ranges"]

T = TypeVar("T")
R = TypeVar("R")


def map_parallel(fn: Callable[[T], R], items: Sequence[T], parallelism: int = 1) -> List[R]:
    """Apply ``fn`` to every item, optionally across a thread pool.

    Results are returned in input order regardless of completion order.
    """
    if parallelism <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(parallelism, len(items))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def chunk(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-equal parts."""
    if not items:
        return [[]]
    return [list(items[start:end]) for start, end in chunk_ranges(len(items), n_chunks)]


def chunk_ranges(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """``[start, end)`` bounds splitting ``n_items`` into near-equal shards.

    The range-based twin of :func:`chunk` for sharding array-shaped work
    (e.g. packed hash matrices) without materialising per-shard item lists —
    each worker slices its block directly.
    """
    if n_items <= 0:
        return []
    if n_chunks <= 1 or n_items == 1:
        return [(0, n_items)]
    n_chunks = min(n_chunks, n_items)
    size, remainder = divmod(n_items, n_chunks)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(n_chunks):
        end = start + size + (1 if index < remainder else 0)
        ranges.append((start, end))
        start = end
    return ranges
