"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def log_file(tmp_path):
    lines = [f"worker {i} finished job {i * 7} in {i % 50} ms" for i in range(200)]
    lines += [f"worker {i} failed job {i * 3} with code {i % 5}" for i in range(100)]
    path = tmp_path / "app.log"
    path.write_text("\n".join(lines), encoding="utf-8")
    return path


class TestArgumentParsing:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_input_and_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--input", "x.log"])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.dataset == "HDFS"
        assert args.variant == "loghub"
        assert args.baselines == []


class TestTrainAndMatch:
    def test_train_writes_a_loadable_model(self, log_file, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        exit_code = main(["train", "--input", str(log_file), "--model", str(model_path)])
        assert exit_code == 0
        payload = json.loads(model_path.read_text(encoding="utf-8"))
        assert payload["templates"]
        out = capsys.readouterr().out
        assert "templates" in out

    def test_train_on_empty_file_fails_cleanly(self, tmp_path):
        empty = tmp_path / "empty.log"
        empty.write_text("\n", encoding="utf-8")
        exit_code = main(["train", "--input", str(empty), "--model", str(tmp_path / "m.json")])
        assert exit_code == 2

    def test_match_emits_one_template_per_line(self, log_file, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["train", "--input", str(log_file), "--model", str(model_path)])
        capsys.readouterr()
        exit_code = main(
            ["match", "--input", str(log_file), "--model", str(model_path), "--threshold", "0.6"]
        )
        assert exit_code == 0
        out_lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(out_lines) == 300
        assert all("\t" in line for line in out_lines)

    def test_match_threshold_controls_granularity(self, log_file, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["train", "--input", str(log_file), "--model", str(model_path)])
        capsys.readouterr()
        main(["match", "--input", str(log_file), "--model", str(model_path), "--threshold", "0.9"])
        fine = {line.split("\t")[1] for line in capsys.readouterr().out.splitlines() if "\t" in line}
        main(["match", "--input", str(log_file), "--model", str(model_path), "--threshold", "0.1"])
        coarse = {line.split("\t")[1] for line in capsys.readouterr().out.splitlines() if "\t" in line}
        assert len(coarse) <= len(fine)


class TestEvaluateAndDatasets:
    def test_evaluate_bytebrain_only(self, capsys):
        exit_code = main(["evaluate", "--dataset", "Apache", "--variant", "loghub"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "ByteBrain" in out and "Apache" in out

    def test_evaluate_with_baseline(self, capsys):
        exit_code = main(["evaluate", "--dataset", "Apache", "--baselines", "Drain"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Drain" in out

    def test_evaluate_unknown_baseline_fails(self):
        assert main(["evaluate", "--dataset", "Apache", "--baselines", "NotAParser"]) == 2

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "loghub2" in out and "HDFS" in out
