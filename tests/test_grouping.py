"""Unit tests for §4.2 initial grouping."""

from repro.core.grouping import group_key, initial_grouping


class TestGroupKey:
    def test_length_only_by_default(self):
        assert group_key(["a", "b", "c"]) == (3, ())

    def test_prefix_tokens_included(self):
        assert group_key(["a", "b", "c"], prefix_tokens=2) == (3, ("a", "b"))

    def test_prefix_longer_than_tokens(self):
        assert group_key(["a"], prefix_tokens=4) == (1, ("a",))


class TestInitialGrouping:
    def test_groups_by_token_count(self):
        groups = initial_grouping([["a", "b"], ["c", "d"], ["e"]])
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 2]

    def test_groups_by_prefix_when_requested(self):
        rows = [["GET", "x"], ["GET", "y"], ["POST", "z"]]
        groups = initial_grouping(rows, prefix_tokens=1)
        assert len(groups) == 2

    def test_member_indices_cover_all_rows(self):
        rows = [["a"], ["b", "c"], ["d"], ["e", "f"]]
        groups = initial_grouping(rows)
        all_indices = sorted(i for g in groups for i in g.member_indices)
        assert all_indices == list(range(len(rows)))

    def test_group_metadata(self):
        groups = initial_grouping([["a", "b"], ["a", "c"]], prefix_tokens=1)
        assert len(groups) == 1
        group = groups[0]
        assert group.token_count == 2
        assert group.prefix == ("a",)
        assert len(group) == 2

    def test_empty_input(self):
        assert initial_grouping([]) == []

    def test_first_seen_order(self):
        rows = [["x", "y", "z"], ["a"], ["b", "c", "d"]]
        groups = initial_grouping(rows)
        assert groups[0].token_count == 3
        assert groups[1].token_count == 1
