"""Adaptive precision for debugging: the paper's Android wakelock walkthrough.

The introduction's motivating example: the same logs need to be parsed at
different precisions depending on the task — coarse templates for monitoring
dashboards, fine templates (separating ``name=systemui`` from
``name=audioserver``, or ``ws=null`` from concrete worksources) when chasing
a specific bug.  ByteBrain trains once and lets the threshold do the rest.

Run with:  python examples/adaptive_debugging.py
"""

from __future__ import annotations

from repro import ByteBrainParser
from repro.datasets.synthetic import generate_android_wakelock


def main() -> None:
    corpus = generate_android_wakelock(n_logs=4_000)
    parser = ByteBrainParser()
    results = parser.parse_corpus(corpus.lines)
    print(f"trained on {corpus.n_logs} wakelock logs -> {len(parser.model)} templates\n")

    # Table 4 of the paper: the same stream at four precision levels.
    for threshold in (0.05, 0.78, 0.9, 0.95):
        groups = parser.group_results(results.results, threshold)
        print(f"saturation >= {threshold}: {len(groups)} templates")
        for group in groups[:6]:
            print(f"   {group.count:5d}  {group.display_text}")
        print()

    # Debugging workflow: zoom into one coarse group and inspect its most
    # precise sub-templates (e.g. to spot an unexpected holder of a lock).
    coarse = parser.group_results(results.results, threshold=0.05)[0]
    print(f"zooming into coarse group: '{coarse.display_text}' ({coarse.count} logs)")
    precise = parser.group_results(results.results, threshold=0.95)
    children = [g for g in precise if "lock" in g.display_text]
    for group in children[:8]:
        print(f"   {group.count:5d}  {group.display_text}")


if __name__ == "__main__":
    main()
