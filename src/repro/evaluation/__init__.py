"""Evaluation harness: metrics, runners, ablations and report rendering.

These are the pieces the benchmark suite (``benchmarks/``) composes to
regenerate every table and figure of the paper's evaluation section.
"""

from repro.evaluation.metrics import (
    grouping_accuracy,
    f1_grouping_accuracy,
    parsing_accuracy,
    throughput,
)
from repro.evaluation.runner import EvaluationRun, ByteBrainRunner, BaselineRunner, evaluate_parser

__all__ = [
    "grouping_accuracy",
    "f1_grouping_accuracy",
    "parsing_accuracy",
    "throughput",
    "EvaluationRun",
    "ByteBrainRunner",
    "BaselineRunner",
    "evaluate_parser",
]
