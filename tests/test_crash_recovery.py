"""Crash-injection matrix for the WAL + recovery subsystem.

A child process (``tests/crash_child.py``) drives a real sharded-runtime
workload with the WAL enabled and SIGKILLs itself mid-round, mid-swap or
mid-segment-rotation.  The parent then recovers from what is left on disk
and asserts the durability contract:

* every acknowledged record is restored **exactly once** — either
  captured by the loaded snapshot (seq <= the snapshot's ``wal_seq``) or
  replayed into topic storage, never both, never lost, never duplicated;
* template-id allocation never collides: every record's template id
  resolves in the recovered model, and training keeps working afterwards.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import ByteBrainConfig
from repro.service.recovery import RecoveredRuntime

pytestmark = pytest.mark.slow

TOPICS = ("checkout", "payments")
CHILD = Path(__file__).resolve().parent / "crash_child.py"
REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def run_child(tmp_path, kill_at, records=400, **extra_args):
    store = tmp_path / "store"
    wal_dir = tmp_path / "wal"
    ack_file = tmp_path / "acks.log"
    argv = [
        sys.executable,
        str(CHILD),
        "--store", str(store),
        "--wal-dir", str(wal_dir),
        "--ack-file", str(ack_file),
        "--kill-at", kill_at,
        "--records", str(records),
    ]
    for flag, value in extra_args.items():
        argv += [f"--{flag.replace('_', '-')}", str(value)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(argv, capture_output=True, text=True, env=env, timeout=180)
    return store, wal_dir, ack_file, result


def read_acks(ack_file):
    """Acknowledged (topic -> set of record indices); tolerates a torn final line."""
    acks = {topic: set() for topic in TOPICS}
    if not ack_file.exists():
        return acks
    payload = ack_file.read_bytes().decode("utf-8", errors="replace")
    # The final element is either "" (clean newline) or a torn partial
    # line from the instant of death — drop it either way.
    for line in payload.split("\n")[:-1]:
        parts = line.split("\t")
        if len(parts) == 2 and parts[0] in acks and parts[1].isdigit():
            acks[parts[0]].add(int(parts[1]))
    return acks


def raw_line(topic, i):
    return f"{topic} request {i} served for user {i % 13} with latency {i % 450}"


def assert_exactly_once(service, report, acks):
    """The heart of the matrix: acked records restored exactly once."""
    for topic in TOPICS:
        engine = service.topic(topic)
        recovery = next(t for t in report.topics if t.topic == topic)
        captured = recovery.captured_seq
        stored = [record.raw for record in engine.topic.records()]
        counts = {}
        for raw in stored:
            counts[raw] = counts.get(raw, 0) + 1
        # No record restored twice.
        duplicates = {raw: n for raw, n in counts.items() if n > 1}
        assert not duplicates, f"{topic}: records restored more than once: {duplicates}"
        unacked_extras = 0
        for i in sorted(acks[topic]):
            raw = raw_line(topic, i)
            if i < captured:
                # Captured by the snapshot: its template knowledge is in
                # the loaded model; replaying it too would double-count.
                assert raw not in counts, f"{topic}: captured record {i} also replayed"
            else:
                assert counts.get(raw, 0) == 1, f"{topic}: acked record {i} lost"
        # Records in storage but never acked can only be the (at most one)
        # submit in flight when the process died — the child ingests each
        # topic single-threaded.
        acked_raws = {raw_line(topic, i) for i in acks[topic]}
        unacked_extras = sum(1 for raw in counts if raw not in acked_raws)
        assert unacked_extras <= 1, f"{topic}: {unacked_extras} unacknowledged extras"


def assert_template_ids_consistent(service):
    for topic in TOPICS:
        engine = service.topic(topic)
        model = engine.parser.model
        ids = [t.template_id for t in model.templates()]
        assert len(ids) == len(set(ids))
        if engine.parser.is_trained:
            for record in engine.topic.records():
                if record.template_id is not None:
                    assert record.template_id in model, (
                        f"{topic}: record {record.record_id} references template "
                        f"{record.template_id} missing from the recovered model"
                    )
        # Training after recovery must keep working (a colliding id
        # allocation would raise or mis-attribute here).
        engine.train_now(now=10**6)
        assert engine.trained_watermark == engine.topic.high_watermark


@pytest.mark.parametrize("kill_at", ["mid_round", "mid_swap", "mid_rotation"])
def test_crash_matrix_restores_acked_records_exactly_once(tmp_path, kill_at):
    extra = {"segment_bytes": 4096} if kill_at == "mid_rotation" else {}
    store, wal_dir, ack_file, result = run_child(tmp_path, kill_at, **extra)
    assert result.returncode == -9, (
        f"child should die from SIGKILL at {kill_at}, got rc={result.returncode}\n"
        f"stdout: {result.stdout}\nstderr: {result.stderr}"
    )
    acks = read_acks(ack_file)
    assert any(acks.values()), "child died before acknowledging anything"

    recovered = RecoveredRuntime.open(
        store, wal_dir, config=ByteBrainConfig(), start_runtime=False
    )
    assert recovered.report.warnings == []
    assert_exactly_once(recovered.service, recovered.report, acks)
    assert_template_ids_consistent(recovered.service)


def test_clean_shutdown_control_case(tmp_path):
    store, wal_dir, ack_file, result = run_child(tmp_path, "none", records=250)
    assert result.returncode == 0, result.stderr
    acks = read_acks(ack_file)
    assert all(len(acks[topic]) == 250 for topic in TOPICS)

    recovered = RecoveredRuntime.open(
        store, wal_dir, config=ByteBrainConfig(), start_runtime=False
    )
    assert recovered.report.warnings == []
    assert_exactly_once(recovered.service, recovered.report, acks)
    for entry in recovered.report.topics:
        # Clean run: the initial round's snapshot captured a prefix, the
        # rest replays; nothing is torn.
        assert entry.captured_seq + entry.replayed_records == 250
    assert recovered.report.torn_segments == 0


def test_disk_error_mid_append_keeps_acked_records(tmp_path, monkeypatch):
    """Crash-matrix extension: a WAL disk error mid-append (injected via
    the failpoint harness, armed in the child through the environment)
    fails the in-flight submit; the child dies on the unhandled error and
    recovery restores exactly the acknowledged prefix."""
    monkeypatch.setenv("REPRO_FAILPOINTS", "wal.append:raise:nth=137")
    store, wal_dir, ack_file, result = run_child(tmp_path, "none", records=400)
    assert result.returncode == 1, (result.returncode, result.stderr[-500:])
    assert "FailpointError" in result.stderr
    acks = read_acks(ack_file)
    assert any(acks.values()), "child died before acknowledging anything"
    assert sum(len(v) for v in acks.values()) < 800  # it did die mid-run

    recovered = RecoveredRuntime.open(
        store, wal_dir, config=ByteBrainConfig(), start_runtime=False
    )
    assert recovered.report.warnings == []
    assert_exactly_once(recovered.service, recovered.report, acks)
    assert_template_ids_consistent(recovered.service)


def test_recovered_runtime_resumes_and_rounds_keep_training(tmp_path):
    """Recovery is not read-only: the reopened runtime ingests, trains and
    persists with continuing sequence numbers."""
    store, wal_dir, ack_file, result = run_child(tmp_path, "mid_round", records=300)
    assert result.returncode == -9
    with RecoveredRuntime.open(
        store, wal_dir, config=ByteBrainConfig(), start_runtime=True, n_shards=2
    ) as recovered:
        before = {t: len(recovered.service.topic(t).topic) for t in TOPICS}
        for i in range(1000, 1200):
            for topic in TOPICS:
                recovered.runtime.submit(topic, raw_line(topic, i), timestamp=float(i))
        recovered.runtime.drain()
        assert recovered.runtime.errors == []
        for topic in TOPICS:
            assert len(recovered.service.topic(topic).topic) == before[topic] + 200
        assert_template_ids_consistent(recovered.service)
