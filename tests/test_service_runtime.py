"""Concurrency tests for the ShardedRuntime: no lost records, monotonic
watermarks, consistent reads during off-path training, backpressure and
graceful shutdown."""

import threading

import pytest

from repro.core.config import ByteBrainConfig
from repro.service.runtime import ShardedRuntime
from repro.service.scheduler import SchedulerPolicy
from repro.service.service import LogParsingService

TOPICS = ("checkout", "payments", "auth")


def make_service(volume_threshold=400, initial=100):
    return LogParsingService(
        config=ByteBrainConfig(),
        scheduler_policy=SchedulerPolicy(
            volume_threshold=volume_threshold,
            time_interval_seconds=10**9,
            initial_volume_threshold=initial,
        ),
    )


def line_for(topic, i):
    # Every variable is a bare number, so masking preserves token count
    # (the reader asserts matched templates have the probe's length).
    return f"{topic} request {i} served for user {i % 13} with latency {i % 450}"


class TestIngestionCorrectness:
    def test_no_lost_records_across_topics_and_shards(self):
        service = make_service()
        for topic in TOPICS:
            service.create_topic(topic)
        n_per_topic = 800
        with ShardedRuntime(service, n_shards=2, micro_batch_size=64, max_batch_delay=0.005) as runtime:
            for i in range(n_per_topic):
                for topic in TOPICS:
                    runtime.submit(topic, line_for(topic, i), timestamp=float(i))
            runtime.drain()
            assert runtime.errors == []
            for topic in TOPICS:
                assert len(service.topic(topic).topic) == n_per_topic

    def test_per_topic_order_and_timestamps_preserved(self):
        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        with ShardedRuntime(service, n_shards=2, micro_batch_size=32) as runtime:
            for i in range(500):
                runtime.submit("checkout", f"record {i}", timestamp=float(i))
            runtime.drain()
        records = service.topic("checkout").topic.records()
        assert [r.raw for r in records] == [f"record {i}" for i in range(500)]
        assert [r.timestamp for r in records] == [float(i) for i in range(500)]

    def test_training_rounds_run_off_path(self):
        service = make_service(volume_threshold=300, initial=100)
        for topic in TOPICS:
            service.create_topic(topic)
        with ShardedRuntime(service, n_shards=2, micro_batch_size=64) as runtime:
            for i in range(1200):
                for topic in TOPICS:
                    runtime.submit(topic, line_for(topic, i), timestamp=float(i))
            runtime.drain()
            assert runtime.errors == []
            stats = runtime.stats()
        assert stats["rounds_dispatched"] >= len(TOPICS)
        for topic in TOPICS:
            engine = service.topic(topic)
            assert engine.scheduler.training_rounds >= 1
            assert len(engine.parser.model) > 0

    def test_unknown_topic_rejected_at_submit(self):
        service = make_service()
        with ShardedRuntime(service, n_shards=1) as runtime:
            with pytest.raises(KeyError):
                runtime.submit("nope", "a record", timestamp=0.0)

    def test_submit_after_shutdown_raises(self):
        service = make_service()
        service.create_topic("checkout")
        runtime = ShardedRuntime(service, n_shards=1)
        runtime.shutdown()
        with pytest.raises(RuntimeError):
            runtime.submit("checkout", "a record", timestamp=0.0)

    def test_backpressure_with_tiny_queue(self):
        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        with ShardedRuntime(
            service, n_shards=1, micro_batch_size=8, max_batch_delay=0.0, queue_capacity=4
        ) as runtime:
            for i in range(400):
                runtime.submit("checkout", f"record number {i} of many", timestamp=float(i))
            runtime.drain()
        assert len(service.topic("checkout").topic) == 400

    def test_topic_to_shard_assignment_is_stable(self):
        service = make_service()
        runtime = ShardedRuntime(service, n_shards=4)
        try:
            assert runtime.shard_of("checkout") == runtime.shard_of("checkout")
            assert 0 <= runtime.shard_of("anything") < 4
        finally:
            runtime.shutdown()


class TestConcurrentStress:
    def test_concurrent_producers_training_and_queries(self):
        """Multiple producers + off-path rounds + concurrent readers: no lost
        records, monotonically increasing watermarks, and queries/matches
        never observe a half-swapped model."""
        service = make_service(volume_threshold=250, initial=100)
        for topic in TOPICS:
            service.create_topic(topic)
        # Seed a first model per topic so readers can match immediately.
        for topic in TOPICS:
            service.ingest_batch(topic, [line_for(topic, i) for i in range(150)], now=0.0)
            service.train_now(topic, now=0.0)
        seeded = {topic: len(service.topic(topic).topic) for topic in TOPICS}

        runtime = ShardedRuntime(service, n_shards=2, micro_batch_size=64, max_batch_delay=0.002)
        n_per_producer = 600
        errors = []
        watermarks = {topic: [] for topic in TOPICS}
        stop = threading.Event()

        def producer(topic):
            try:
                for i in range(n_per_producer):
                    runtime.submit(topic, line_for(topic, 1000 + i), timestamp=float(i))
            except Exception as error:  # noqa: BLE001 - the assertion target
                errors.append(f"producer: {error!r}")

        def reader():
            probe = {topic: line_for(topic, 55) for topic in TOPICS}
            while not stop.is_set():
                for topic in TOPICS:
                    try:
                        result = service.match(topic, probe[topic])
                        if result.template_id != -1 and len(result.template.tokens) != len(
                            probe[topic].split()
                        ):
                            errors.append("matched template of the wrong length")
                        groups = service.query_templates(topic, threshold=0.6)
                        if not groups:
                            errors.append("query returned no groups")
                        watermarks[topic].append(service.topic(topic).trained_watermark)
                    except Exception as error:  # noqa: BLE001 - the assertion target
                        errors.append(f"reader: {error!r}")
                        stop.set()

        producers = [threading.Thread(target=producer, args=(topic,)) for topic in TOPICS]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers + producers:
            thread.start()
        for thread in producers:
            thread.join(timeout=60)
        runtime.drain()
        stop.set()
        for thread in readers:
            thread.join(timeout=10)
        runtime.shutdown()

        assert not errors, errors[:5]
        assert runtime.errors == []
        for topic in TOPICS:
            engine = service.topic(topic)
            # No lost records.
            assert len(engine.topic) == seeded[topic] + n_per_producer
            # Watermarks only ever move forward.
            observed = watermarks[topic]
            assert observed == sorted(observed)
            # The engine's invariant holds after the dust settles.
            assert 0 <= engine.trained_watermark <= engine.topic.high_watermark

    def test_drain_then_more_traffic_then_drain(self):
        service = make_service(volume_threshold=200, initial=100)
        service.create_topic("checkout")
        with ShardedRuntime(service, n_shards=1, micro_batch_size=32) as runtime:
            for round_index in range(3):
                for i in range(300):
                    runtime.submit(
                        "checkout", line_for("checkout", round_index * 1000 + i), timestamp=float(i)
                    )
                runtime.drain()
                assert len(service.topic("checkout").topic) == (round_index + 1) * 300
            assert runtime.errors == []


class TestWorkerFailurePropagation:
    def test_dead_worker_raises_on_next_drain(self):
        # Regression: a shard worker dying mid-batch used to leave its
        # queue undrained silently — drain() would spin forever.
        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        runtime = ShardedRuntime(service, n_shards=1, micro_batch_size=8)

        def explode(shard_index, batch):
            raise ValueError("worker exploded mid-batch")

        runtime._process_batch = explode
        runtime.submit("checkout", "a record", timestamp=0.0)
        with pytest.raises(RuntimeError, match="shard worker died"):
            runtime.drain()
        assert any("worker died" in error for error in runtime.errors)
        runtime.shutdown(drain=False)

    def test_producers_error_out_after_worker_death(self):
        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        runtime = ShardedRuntime(service, n_shards=1, micro_batch_size=8)

        def explode(shard_index, batch):
            raise ValueError("boom")

        runtime._process_batch = explode
        runtime.submit("checkout", "a record", timestamp=0.0)
        with pytest.raises(RuntimeError):
            runtime.drain()
        # The dead shard's queue is closed: producers fail fast instead of
        # blocking on backpressure against a worker that will never drain.
        with pytest.raises(RuntimeError):
            runtime.submit("checkout", "another record", timestamp=1.0)
        runtime.shutdown(drain=False)

    def test_shutdown_with_drain_still_stops_workers_on_failure(self):
        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        runtime = ShardedRuntime(service, n_shards=2, micro_batch_size=8)

        def explode(shard_index, batch):
            raise ValueError("boom")

        runtime._process_batch = explode
        runtime.submit("checkout", "a record", timestamp=0.0)
        with pytest.raises(RuntimeError, match="shard worker died"):
            runtime.shutdown()  # drain raises, but workers must still stop
        for worker in runtime._workers:
            worker.join(timeout=5.0)
            assert not worker.is_alive()


class TestWalIntegration:
    def test_submit_many_logs_one_frame_per_batch(self, tmp_path):
        from repro.service.wal import read_segment

        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        with ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal") as runtime:
            runtime.submit_many(
                "checkout", [f"record {i}" for i in range(64)], timestamp=1.0
            )
            runtime.drain()
            shard = runtime.wal.shard(runtime.shard_of("checkout"))
            frames, info = read_segment(shard.segments()[-1])
        assert info.n_frames == 1  # one CRC-framed batch, not 64 frames
        assert info.n_records == 64
        assert [r.seq for r in frames[0]] == list(range(1, 65))

    def test_reopening_existing_wal_without_recovery_refused(self, tmp_path):
        # Regression: a fresh runtime over an old log would restart seqs
        # at 1, and replay's first-occurrence dedup would then drop the
        # new run's acknowledged records in favour of the old ones.
        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        with ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal") as runtime:
            runtime.submit("checkout", "a record", timestamp=0.0)
            runtime.drain()
        with pytest.raises(RuntimeError, match="RecoveredRuntime"):
            ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal")

    def test_reopening_wal_that_never_logged_is_fine(self, tmp_path):
        # Magic-only segments (opened shards, zero records) are not state:
        # a plain reopen must not be forced through recovery.
        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        with ShardedRuntime(service, n_shards=2, wal_dir=tmp_path / "wal"):
            pass
        with ShardedRuntime(service, n_shards=2, wal_dir=tmp_path / "wal") as runtime:
            runtime.submit("checkout", "a record", timestamp=0.0)
            runtime.drain()
        assert len(service.topic("checkout").topic) == 1

    def test_wal_and_wal_dir_are_mutually_exclusive(self, tmp_path):
        from repro.service.wal import WriteAheadLog

        service = make_service()
        with pytest.raises(ValueError):
            ShardedRuntime(
                service,
                wal=WriteAheadLog(tmp_path / "a"),
                wal_dir=tmp_path / "b",
            )

    def test_concurrent_producers_keep_seq_record_id_mapping(self, tmp_path):
        # Regression: seq allocation, WAL append and enqueue must be one
        # atomic step — otherwise two producers to the same topic can
        # interleave (seq N+1 stored at a lower record id than seq N),
        # and recovery would restore records against the wrong coverage.
        from repro.service.wal import WriteAheadLog

        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        n_threads, per_thread = 4, 400
        with ShardedRuntime(
            service, n_shards=1, micro_batch_size=64, wal_dir=tmp_path / "wal"
        ) as runtime:
            def produce(worker):
                for i in range(per_thread):
                    runtime.submit("checkout", f"w{worker} record {i}", timestamp=float(i))

            producers = [threading.Thread(target=produce, args=(w,)) for w in range(n_threads)]
            for thread in producers:
                thread.start()
            for thread in producers:
                thread.join(timeout=60)
            runtime.drain()
            assert runtime.errors == []
        stored = [r.raw for r in service.topic("checkout").topic.records()]
        assert len(stored) == n_threads * per_thread
        by_topic, _ = WriteAheadLog(tmp_path / "wal").replay_records()
        logged = by_topic["checkout"]
        assert [r.seq for r in logged] == list(range(1, len(stored) + 1))
        # seq = record_id + 1: the log and storage agree record by record.
        assert [r.raw for r in logged] == stored

    def test_snapshot_coverage_never_claims_unlogged_records(self, tmp_path):
        # Facade writes bypass the WAL (forbidden but possible); the
        # snapshot watermark must clamp to what was actually logged, or
        # recovery would skip durable acknowledged records.
        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        with ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal") as runtime:
            for i in range(10):
                runtime.submit("checkout", f"record {i}", timestamp=float(i))
            runtime.drain()
            assert runtime._seq_of_watermark("checkout", 10) == 10
            # A watermark counting un-logged (facade-ingested) records
            # clamps to the highest logged seq.
            assert runtime._seq_of_watermark("checkout", 50) == 10

    def test_stats_report_wal_state(self, tmp_path):
        service = make_service(volume_threshold=10**9, initial=10**9)
        service.create_topic("checkout")
        with ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal") as runtime:
            runtime.submit("checkout", "a record", timestamp=0.0)
            runtime.drain()
            stats = runtime.stats()
        assert stats["wal"]["sync_mode"] == "batch"
        assert stats["wal"]["captured"] == {}
        with ShardedRuntime(service, n_shards=1) as wal_free:
            assert wal_free.stats()["wal"] is None


class TestShardQueueGuards:
    def test_put_raises_when_closed_and_full(self):
        # Regression: a producer blocked on backpressure must error out
        # after shutdown instead of spinning forever against a stopped
        # worker.
        from repro.service.runtime import _ShardQueue

        q = _ShardQueue(capacity=1)
        q.put("a")
        q.closed = True
        with pytest.raises(RuntimeError):
            q.put("b")
