"""Incremental-vs-full training round benchmark (machine-readable).

Simulates the production retraining story (paper §3/§6): a topic trains a
base model on the first half of a corpus, the corpus then grows 2x under
ingest (the second half, which includes templates never seen in the base
half), and a new training round must fold the growth into the model.

Two round implementations are timed over the *same* live model and delta:

* ``full_retrain`` — the seed behaviour: re-cluster the whole 2x corpus
  with :class:`OfflineTrainer` and merge the result into the live model
  (``IncrementalTrainer`` with ``force_full=True``).
* ``incremental`` — :class:`IncrementalTrainer`: reuse the ingest-time
  template assignments (the indexing pipeline matched every record when it
  arrived), cluster only the unexplained residue, and fold it in via the
  saturation-weighted ``merge_from``.

Ingest-time matching of the delta is timed separately (``ingest_match``):
both architectures pay it on the ingest path, so it is not part of either
round's latency — exactly the paper's accounting, where template ids are
computed alongside the text index before records hit topic storage.

Template quality is compared by matching the full 2x corpus with each
round's model and scoring Grouping Accuracy against the synthetic ground
truth; the benchmark asserts GA parity within one point and a >= 3x round
latency advantage, and writes ``BENCH_incremental.json``.  Run from the
repo root::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--n-base 60000]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.config import ByteBrainConfig
from repro.core.incremental import IncrementalRound, IncrementalTrainer
from repro.core.matcher import OnlineMatcher
from repro.core.model import ParserModel
from repro.core.trainer import OfflineTrainer
from repro.datasets.catalog import SYSTEM_SPECS
from repro.datasets.synthetic import SyntheticLogGenerator
from repro.evaluation.metrics import grouping_accuracy

DEFAULT_N_BASE = 60_000
#: Number of ground-truth templates withheld from the base half — the
#: delta is mostly known traffic plus a batch of genuinely novel log
#: statements shipping mid-stream (the §6 production scenario).
NOVEL_TEMPLATE_COUNT = 24
#: Frequency rank (descending) at which the withheld templates start; the
#: heaviest hitters stay in the base half so it still covers the bulk.
NOVEL_RANK_START = 40


def build_split_corpus(
    n_base: int, system: str = "Spark"
) -> Tuple[List[str], List[int], List[str], List[str], List[int]]:
    """A 2x corpus split so some templates appear only in the delta half.

    ``NOVEL_TEMPLATE_COUNT`` mid-frequency ground-truth templates are
    withheld from the base half entirely.  Returns ``(all_lines,
    all_truth, base_lines, delta_lines, delta_truth)`` where ``all_lines =
    base_lines + delta_lines`` (the benchmark's "2x-grown corpus") and the
    base half contains no line of the withheld templates.
    """
    generator = SyntheticLogGenerator(SYSTEM_SPECS[system])
    dataset = generator.generate(n_logs=2 * n_base, variant="loghub2")

    frequency: Dict[int, int] = {}
    for label in dataset.ground_truth:
        frequency[label] = frequency.get(label, 0) + 1
    by_rank = sorted(frequency, key=lambda label: (-frequency[label], label))
    novel = set(by_rank[NOVEL_RANK_START : NOVEL_RANK_START + NOVEL_TEMPLATE_COUNT])

    base_lines: List[str] = []
    base_truth: List[int] = []
    overflow: List[Tuple[str, int]] = []
    for line, label in zip(dataset.lines, dataset.ground_truth):
        if label not in novel and len(base_lines) < n_base:
            base_lines.append(line)
            base_truth.append(label)
        else:
            overflow.append((line, label))
    delta_lines = [line for line, _ in overflow]
    delta_truth = [label for _, label in overflow]

    all_lines = base_lines + delta_lines
    all_truth = base_truth + delta_truth
    return all_lines, all_truth, base_lines, delta_lines, delta_truth


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def model_grouping_accuracy(
    model: ParserModel, config: ByteBrainConfig, lines: List[str], truth: List[int]
) -> float:
    """GA of matching the whole corpus against (a clone of) ``model``."""
    matcher = OnlineMatcher(model.clone(), config=config)
    predicted = [result.template_id for result in matcher.match_many(lines)]
    return grouping_accuracy(predicted, truth)


def run(n_base: int = DEFAULT_N_BASE, output: Optional[Path] = None) -> Dict[str, object]:
    config = ByteBrainConfig()
    all_lines, all_truth, base_lines, delta_lines, _ = build_split_corpus(n_base)

    base_seconds, base_training = _timed(lambda: OfflineTrainer(config).train(base_lines))

    # Ingest path: the pipeline matches every delta record as it arrives
    # (unmatched records become temporary templates on the live model).
    live_matcher = OnlineMatcher(base_training.model.clone(), config=config)
    ingest_seconds, delta_results = _timed(lambda: live_matcher.match_many(delta_lines))
    delta_ids = [result.template_id for result in delta_results]
    live_model = live_matcher.model

    def incremental_round() -> IncrementalRound:
        return IncrementalTrainer(config).round(
            live_model,
            delta_lines,
            delta_template_ids=delta_ids,
            full_corpus=lambda: all_lines,
        )

    def full_round() -> IncrementalRound:
        return IncrementalTrainer(config).round(
            live_model,
            delta_lines,
            full_corpus=lambda: all_lines,
            force_full=True,
        )

    incremental_seconds, incremental = _timed(incremental_round)
    full_seconds, full = _timed(full_round)
    if incremental.mode != "incremental":
        raise AssertionError(f"expected an incremental round, got {incremental.mode!r}")

    speedup = full_seconds / incremental_seconds if incremental_seconds > 0 else float("inf")
    ga = {
        "base_model": model_grouping_accuracy(base_training.model, config, all_lines, all_truth),
        "incremental": model_grouping_accuracy(incremental.model, config, all_lines, all_truth),
        "full_retrain": model_grouping_accuracy(full.model, config, all_lines, all_truth),
    }
    parity_points = abs(ga["incremental"] - ga["full_retrain"]) * 100.0

    report: Dict[str, object] = {
        "benchmark": "bench_incremental",
        "corpus": {
            "system": "Spark",
            "variant": "loghub2",
            "n_base": len(base_lines),
            "n_delta": len(delta_lines),
            "n_total": len(all_lines),
            "novel_templates": NOVEL_TEMPLATE_COUNT,
        },
        "base_train_seconds": round(base_seconds, 4),
        "ingest_match_seconds": round(ingest_seconds, 4),
        "rounds": {
            "incremental": {
                "seconds": round(incremental_seconds, 4),
                "mode": incremental.mode,
                "reason": incremental.reason,
                "n_reused": incremental.n_reused,
                "n_clustered": incremental.n_clustered,
                "n_templates_merged": incremental.n_templates_merged,
                "n_templates_inserted": incremental.n_templates_inserted,
                "n_templates_after": len(incremental.model),
            },
            "full_retrain": {
                "seconds": round(full_seconds, 4),
                "mode": full.mode,
                "n_clustered": full.n_clustered,
                "n_templates_after": len(full.model),
            },
        },
        "speedup_incremental_vs_full": round(speedup, 2),
        "grouping_accuracy": {name: round(value, 4) for name, value in ga.items()},
        "ga_parity_points": round(parity_points, 3),
        "meets_3x_speedup": speedup >= 3.0,
        "meets_ga_parity_1pct": parity_points <= 1.0,
    }
    if not report["meets_3x_speedup"]:
        raise AssertionError(f"incremental round only {speedup:.2f}x faster than full retrain")
    if not report["meets_ga_parity_1pct"]:
        raise AssertionError(f"GA parity violated: {parity_points:.2f} points apart")
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-base", type=int, default=DEFAULT_N_BASE)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_incremental.json",
    )
    args = parser.parse_args()
    report = run(n_base=args.n_base, output=args.output)
    print(f"corpus: {report['corpus']}")
    for name, data in report["rounds"].items():
        print(f"  {name:>14}: {data['seconds']:.3f}s  ({data})")
    print(f"speedup: {report['speedup_incremental_vs_full']}x")
    print(f"grouping accuracy: {report['grouping_accuracy']}")
    print(f"written: {args.output}")


if __name__ == "__main__":
    main()
