"""Unit tests for §4.8 online matching."""

import pytest

from repro.core.config import ByteBrainConfig
from repro.core.matcher import OnlineMatcher, TemplateMatchIndex
from repro.core.model import ParserModel, Template
from repro.core.trainer import OfflineTrainer


WILD = "<*>"


@pytest.fixture()
def trained():
    lines = []
    for i in range(50):
        lines.append(f"Accepted password for user{i % 7} from 10.0.0.{i % 250} port {3000 + i} ssh2")
        lines.append(f"Failed password for user{i % 7} from 10.0.0.{i % 250} port {4000 + i} ssh2")
        lines.append(f"Connection closed by 10.0.0.{i % 250}")
    trainer = OfflineTrainer()
    result = trainer.train(lines)
    return trainer, result


class TestTemplateMatchIndex:
    def test_matches_exact_template(self):
        model = ParserModel()
        model.add_template(Template(0, ("a", WILD, "c"), 1.0, None, 0))
        index = TemplateMatchIndex(model)
        assert index.match(("a", "value", "c")) == 0

    def test_prefers_higher_saturation(self):
        model = ParserModel()
        model.add_template(Template(0, ("a", WILD), 0.4, None, 0))
        model.add_template(Template(1, ("a", "b"), 1.0, 0, 1))
        index = TemplateMatchIndex(model)
        assert index.match(("a", "b")) == 1
        assert index.match(("a", "z")) == 0

    def test_no_match_for_unknown_length(self):
        model = ParserModel()
        model.add_template(Template(0, ("a", "b"), 1.0, None, 0))
        index = TemplateMatchIndex(model)
        assert index.match(("a", "b", "c")) is None

    def test_no_match_for_different_constants(self):
        model = ParserModel()
        model.add_template(Template(0, ("a", "b"), 1.0, None, 0))
        index = TemplateMatchIndex(model)
        assert index.match(("x", "y")) is None


class TestOnlineMatcher:
    def test_matches_trained_log(self, trained):
        trainer, result = trained
        matcher = OnlineMatcher(result.model, preprocessor=trainer.preprocessor)
        outcome = matcher.match("Accepted password for user3 from 10.0.0.9 port 3111 ssh2")
        assert not outcome.is_new_template
        assert "Accepted password for" in outcome.template_text

    def test_acquire_release_distinguished(self, trained):
        trainer, result = trained
        matcher = OnlineMatcher(result.model, preprocessor=trainer.preprocessor)
        accepted = matcher.match("Accepted password for user1 from 10.0.0.2 port 3500 ssh2")
        failed = matcher.match("Failed password for user1 from 10.0.0.2 port 3500 ssh2")
        assert accepted.template_id != failed.template_id

    def test_unseen_log_becomes_temporary_template(self, trained):
        trainer, result = trained
        matcher = OnlineMatcher(result.model, preprocessor=trainer.preprocessor)
        before = len(result.model)
        outcome = matcher.match("kernel panic: unable to mount root filesystem on vda1")
        assert outcome.is_new_template
        assert outcome.template.is_temporary
        assert len(result.model) == before + 1
        # The same unseen log now matches its temporary template.
        again = matcher.match("kernel panic: unable to mount root filesystem on vda1")
        assert not again.is_new_template
        assert again.template_id == outcome.template_id

    def test_temporary_insertion_can_be_disabled(self, trained):
        trainer, result = trained
        config = ByteBrainConfig(insert_unmatched_as_temporary=False)
        matcher = OnlineMatcher(result.model, config=config, preprocessor=trainer.preprocessor)
        before = len(result.model)
        outcome = matcher.match("completely novel structure never seen before at all")
        assert outcome.template_id == -1
        assert len(result.model) == before

    def test_match_many_agrees_with_match(self, trained):
        trainer, result = trained
        lines = [
            "Accepted password for user5 from 10.0.0.77 port 3999 ssh2",
            "Connection closed by 10.0.0.8",
            "Failed password for user2 from 10.0.0.14 port 4020 ssh2",
            "Accepted password for user5 from 10.0.0.77 port 3999 ssh2",
        ]
        matcher_a = OnlineMatcher(result.model, preprocessor=trainer.preprocessor)
        batch = [r.template_id for r in matcher_a.match_many(lines)]
        matcher_b = OnlineMatcher(result.model, preprocessor=trainer.preprocessor)
        single = [matcher_b.match(line).template_id for line in lines]
        assert batch == single

    def test_match_many_duplicates_share_template(self, trained):
        trainer, result = trained
        matcher = OnlineMatcher(result.model, preprocessor=trainer.preprocessor)
        lines = ["Connection closed by 10.0.0.99"] * 5
        ids = {r.template_id for r in matcher.match_many(lines)}
        assert len(ids) == 1

    def test_parallel_matching_matches_sequential(self, trained):
        trainer, result = trained
        lines = [
            f"Accepted password for user{i % 7} from 10.0.0.{i % 100} port {5000 + i} ssh2"
            for i in range(200)
        ]
        sequential = OnlineMatcher(result.model, preprocessor=trainer.preprocessor).match_many(lines)
        parallel_matcher = OnlineMatcher(
            result.model,
            config=ByteBrainConfig(parallelism=4),
            preprocessor=trainer.preprocessor,
        )
        parallel = parallel_matcher.match_many(lines)
        assert [r.template_id for r in sequential] == [r.template_id for r in parallel]

    def test_naive_matching_uses_training_assignments(self, trained):
        trainer, result = trained
        config = ByteBrainConfig(matching_strategy="naive")
        matcher = OnlineMatcher(
            result.model,
            config=config,
            preprocessor=trainer.preprocessor,
            training_assignments=result.training_assignments,
        )
        line = "Accepted password for user3 from 10.0.0.9 port 3111 ssh2"
        tokens = trainer.preprocessor.process(line)
        expected = result.training_assignments.get(tokens)
        if expected is not None:
            assert matcher.match(line).template_id == expected

    def test_matching_without_jit_agrees_with_index(self, trained):
        trainer, result = trained
        lines = [
            "Failed password for user6 from 10.0.0.3 port 4100 ssh2",
            "Connection closed by 10.0.0.200",
        ]
        with_index = OnlineMatcher(result.model, preprocessor=trainer.preprocessor)
        without_jit = OnlineMatcher(
            result.model,
            config=ByteBrainConfig(jit_enabled=False),
            preprocessor=trainer.preprocessor,
        )
        assert [with_index.match(l).template_id for l in lines] == [
            without_jit.match(l).template_id for l in lines
        ]
