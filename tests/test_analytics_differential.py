"""Differential harness: incremental analytics vs the recompute oracle.

The tentpole's correctness story mirrors PR 7's backend equivalence: the
O(N)-rescan analytics path is the battle-tested baseline, and the
materialized-aggregate path must return **identical** answers — equal
top-k lists, equal anomaly lists (same objects field for field), equal
JSD floats down to the last bit, equal drill-down record lists — for the
same windows, on the thread *and* the process shard backend.  On the
process backend the parent answers from its aggregate mirror, which the
transport's digest handshake holds to the children's state at every sync
barrier, so this also exercises the cross-process delta-shipping path.
"""

from __future__ import annotations

import math

import pytest

from repro.core.config import ByteBrainConfig
from repro.service.scheduler import SchedulerPolicy
from repro.service.service import LogParsingService

BACKENDS = ["thread", "process"]
NEVER = 10**9
TOPIC = "checkout"

#: Half-open query windows over the workload's [0, 300) time span: full
#: span, bucket-aligned, mid-bucket edges, the burst, and an empty tail.
WINDOWS = [
    (0.0, 300.0),
    (0.0, 100.0),
    (33.3, 266.7),
    (195.0, 245.0),
    (280.0, 299.5),
    (400.0, 500.0),
]


def workload():
    """(raw, timestamp) stream: steady mix, then a burst of a new shape."""
    for i in range(300):
        yield f"checkout request {i % 37} took {i % 9} ms", float(i)
    for i in range(60):
        yield f"user u{i % 11} viewed cart page {i % 5}", 100.0 + i * 2.0
    for i in range(45):
        yield f"payment gateway timeout shard {i % 3}", 200.0 + i
    for i in range(30):
        yield f"checkout request {i % 37} took {i % 9} ms", 250.0 + i


@pytest.fixture(params=BACKENDS)
def service(request, tmp_path):
    policy = SchedulerPolicy(
        volume_threshold=NEVER, time_interval_seconds=NEVER, initial_volume_threshold=NEVER
    )
    svc = LogParsingService(
        config=ByteBrainConfig(analytics_bucket_seconds=10.0),
        scheduler_policy=policy,
        store_root=tmp_path / "store",
    )
    svc.create_topic(TOPIC)
    runtime = svc.sharded_runtime(
        backend=request.param,
        n_shards=2,
        micro_batch_size=16,
        max_batch_delay=0.002,
        wal_dir=tmp_path / "wal",
    )
    with runtime:
        sent = 0
        for raw, ts in workload():
            runtime.submit(TOPIC, raw, ts)
            sent += 1
            if sent == 150:
                # Train mid-stream so later records re-stamp temporaries
                # (the aggregate path must survive backfill, not just
                # clean appends).
                runtime.drain()
                runtime.train_topic(TOPIC, now=150.0)
        runtime.drain()
        runtime.train_topic(TOPIC, now=400.0)
        runtime.drain()
        yield svc


class TestEnginesAgree:
    def test_top_k_identical(self, service):
        for window in WINDOWS:
            for k in (1, 5, 100):
                assert service.top_k_templates(
                    TOPIC, *window, k=k, engine="incremental"
                ) == service.top_k_templates(TOPIC, *window, k=k, engine="recompute")

    def test_anomaly_lists_identical(self, service):
        for baseline in WINDOWS:
            for current in WINDOWS:
                assert service.detect_anomalies(
                    TOPIC, baseline, current, engine="incremental"
                ) == service.detect_anomalies(TOPIC, baseline, current, engine="recompute")

    def test_jsd_bitwise_identical(self, service):
        for period_a in WINDOWS:
            for period_b in WINDOWS:
                left = service.compare_periods(TOPIC, period_a, period_b, engine="incremental")
                right = service.compare_periods(TOPIC, period_a, period_b, engine="recompute")
                # Dataclass equality covers added/removed/shifts; assert
                # the float separately so a NaN can never slip through ==.
                assert left == right
                assert not math.isnan(left.jensen_shannon_divergence)
                assert 0.0 <= left.jensen_shannon_divergence <= math.log(2.0) + 1e-12

    def test_anomaly_scores_identical(self, service):
        for window in WINDOWS:
            assert service.anomaly_score(
                TOPIC, window, engine="incremental"
            ) == service.anomaly_score(TOPIC, window, engine="recompute")

    def test_new_template_bursts_identical(self, service):
        for window in WINDOWS:
            assert service.new_template_bursts(
                TOPIC, window, min_count=1, engine="incremental"
            ) == service.new_template_bursts(TOPIC, window, min_count=1, engine="recompute")

    def test_drill_down_identical(self, service):
        for window in WINDOWS:
            incremental = service.drill_down(TOPIC, *window, limit=40, engine="incremental")
            recompute = service.drill_down(TOPIC, *window, limit=40, engine="recompute")
            assert incremental == recompute

    def test_drill_down_per_template_identical(self, service):
        top = service.top_k_templates(TOPIC, 0.0, 300.0, k=3, engine="incremental")
        for tid, _count in top:
            assert service.drill_down(
                TOPIC, 0.0, 300.0, template_id=tid, limit=25, engine="incremental"
            ) == service.drill_down(
                TOPIC, 0.0, 300.0, template_id=tid, limit=25, engine="recompute"
            )

    def test_failure_scenario_matching_identical(self, service):
        from repro.service.analytics import FailureScenario

        service.failure_library.add(
            FailureScenario(
                name="gateway-timeout",
                description="payment gateway timing out",
                signature_templates=["payment gateway timeout shard <*>"],
                min_coverage=0.5,
            )
        )
        for window in WINDOWS:
            left = service.match_failure_scenarios(TOPIC, window, engine="incremental")
            right = service.match_failure_scenarios(TOPIC, window, engine="recompute")
            assert [(m.scenario.name, m.coverage, m.matched_templates) for m in left] == [
                (m.scenario.name, m.coverage, m.matched_templates) for m in right
            ]

    def test_burst_is_actually_detected(self, service):
        """The workload's payment burst must show up — guards against the
        vacuous case where both engines agree on empty answers."""
        anomalies = service.detect_anomalies(
            TOPIC, (100.0, 200.0), (200.0, 250.0), engine="incremental"
        )
        assert any(a.kind == "new_template" for a in anomalies)
        assert service.anomaly_score(TOPIC, (200.0, 250.0), engine="incremental") > 0.0
