"""Single clustering process: one split of a tree node (paper §4.4–§4.7).

Given the (deduplicated, encoded) logs of a node, the process partitions
them into child clusters so that every child's saturation improves over the
parent.  It is a K-Means-style iteration adapted to log data:

* seeding follows K-Means++ — first centre random, second the farthest log
  from the first (ablation: *random centroid selection*);
* assignment uses the positional similarity distance of Eq. 2;
* distance ties are broken uniformly at random so clusters stay balanced
  (§4.6, ablation: *w/o balanced group*);
* clusters whose saturation does not improve over the parent trigger the
  creation of a new cluster seeded with the log farthest from all existing
  centroids (§4.4, ablation: *w/o ensure saturation increase*);
* cheap early-stop rules (§4.7) skip the whole process when the outcome is
  already determined (ablation: *w/o early stopping*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import ByteBrainConfig
from repro.core.distance import cluster_similarities
from repro.core.saturation import profile_positions, saturation_from_profile

__all__ = ["SplitOutcome", "split_node"]


@dataclass
class SplitOutcome:
    """Result of attempting to split one node.

    Attributes
    ----------
    children:
        List of child member-index lists.  Empty when the node should stay a
        leaf (early stop rule 2, or the split could not improve anything).
    reason:
        Human-readable explanation, useful in tests and debugging
        (``"split"``, ``"leaf:single-unresolved"``, ``"leaf:saturated"``,
        ``"singletons"``, ...).
    """

    children: List[List[int]]
    reason: str

    @property
    def is_leaf(self) -> bool:
        """True when the node must not be split further."""
        return len(self.children) <= 1


def _node_saturation(
    codes: np.ndarray,
    weights: np.ndarray,
    members: Sequence[int],
    config: ByteBrainConfig,
) -> float:
    return saturation_from_profile(
        profile_positions(codes, members, weights=weights),
        use_variable_saturation=config.use_variable_saturation,
        use_confidence_factor=config.use_confidence_factor,
    )


def split_node(
    codes: np.ndarray,
    weights: np.ndarray,
    member_indices: Sequence[int],
    config: ByteBrainConfig,
    rng: np.random.Generator,
    parent_saturation: Optional[float] = None,
) -> SplitOutcome:
    """Split the node's members into child clusters (or declare it a leaf).

    Parameters
    ----------
    codes, weights:
        Encoded token matrix of the whole initial group and per-row
        deduplication counts.
    member_indices:
        Rows of ``codes`` belonging to the node being split.
    config:
        Algorithm configuration (ablation switches, iteration limits, seed).
    rng:
        Random generator shared across the tree build for reproducibility.
    parent_saturation:
        Saturation of the node itself; computed if not supplied.
    """
    members = list(member_indices)
    if len(members) <= 1:
        return SplitOutcome(children=[], reason="leaf:singleton")

    if parent_saturation is None:
        parent_saturation = _node_saturation(codes, weights, members, config)

    profile = profile_positions(codes, members, weights=weights)

    if config.early_stop_enabled:
        # Rule 1: with <= 2 distinct logs each log is trivially its own cluster.
        if len(members) <= 2:
            return SplitOutcome(children=[[row] for row in members], reason="singletons:few-logs")
        # Rule 2: a single unresolved position whose tokens are (mostly)
        # distinct per log occurrence is a variable — splitting it would only
        # enumerate its values without producing meaningful templates.
        if len(profile.unresolved_counts) == 1 and (
            profile.unresolved_counts[0] >= 0.5 * profile.n_logs
        ):
            return SplitOutcome(children=[], reason="leaf:single-unresolved")
        # Rule 3: if every unresolved position holds a distinct token per log,
        # the logs are inherently dissimilar -> one cluster per log.
        if profile.all_unresolved_fully_distinct():
            return SplitOutcome(
                children=[[row] for row in members], reason="singletons:fully-distinct"
            )

    clusters = _iterative_clustering(codes, weights, members, config, rng, parent_saturation)
    clusters = [cluster for cluster in clusters if cluster]
    if len(clusters) <= 1:
        fallback = _split_by_most_variable_position(codes, members)
        if len(fallback) <= 1:
            return SplitOutcome(children=[], reason="leaf:unsplittable")
        return SplitOutcome(children=fallback, reason="split:position-fallback")
    return SplitOutcome(children=clusters, reason="split")


# --------------------------------------------------------------------------- #
# internals
# --------------------------------------------------------------------------- #


def _iterative_clustering(
    codes: np.ndarray,
    weights: np.ndarray,
    members: List[int],
    config: ByteBrainConfig,
    rng: np.random.Generator,
    parent_saturation: float,
) -> List[List[int]]:
    """K-Means-style refinement with saturation-guarded cluster growth."""
    centroids = _seed_centroids(codes, weights, members, config, rng)
    assignment = _assign(codes, weights, members, [[c] for c in centroids], config, rng)

    for _ in range(config.max_cluster_iterations):
        clusters = _gather(members, assignment, n_clusters=max(assignment) + 1)
        clusters = [cluster for cluster in clusters if cluster]

        grew = False
        if (
            config.ensure_saturation_increase
            and len(clusters) < config.max_clusters_per_split
            and len(clusters) < len(members)
        ):
            stalled = _first_stalled_cluster(codes, weights, clusters, config, parent_saturation)
            if stalled is not None:
                new_centroid = _farthest_from_all(codes, weights, members, clusters, config)
                if new_centroid is not None:
                    clusters.append([new_centroid])
                    grew = True

        new_assignment = _assign(codes, weights, members, clusters, config, rng)
        if not grew and new_assignment == assignment:
            assignment = new_assignment
            break
        assignment = new_assignment

    final = _gather(members, assignment, n_clusters=max(assignment) + 1)
    return [cluster for cluster in final if cluster]


def _seed_centroids(
    codes: np.ndarray,
    weights: np.ndarray,
    members: List[int],
    config: ByteBrainConfig,
    rng: np.random.Generator,
) -> List[int]:
    """Pick the two initial cluster centres."""
    if not config.use_kmeanspp_seeding:
        picks = rng.choice(len(members), size=2, replace=False)
        return [members[int(picks[0])], members[int(picks[1])]]
    first = members[int(rng.integers(len(members)))]
    similarities = cluster_similarities(
        codes,
        weights,
        [first],
        members,
        use_position_importance=config.use_position_importance,
        jit_enabled=config.jit_enabled,
    )
    # Farthest = least similar; never re-pick the first centre itself.
    order = np.argsort(similarities)
    for idx in order:
        candidate = members[int(idx)]
        if candidate != first:
            return [first, candidate]
    return [first, members[0 if members[0] != first else 1]]


def _assign(
    codes: np.ndarray,
    weights: np.ndarray,
    members: List[int],
    clusters: List[List[int]],
    config: ByteBrainConfig,
    rng: np.random.Generator,
) -> List[int]:
    """Assign every member to its most similar cluster (ties per §4.6)."""
    similarity = np.stack(
        [
            cluster_similarities(
                codes,
                weights,
                cluster,
                members,
                use_position_importance=config.use_position_importance,
                jit_enabled=config.jit_enabled,
            )
            for cluster in clusters
        ],
        axis=1,
    )
    best = similarity.max(axis=1, keepdims=True)
    tied = similarity >= best - 1e-12
    if config.balanced_grouping_enabled:
        # Balanced grouping (§4.6): among tied clusters pick one uniformly at
        # random.  Implemented by ranking tied entries with random priorities.
        priorities = rng.random(similarity.shape)
        masked = np.where(tied, priorities, -1.0)
        assignment = masked.argmax(axis=1)
    else:
        # Deterministic variant (ablation "w/o balanced group"): first winner.
        assignment = tied.argmax(axis=1)
    return [int(choice) for choice in assignment]


def _gather(members: List[int], assignment: List[int], n_clusters: int) -> List[List[int]]:
    """Turn an assignment vector into per-cluster member lists."""
    clusters: List[List[int]] = [[] for _ in range(n_clusters)]
    for member, cluster_idx in zip(members, assignment):
        clusters[cluster_idx].append(member)
    return clusters


def _first_stalled_cluster(
    codes: np.ndarray,
    weights: np.ndarray,
    clusters: List[List[int]],
    config: ByteBrainConfig,
    parent_saturation: float,
) -> Optional[int]:
    """Index of the first cluster whose saturation did not improve, if any."""
    for idx, cluster in enumerate(clusters):
        if len(cluster) <= 1:
            continue
        score = _node_saturation(codes, weights, cluster, config)
        if score <= parent_saturation + 1e-12:
            return idx
    return None


def _farthest_from_all(
    codes: np.ndarray,
    weights: np.ndarray,
    members: List[int],
    clusters: List[List[int]],
    config: ByteBrainConfig,
) -> Optional[int]:
    """Member with the smallest maximum similarity to any existing cluster."""
    existing_singletons = {cluster[0] for cluster in clusters if len(cluster) == 1}
    similarity = np.stack(
        [
            cluster_similarities(
                codes,
                weights,
                cluster,
                members,
                use_position_importance=config.use_position_importance,
                jit_enabled=config.jit_enabled,
            )
            for cluster in clusters
        ],
        axis=1,
    )
    best_per_member = similarity.max(axis=1)
    order = np.argsort(best_per_member)
    for idx in order:
        candidate = members[int(idx)]
        if candidate not in existing_singletons:
            return candidate
    return None


def _split_by_most_variable_position(codes: np.ndarray, members: List[int]) -> List[List[int]]:
    """Deterministic fallback split: group members by the token they hold at
    the position with the most distinct values.

    The iterative process occasionally collapses back into a single cluster
    (e.g. when one log dominates the weight); grouping by the most variable
    position always yields at least two children when any position is
    unresolved, which guarantees tree-build termination.
    """
    group = codes[np.asarray(members, dtype=np.intp)]
    if group.shape[1] == 0:
        return [list(members)]
    distinct = [np.unique(group[:, pos]).size for pos in range(group.shape[1])]
    pivot = int(np.argmax(distinct))
    if distinct[pivot] <= 1:
        return [list(members)]
    buckets: dict = {}
    for row in members:
        token = int(codes[row, pivot])
        buckets.setdefault(token, []).append(row)
    return list(buckets.values())
