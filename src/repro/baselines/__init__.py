"""Baseline log parsers the paper compares against (§5.1.2).

Every syntax-based baseline is re-implemented from its original publication
behind one tiny interface (:class:`repro.baselines.base.BaselineParser`):
``parse(lines)`` returns one group id per line, which is all the Grouping
Accuracy metric needs.  The deep-learning and LLM baselines (UniParser,
LogPPT, LILAC) are behavioural proxies — see :mod:`repro.baselines.semantic`
and DESIGN.md for the substitution rationale.
"""

from repro.baselines.base import BaselineParser
from repro.baselines.ael import AELParser
from repro.baselines.drain import DrainParser
from repro.baselines.iplom import IPLoMParser
from repro.baselines.lenma import LenMaParser
from repro.baselines.lfa import LFAParser
from repro.baselines.logcluster import LogClusterParser
from repro.baselines.logmine import LogMineParser
from repro.baselines.logram import LogramParser
from repro.baselines.logsig import LogSigParser
from repro.baselines.molfi import MoLFIParser
from repro.baselines.shiso import SHISOParser
from repro.baselines.slct import SLCTParser
from repro.baselines.spell import SpellParser
from repro.baselines.semantic import LILACProxy, LogPPTProxy, UniParserProxy

#: All baseline classes keyed by the names used in the paper's tables.
BASELINE_REGISTRY = {
    "AEL": AELParser,
    "Drain": DrainParser,
    "IPLoM": IPLoMParser,
    "LenMa": LenMaParser,
    "LFA": LFAParser,
    "LogCluster": LogClusterParser,
    "LogMine": LogMineParser,
    "Logram": LogramParser,
    "LogSig": LogSigParser,
    "MoLFI": MoLFIParser,
    "SHISO": SHISOParser,
    "SLCT": SLCTParser,
    "Spell": SpellParser,
    "UniParser": UniParserProxy,
    "LogPPT": LogPPTProxy,
    "LILAC": LILACProxy,
}

__all__ = [
    "BaselineParser",
    "BASELINE_REGISTRY",
    "make_baseline",
    *sorted(parser_class.__name__ for parser_class in BASELINE_REGISTRY.values()),
]


def make_baseline(name: str) -> BaselineParser:
    """Instantiate a baseline by its paper name."""
    try:
        return BASELINE_REGISTRY[name]()
    except KeyError:
        raise KeyError(f"unknown baseline {name!r}; known: {sorted(BASELINE_REGISTRY)}") from None
