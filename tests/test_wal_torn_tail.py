"""Torn-tail fuzz: truncate the last WAL segment at every byte offset.

Satellite of the reliability PR: for a WAL whose final frame is cut at
*every* possible byte offset, replay must either be clean (interior
records all present, the torn final frame dropped and flagged) or raise
:class:`WalCorruptionError` — it must never silently drop an interior
record.  Corruption *before* the tail (a flipped byte with valid data
after it) must raise, not truncate.
"""

import shutil

import pytest

from repro.core.config import ByteBrainConfig
from repro.service.recovery import RecoveredRuntime
from repro.service.service import LogParsingService
from repro.service.wal import (
    _FRAME_HEADER,
    _MAGIC,
    WalCorruptionError,
    WriteAheadLog,
)

pytestmark = pytest.mark.slow

TOPIC = "fuzz"
N_RECORDS = 40  # below the initial training threshold: no snapshots, no truncation


def raw_line(i: int) -> str:
    return f"fuzz record {i} with payload {i % 11}"


@pytest.fixture(scope="module")
def pristine_wal(tmp_path_factory):
    """One shard, one segment, every record in a clean frame sequence."""
    root = tmp_path_factory.mktemp("pristine")
    service = LogParsingService(config=ByteBrainConfig(), store_root=root / "store")
    service.create_topic(TOPIC)
    runtime = service.sharded_runtime(
        n_shards=1, micro_batch_size=8, max_batch_delay=0.002, wal_dir=root / "wal"
    )
    with runtime:
        for i in range(N_RECORDS):
            runtime.submit(TOPIC, raw_line(i), timestamp=float(i))
        runtime.drain()
    segments = sorted((root / "wal" / "shard-00").glob("segment-*.wal"))
    assert len(segments) == 1
    return root, segments[0]


def frame_offsets(data: bytes):
    """Byte offset of every frame start, plus the end of the last frame."""
    offsets = []
    position = len(_MAGIC)
    while position + _FRAME_HEADER.size <= len(data):
        length, _ = _FRAME_HEADER.unpack_from(data, position)
        offsets.append(position)
        position += _FRAME_HEADER.size + length
    assert position == len(data), "pristine segment must end on a frame boundary"
    return offsets, position


def replay_truncated(tmp_path, segment, cut: int):
    clone = tmp_path / f"cut-{cut}"
    target = clone / "shard-00" / segment.name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(segment.read_bytes()[:cut])
    by_topic, infos = WriteAheadLog(clone).replay_records()
    return by_topic.get(TOPIC, []), infos


def test_truncation_at_every_offset_of_the_final_frame(pristine_wal, tmp_path):
    root, segment = pristine_wal
    data = segment.read_bytes()
    offsets, end = frame_offsets(data)
    last_start = offsets[-1]

    # Which records live in the final frame?  Everything before it is
    # "interior" and must survive every cut.
    full_records, _ = WriteAheadLog(root / "wal").replay_records()
    full_seqs = [r.seq for r in full_records[TOPIC]]
    assert len(full_seqs) == N_RECORDS
    interior, _ = replay_truncated(tmp_path, segment, last_start)
    interior_seqs = [r.seq for r in interior]
    assert interior_seqs == full_seqs[: len(interior_seqs)]
    assert len(interior_seqs) < N_RECORDS

    for cut in range(last_start, end):
        records, infos = replay_truncated(tmp_path, segment, cut)
        seqs = [r.seq for r in records]
        # Never fewer (an interior record silently dropped) and never a
        # resurrected partial frame.
        assert seqs == interior_seqs, f"cut at byte {cut}: interior records lost"
        if cut > last_start:
            assert infos[0].torn_tail, f"cut at byte {cut}: torn tail not flagged"


def test_truncation_inside_an_interior_frame_drops_only_the_tail(
    pristine_wal, tmp_path
):
    """Cutting mid-segment (an interior frame's body) makes that frame the
    new torn tail: every frame before it replays, nothing after it does —
    still no *silent* interior gap, and the tail is flagged."""
    root, segment = pristine_wal
    data = segment.read_bytes()
    offsets, _ = frame_offsets(data)
    assert len(offsets) >= 3
    victim = offsets[len(offsets) // 2]
    keep, _ = replay_truncated(tmp_path, segment, victim)
    keep_seqs = [r.seq for r in keep]
    for cut in (victim + 1, victim + _FRAME_HEADER.size, victim + _FRAME_HEADER.size + 1):
        records, infos = replay_truncated(tmp_path, segment, cut)
        assert [r.seq for r in records] == keep_seqs
        assert infos[0].torn_tail


def test_corruption_before_valid_data_raises(pristine_wal, tmp_path):
    """A flipped payload byte with intact frames *after* it is corruption,
    not a torn tail — replay must raise, never skip the frame."""
    root, segment = pristine_wal
    data = bytearray(segment.read_bytes())
    offsets, _ = frame_offsets(data)
    victim = offsets[1] + _FRAME_HEADER.size  # first payload byte, frame 2
    data[victim] ^= 0xFF
    clone = tmp_path / "corrupt"
    target = clone / "shard-00" / segment.name
    target.parent.mkdir(parents=True)
    target.write_bytes(bytes(data))
    with pytest.raises(WalCorruptionError):
        WriteAheadLog(clone).replay_records()


def test_recovery_over_a_torn_tail_is_clean(pristine_wal, tmp_path):
    """Full-stack sanity: RecoveredRuntime over a mid-frame truncation
    restores every interior record exactly once and flags the torn tail."""
    root, segment = pristine_wal
    data = segment.read_bytes()
    offsets, end = frame_offsets(data)
    last_start = offsets[-1]
    cut = last_start + (end - last_start) // 2
    wal_clone = tmp_path / "wal"
    target = wal_clone / "shard-00" / segment.name
    target.parent.mkdir(parents=True)
    target.write_bytes(data[:cut])
    store_clone = tmp_path / "store"
    if (root / "store").exists():
        shutil.copytree(root / "store", store_clone)
    else:  # no training round ran, so no snapshot was ever persisted
        store_clone.mkdir()

    interior, _ = replay_truncated(tmp_path, segment, last_start)
    recovered = RecoveredRuntime.open(store_clone, wal_clone, config=ByteBrainConfig())
    counts = {}
    for record in recovered.service.topic(TOPIC).topic.records():
        counts[record.raw] = counts.get(record.raw, 0) + 1
    assert sorted(counts) == sorted({r.raw for r in interior})
    assert all(n == 1 for n in counts.values())
    assert recovered.report.torn_segments == 1
