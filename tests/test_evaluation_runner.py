"""Unit tests for the evaluation runners, ablation harness and reporting."""

import pytest

from repro.baselines.drain import DrainParser
from repro.core.config import ByteBrainConfig
from repro.evaluation.ablation import ablation_runners, run_ablation
from repro.evaluation.reporting import banner, format_matrix, format_series, format_table
from repro.evaluation.runner import BaselineRunner, ByteBrainRunner, evaluate_parser
from repro.datasets.registry import generate_dataset


@pytest.fixture(scope="module")
def small_dataset():
    return generate_dataset("Apache", variant="loghub", n_logs=600)


class TestByteBrainRunner:
    def test_run_produces_complete_measurements(self, small_dataset):
        run = ByteBrainRunner().run(small_dataset)
        assert run.parser_name == "ByteBrain"
        assert run.dataset_name == "Apache"
        assert run.n_logs == small_dataset.n_logs
        assert 0.0 <= run.grouping_accuracy <= 1.0
        assert run.throughput > 0
        assert run.extra["n_templates"] >= 1
        assert run.extra["model_size_bytes"] > 0

    def test_as_row_is_flat(self, small_dataset):
        row = ByteBrainRunner().run(small_dataset).as_row()
        assert row["parser"] == "ByteBrain"
        assert isinstance(row["GA"], float)

    def test_custom_config_and_name(self, small_dataset):
        runner = ByteBrainRunner(ByteBrainConfig(parallelism=2), name="ByteBrain par2")
        run = runner.run(small_dataset)
        assert run.parser_name == "ByteBrain par2"


class TestBaselineRunner:
    def test_runs_a_baseline(self, small_dataset):
        runner = BaselineRunner(DrainParser)
        run = runner.run(small_dataset)
        assert run.parser_name == "Drain"
        assert 0.0 <= run.grouping_accuracy <= 1.0

    def test_evaluate_parser_over_multiple_datasets(self, small_dataset):
        other = generate_dataset("HPC", variant="loghub", n_logs=400)
        runs = evaluate_parser(BaselineRunner(DrainParser), [small_dataset, other])
        assert [run.dataset_name for run in runs] == ["Apache", "HPC"]


class TestAblationHarness:
    def test_runners_for_all_variants(self):
        runners = ablation_runners()
        assert "ByteBrain" in runners
        assert "w/o early stopping" in runners
        assert runners["ordinal encoding"].config.encoding == "ordinal"

    def test_run_ablation_subset(self, small_dataset):
        results = run_ablation([small_dataset], variants=["ByteBrain", "w/ naive match"])
        assert set(results) == {"ByteBrain", "w/ naive match"}
        for runs in results.values():
            assert len(runs) == 1
            assert 0.0 <= runs[0].grouping_accuracy <= 1.0


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1.0}, {"name": "bbbb", "value": 123456.0}]
        text = format_table(rows)
        assert "name" in text and "bbbb" in text
        assert len(text.splitlines()) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_matrix(self):
        text = format_matrix({"ByteBrain": {"HDFS": 1.0, "BGL": 0.9}}, row_label="method")
        assert "method" in text and "HDFS" in text

    def test_format_series(self):
        text = format_series("throughput", [1, 2], [10.0, 20.0])
        assert "throughput" in text and "->" in text

    def test_banner_contains_title(self):
        assert "Table 2" in banner("Table 2")
