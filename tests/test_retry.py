"""Unit tests for the retry policy (core/retry.py)."""

import pytest

from repro.core.retry import RetryExhaustedError, RetryPolicy, retry_call


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_attempts=10, base_delay=0.1, max_delay=0.5, multiplier=2.0)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.4)
        assert policy.delay_for(4) == pytest.approx(0.5)  # capped
        assert policy.delay_for(9) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)

    def test_zero_attempts_refuses_immediately(self):
        state = RetryPolicy(max_attempts=0).start()
        assert state.record_failure() is None
        assert state.exhausted

    def test_attempt_accounting(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        state = policy.start()
        delays = []
        while True:
            delay = state.record_failure()
            if delay is None:
                break
            delays.append(delay)
        assert len(delays) == 3
        assert delays == pytest.approx([0.01, 0.02, 0.04])
        assert state.exhausted

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.5)
        first = [policy.start(seed=7).record_failure() for _ in range(3)]
        # Same seed, same draw.
        assert first[0] == first[1] == first[2]
        delay = first[0]
        assert 0.05 <= delay <= 0.15
        # A different seed draws differently (overwhelmingly likely).
        assert policy.start(seed=8).record_failure() != delay

    def test_deadline_refuses_late_retries(self):
        clock = {"now": 0.0}
        policy = RetryPolicy(
            max_attempts=100, base_delay=1.0, multiplier=1.0, jitter=0.0, deadline=2.5
        )
        state = policy.start(clock=lambda: clock["now"])
        assert state.record_failure() == pytest.approx(1.0)
        clock["now"] = 1.0
        assert state.record_failure() == pytest.approx(1.0)
        clock["now"] = 2.0
        # 2.0 elapsed + 1.0 delay > 2.5 deadline: refused, attempt not spent.
        attempts_before = state.attempts
        assert state.record_failure() is None
        assert state.attempts == attempts_before

    def test_reset_restores_budget(self):
        policy = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)
        state = policy.start()
        assert state.record_failure() == 0.0
        assert state.record_failure() is None
        state.reset()
        assert state.record_failure() == 0.0


class TestRetryCall:
    def test_returns_first_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ValueError("transient")
            return "ok"

        slept = []
        result = retry_call(
            flaky,
            RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.0),
            sleep=slept.append,
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert slept == pytest.approx([0.01, 0.02])

    def test_exhaustion_chains_final_error(self):
        def always():
            raise ValueError("permanent")

        with pytest.raises(RetryExhaustedError) as excinfo:
            retry_call(always, RetryPolicy(max_attempts=2, base_delay=0.0), sleep=lambda _: None)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry_call(boom, retry_on=(ValueError,), sleep=lambda _: None)
        assert calls["n"] == 1

    def test_on_retry_callback_sees_attempts(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise ValueError("x")
            return 1

        retry_call(
            flaky,
            RetryPolicy(max_attempts=5, base_delay=0.0),
            sleep=lambda _: None,
            on_retry=lambda attempt, error, delay: seen.append((attempt, type(error))),
        )
        assert seen == [(1, ValueError), (2, ValueError)]
