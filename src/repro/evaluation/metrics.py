"""Evaluation metrics (paper §5.1.3).

* **Grouping Accuracy (GA)** — the fraction of logs that are *correctly
  grouped*: a log counts only if the set of logs sharing its predicted group
  is exactly the set of logs sharing its ground-truth template.  This is the
  strict metric used throughout the paper (and the LogPai benchmark).
* **F1 Grouping Accuracy** — the pairwise F1 variant reported by several
  baselines' original papers; included for completeness.
* **Parsing accuracy** — fraction of logs whose predicted group is *pure*
  (all members share one ground-truth template); a more lenient diagnostic.
* **Throughput** — logs per second over combined training + matching time.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Hashable, List, Sequence

__all__ = ["grouping_accuracy", "f1_grouping_accuracy", "parsing_accuracy", "throughput"]


def _group_members(labels: Sequence[Hashable]) -> Dict[Hashable, List[int]]:
    groups: Dict[Hashable, List[int]] = defaultdict(list)
    for index, label in enumerate(labels):
        groups[label].append(index)
    return groups


def grouping_accuracy(predicted: Sequence[Hashable], truth: Sequence[Hashable]) -> float:
    """Strict grouping accuracy (GA) as defined in §5.1.3.

    A log is correct only when the predicted group it belongs to contains
    exactly the logs of its ground-truth template — no more, no fewer.
    """
    if len(predicted) != len(truth):
        raise ValueError("predicted and truth must have the same length")
    if not truth:
        return 1.0
    predicted_groups = _group_members(predicted)
    truth_groups = {label: set(members) for label, members in _group_members(truth).items()}
    correct = 0
    for members in predicted_groups.values():
        truth_labels = {truth[index] for index in members}
        if len(truth_labels) != 1:
            continue
        label = next(iter(truth_labels))
        if set(members) == truth_groups[label]:
            correct += len(members)
    return correct / len(truth)


def parsing_accuracy(predicted: Sequence[Hashable], truth: Sequence[Hashable]) -> float:
    """Fraction of logs whose predicted group is pure w.r.t. ground truth."""
    if len(predicted) != len(truth):
        raise ValueError("predicted and truth must have the same length")
    if not truth:
        return 1.0
    predicted_groups = _group_members(predicted)
    correct = 0
    for members in predicted_groups.values():
        truth_labels = {truth[index] for index in members}
        if len(truth_labels) == 1:
            correct += len(members)
    return correct / len(truth)


def f1_grouping_accuracy(predicted: Sequence[Hashable], truth: Sequence[Hashable]) -> float:
    """Pairwise F1 over same-group log pairs.

    Precision/recall are computed over the number of log pairs placed in the
    same group by the parser vs. by the ground truth, using the standard
    sum-of-combinations formulation (no quadratic pair enumeration).
    """
    if len(predicted) != len(truth):
        raise ValueError("predicted and truth must have the same length")
    if not truth:
        return 1.0

    def pair_count(counter: Counter) -> float:
        return sum(count * (count - 1) / 2.0 for count in counter.values())

    predicted_counter = Counter(predicted)
    truth_counter = Counter(truth)
    joint_counter = Counter(zip(predicted, truth))

    predicted_pairs = pair_count(predicted_counter)
    truth_pairs = pair_count(truth_counter)
    agreeing_pairs = pair_count(joint_counter)

    if predicted_pairs == 0 or truth_pairs == 0:
        return 1.0 if predicted_pairs == truth_pairs else 0.0
    precision = agreeing_pairs / predicted_pairs
    recall = agreeing_pairs / truth_pairs
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def throughput(n_logs: int, seconds: float) -> float:
    """Logs per second (training + matching time combined, §5.1.3)."""
    if n_logs < 0:
        raise ValueError("n_logs must be non-negative")
    if seconds <= 0:
        return float("inf") if n_logs else 0.0
    return n_logs / seconds
