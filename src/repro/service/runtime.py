"""Shard-partitioned asynchronous ingest runtime.

The synchronous :class:`~repro.service.service.LogParsingService` façade
processes one call at a time; every caller that ingests record-by-record
pays the scalar match path, and training rounds run inline, stalling the
caller for the whole round.  :class:`ShardedRuntime` wraps a service with
the production shape from the paper's deployment (§3/§6): topics are
hash-partitioned across ``n_shards`` shards, each shard drains its own
bounded ingest queue on a dedicated worker thread, and workers coalesce
queued records into micro-batches (flush on ``micro_batch_size`` or
``max_batch_delay``, whichever comes first) that flow through the
vectorised batch match engine — so *every* producer gets batched-match
throughput even when it submits one record at a time — while training
rounds are planned on the shard worker but executed on the shared
persistent executor, off the ingest path.

Threading model (one line per lock/queue, see docs/ARCHITECTURE.md):

* producers → per-shard :class:`_ShardQueue` (a lock-free ``deque`` with a
  soft capacity bound; ``put`` spins/sleeps while full — backpressure
  instead of unbounded memory growth),
* one worker thread per shard owns ingestion for its topics; per-topic
  mutations are serialised by a runtime-owned per-topic lock,
* training rounds are dispatched off-path: the worker plans the round
  (cheap snapshot, under the topic lock), the shared executor executes it
  (expensive clustering; the NumPy kernels release the GIL, so rounds for
  different topics overlap each other *and* ingestion), and the commit
  re-acquires the topic lock for the pointer swap,
* readers (``service.match`` / ``query_templates``) snapshot the parser
  under the engine's ``swap_guard`` and never touch the queues.

``drain()`` blocks until every accepted record is ingested and every
dispatched round committed — call it only after producers have quiesced
(it is a flush barrier, not a synchronisation point for concurrent
submitters).  ``shutdown()`` drains and stops the workers.  The runtime is
also a context manager (``with ShardedRuntime(service) as rt: ...``).
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from concurrent.futures import Executor, Future
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.parallel import shared_executor
from repro.service.engine import TopicEngine

__all__ = ["ShardStats", "ShardedRuntime"]

#: Queue sentinel telling a shard worker to exit after the current batch.
_STOP = object()


class _ShardQueue:
    """Single-consumer bounded-ish queue tuned for the ingest hot path.

    ``queue.Queue`` costs two mutex acquisitions per record; at micro-batch
    rates that overhead rivals the matching work itself.  This queue leans
    on the GIL-atomicity of ``deque.append`` / ``popleft`` instead: the
    producer appends and (rarely) sets an event, the single consumer pops
    in a tight loop and only parks on the event when it observed the queue
    empty.  The capacity bound is soft — producers sleep-poll while the
    queue is over capacity, which bounds memory without a lock handshake
    on every put.
    """

    __slots__ = ("_items", "_capacity", "_not_empty", "idle", "closed")

    def __init__(self, capacity: int) -> None:
        self._items: deque = deque()
        self._capacity = capacity
        self._not_empty = threading.Event()
        #: Set while the consumer holds no items and observed the queue
        #: empty — with quiesced producers, ``empty() and idle.is_set()``
        #: means the shard is fully drained.
        self.idle = threading.Event()
        self.idle.set()
        #: Set by shutdown so producers blocked on backpressure error out
        #: instead of spinning forever against a stopped worker.
        self.closed = False

    def put(self, item) -> None:
        """Append one item, sleep-polling while over capacity (backpressure)."""
        items = self._items
        while len(items) >= self._capacity:
            if self.closed:
                raise RuntimeError("runtime is shut down")
            time.sleep(0.0002)
        items.append(item)
        if not self._not_empty.is_set():
            self._not_empty.set()

    def put_urgent(self, item) -> None:
        """Append ignoring the capacity bound (shutdown sentinel)."""
        self._items.append(item)
        self._not_empty.set()

    def empty(self) -> bool:
        return not self._items

    def qsize(self) -> int:
        return len(self._items)

    def take(self, max_items: int, max_delay: float) -> List[object]:
        """Block for the first item, then coalesce up to ``max_items``,
        waiting at most ``max_delay`` seconds past the first item."""
        items: List[object] = []
        pop = self._items.popleft
        while True:
            # Clear idle *before* popping: a drainer observing the queue
            # empty with idle set can be sure the consumer holds nothing.
            self.idle.clear()
            try:
                items.append(pop())
                break
            except IndexError:
                # Mark idle *before* clearing the wake-up event, and
                # re-check afterwards: a producer appending between the
                # two either makes the re-check see its item or leaves
                # the event set for the wait below (no lost wake-ups).
                self.idle.set()
                self._not_empty.clear()
                if self._items:
                    continue
                self._not_empty.wait(0.05)
        deadline = time.monotonic() + max_delay
        while len(items) < max_items:
            try:
                items.append(pop())
            except IndexError:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._not_empty.clear()
                if self._items:
                    continue
                self._not_empty.wait(min(remaining, 0.05))
        return items


@dataclass
class _IngestItem:
    __slots__ = ("topic", "raw", "timestamp")
    topic: str
    raw: str
    timestamp: float


@dataclass
class ShardStats:
    """Counters one shard worker maintains (reads are approximate)."""

    shard: int
    ingested: int = 0
    batches: int = 0
    largest_batch: int = 0
    rounds_dispatched: int = 0
    topics: List[str] = field(default_factory=list)

    @property
    def mean_batch_size(self) -> float:
        return self.ingested / self.batches if self.batches else 0.0


class ShardedRuntime:
    """Hash-partitioned async micro-batching front end over a service.

    Parameters default to the service config's ``n_shards`` /
    ``micro_batch_size`` / ``max_batch_delay`` / ``ingest_queue_capacity``
    knobs.  ``executor`` is where off-path training rounds run; by default
    the process-wide :func:`~repro.core.parallel.shared_executor`.

    A topic driven through the runtime must not also be ingested or
    trained through the synchronous façade concurrently — reads
    (``match``, ``query_templates``, analytics) are safe at any time, but
    the façade's write paths do not take the runtime's per-topic lock.
    """

    def __init__(
        self,
        service,
        n_shards: Optional[int] = None,
        micro_batch_size: Optional[int] = None,
        max_batch_delay: Optional[float] = None,
        queue_capacity: Optional[int] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        config = service.config
        self.service = service
        self.n_shards = n_shards if n_shards is not None else config.n_shards
        self.micro_batch_size = (
            micro_batch_size if micro_batch_size is not None else config.micro_batch_size
        )
        self.max_batch_delay = (
            max_batch_delay if max_batch_delay is not None else config.max_batch_delay
        )
        capacity = queue_capacity if queue_capacity is not None else config.ingest_queue_capacity
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.micro_batch_size < 1:
            raise ValueError("micro_batch_size must be >= 1")
        if capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self._executor = executor if executor is not None else shared_executor()
        self._queues: List[_ShardQueue] = [_ShardQueue(capacity) for _ in range(self.n_shards)]
        self._shard_stats = [ShardStats(shard=index) for index in range(self.n_shards)]
        self._engine_locks: Dict[str, threading.Lock] = {}
        #: Topic -> (shard, latest ingested timestamp); feeds drain()'s
        #: final trigger pass.  Written only by the topic's shard worker.
        self._last_seen: Dict[str, tuple] = {}
        self._rounds_lock = threading.Lock()
        self._rounds_in_flight: Dict[str, Future] = {}
        self._errors: List[str] = []
        self._errors_lock = threading.Lock()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            for index in range(self.n_shards)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def shard_of(self, topic_name: str) -> int:
        """Stable hash partition of a topic onto a shard."""
        return zlib.crc32(topic_name.encode("utf-8")) % self.n_shards

    def submit(self, topic_name: str, raw: str, timestamp: float) -> int:
        """Enqueue one record for async ingestion; returns the shard index.

        Blocks while the shard's queue is over capacity (backpressure).
        Raises ``KeyError`` for unknown topics and ``RuntimeError`` after
        :meth:`shutdown`.
        """
        if self._closed:
            raise RuntimeError("runtime is shut down")
        self.service.topic(topic_name)  # fail fast on unknown topics
        shard = self.shard_of(topic_name)
        self._queues[shard].put(_IngestItem(topic_name, raw, timestamp))
        return shard

    def submit_many(self, topic_name: str, raws: Sequence[str], timestamp: float) -> int:
        """Enqueue a sequence of records for one topic; returns the count."""
        if self._closed:
            raise RuntimeError("runtime is shut down")
        self.service.topic(topic_name)
        shard_queue = self._queues[self.shard_of(topic_name)]
        for raw in raws:
            shard_queue.put(_IngestItem(topic_name, raw, timestamp))
        return len(raws)

    def drain(self) -> None:
        """Block until all accepted records are ingested, every dispatched
        round committed, and no armed training trigger is left unfired.

        Producers must have quiesced: records submitted concurrently with
        ``drain`` may or may not be covered by it.  The final scheduler
        pass matters because triggers are only checked on ingest — a burst
        that ends right after crossing a volume threshold would otherwise
        leave its round pending until the next burst.
        """
        while True:
            if not all(q.empty() and q.idle.is_set() for q in self._queues):
                time.sleep(0.001)
                continue
            with self._rounds_lock:
                futures = list(self._rounds_in_flight.values())
            if futures:
                wait_futures(futures)
                continue
            # Queues empty, workers idle, no rounds in flight: fire any
            # trigger the last micro-batches armed.  Each dispatched round
            # resets its topic's trigger at commit, so this converges.
            dispatched = False
            for topic_name, (shard_index, last_ts) in list(self._last_seen.items()):
                try:
                    engine = self.service.topic(topic_name)
                except KeyError:
                    continue
                if self._maybe_dispatch_round(shard_index, topic_name, engine, last_ts):
                    dispatched = True
            if not dispatched:
                return

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting records, optionally drain, and stop the workers."""
        if self._closed:
            return
        self._closed = True
        if drain:
            self.drain()
        for shard_queue in self._queues:
            shard_queue.closed = True
            shard_queue.put_urgent(_STOP)
        for worker in self._workers:
            worker.join(timeout=30.0)

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _worker_loop(self, shard_index: int) -> None:
        shard_queue = self._queues[shard_index]
        while True:
            batch = shard_queue.take(self.micro_batch_size, self.max_batch_delay)
            saw_stop = False
            if batch and batch[-1] is _STOP:
                saw_stop = True
                batch = batch[:-1]
            elif _STOP in batch:  # sentinel raced ahead of late records
                position = batch.index(_STOP)
                batch = batch[:position] + batch[position + 1 :]
                saw_stop = True
            if batch:
                self._process_batch(shard_index, batch)
            shard_queue.idle.set()
            if saw_stop:
                return

    def _process_batch(self, shard_index: int, batch: List[_IngestItem]) -> None:
        stats = self._shard_stats[shard_index]
        stats.batches += 1
        if len(batch) > stats.largest_batch:
            stats.largest_batch = len(batch)
        # Group by topic, preserving per-topic submission order (items of
        # one topic always land on one shard, so order is total per topic).
        groups: Dict[str, List[_IngestItem]] = {}
        for item in batch:
            groups.setdefault(item.topic, []).append(item)
        for topic_name, items in groups.items():
            try:
                engine = self.service.topic(topic_name)
            except KeyError:
                self._record_error(f"topic {topic_name!r} dropped with records in flight")
                continue
            if topic_name not in stats.topics:
                stats.topics.append(topic_name)
            now = items[-1].timestamp
            try:
                with self._engine_lock(topic_name):
                    engine.ingest_batch_fast(
                        [item.raw for item in items],
                        now=now,
                        timestamps=[item.timestamp for item in items],
                    )
                stats.ingested += len(items)
                self._last_seen[topic_name] = (shard_index, now)
                self._maybe_dispatch_round(shard_index, topic_name, engine, now)
            except Exception as error:  # pragma: no cover - defensive
                self._record_error(f"ingest batch for {topic_name!r}: {error!r}")

    # ------------------------------------------------------------------ #
    # off-path training
    # ------------------------------------------------------------------ #
    def _maybe_dispatch_round(
        self, shard_index: int, topic_name: str, engine: TopicEngine, now: float
    ) -> bool:
        """Dispatch an off-path round if due; True only when one was launched."""
        if not engine.scheduler.should_train(now):
            return False
        with self._rounds_lock:
            if topic_name in self._rounds_in_flight:
                return False  # one round per topic at a time
            with self._engine_lock(topic_name):
                plan = engine.plan_round(now)
            if plan is None:
                return False
            future = self._executor.submit(self._run_round, topic_name, engine, plan)
            self._rounds_in_flight[topic_name] = future
            self._shard_stats[shard_index].rounds_dispatched += 1
            return True

    def _run_round(self, topic_name: str, engine: TopicEngine, plan) -> None:
        try:
            prepared = engine.execute_round(plan)
            with self._engine_lock(topic_name):
                engine.commit_round(prepared, persist=False)
            # The store snapshot reads only the committed round's immutable
            # model — writing it outside the lock keeps disk I/O off the
            # shard's ingest path.
            engine.persist_round(prepared)
        except Exception as error:
            self._record_error(f"training round for {topic_name!r}: {error!r}")
        finally:
            with self._rounds_lock:
                self._rounds_in_flight.pop(topic_name, None)

    # ------------------------------------------------------------------ #
    # internals / reporting
    # ------------------------------------------------------------------ #
    def _engine_lock(self, topic_name: str) -> threading.Lock:
        # dict.setdefault is atomic under the GIL; a lost racey extra Lock
        # is discarded, the winning one is shared by all callers.
        return self._engine_locks.setdefault(topic_name, threading.Lock())

    def _record_error(self, message: str) -> None:
        with self._errors_lock:
            self._errors.append(message)

    @property
    def errors(self) -> List[str]:
        """Errors recorded by workers and training rounds (empty when healthy)."""
        with self._errors_lock:
            return list(self._errors)

    def stats(self) -> Dict[str, object]:
        """Runtime-wide and per-shard operational counters."""
        shards = []
        for index, shard in enumerate(self._shard_stats):
            shards.append(
                {
                    "shard": shard.shard,
                    "ingested": shard.ingested,
                    "batches": shard.batches,
                    "largest_batch": shard.largest_batch,
                    "mean_batch_size": round(shard.mean_batch_size, 2),
                    "rounds_dispatched": shard.rounds_dispatched,
                    "queue_depth": self._queues[index].qsize(),
                    "topics": list(shard.topics),
                }
            )
        return {
            "n_shards": self.n_shards,
            "micro_batch_size": self.micro_batch_size,
            "max_batch_delay": self.max_batch_delay,
            "ingested": sum(s.ingested for s in self._shard_stats),
            "batches": sum(s.batches for s in self._shard_stats),
            "rounds_dispatched": sum(s.rounds_dispatched for s in self._shard_stats),
            "n_errors": len(self.errors),
            "shards": shards,
        }
