"""Fig. 10 — ordinal-encoding dictionary size vs corpus size.

Hash encoding stores no token dictionary at all; ordinal encoding must
persist a token→id mapping whose size grows with the vocabulary.  Reproduced
by training the ordinal-encoding variant on growing prefixes of two large
corpora and reporting the dictionary size next to the (zero) hash-encoding
cost.
"""

from __future__ import annotations

from repro.core.config import ByteBrainConfig
from repro.core.trainer import OfflineTrainer
from repro.evaluation.reporting import banner, format_table

FIG10_DATASETS = ["Thunderbird", "Spark", "Mac"]
PREFIX_SIZES = [4_000, 8_000, 16_000]


def _run(datasets):
    rows = []
    for name in FIG10_DATASETS:
        corpus = datasets.get(name, "loghub2")
        for size in PREFIX_SIZES:
            if size > corpus.n_logs:
                continue
            subset = corpus.prefix(size)
            ordinal = OfflineTrainer(ByteBrainConfig(encoding="ordinal")).train(subset.lines)
            hashed = OfflineTrainer(ByteBrainConfig(encoding="hash")).train(subset.lines)
            rows.append(
                {
                    "dataset": name,
                    "n_logs": size,
                    "raw_bytes": subset.size_bytes,
                    "ordinal_dictionary_bytes": ordinal.model.dictionary_bytes,
                    "hash_dictionary_bytes": hashed.model.dictionary_bytes,
                }
            )
    return rows


def test_fig10_dictionary_size(benchmark, datasets, report):
    rows = benchmark.pedantic(_run, args=(datasets,), rounds=1, iterations=1)
    text = banner("Fig. 10 — dictionary storage: ordinal vs hash encoding") + "\n"
    text += format_table(rows)
    report("fig10_dictionary_size", text)

    # Hash encoding never stores a dictionary; ordinal always does, and the
    # dictionary grows with corpus size within each dataset.
    for row in rows:
        assert row["hash_dictionary_bytes"] == 0
        assert row["ordinal_dictionary_bytes"] > 0
    for name in FIG10_DATASETS:
        series = [row for row in rows if row["dataset"] == name]
        if len(series) >= 2:
            assert series[-1]["ordinal_dictionary_bytes"] >= series[0]["ordinal_dictionary_bytes"]
