"""LFA: Log File Abstraction via token-frequency analysis.

Re-implementation of Nagappan & Vouk, *Abstracting Log Lines to Log Event
Types for Mining Software System Logs* (MSR 2010).  Token frequencies are
counted over the whole file; within each log line, tokens whose frequency is
far below the line's most frequent token are treated as parameters, and the
remaining constant signature identifies the event type.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from repro.baselines.base import WILDCARD, BaselineParser

__all__ = ["LFAParser"]


class LFAParser(BaselineParser):
    """Token-frequency abstraction (LFA)."""

    name = "LFA"

    def __init__(self, ratio_threshold: float = 0.5) -> None:
        self.ratio_threshold = ratio_threshold

    def parse(self, lines: Sequence[str]) -> List[int]:
        token_lists = self.preprocess_many(lines)
        token_lists = [tokens if tokens else ["<empty>"] for tokens in token_lists]
        frequency: Counter = Counter()
        for tokens in token_lists:
            frequency.update(tokens)

        keys: List[Tuple] = []
        for tokens in token_lists:
            counts = [frequency[token] for token in tokens]
            max_count = max(counts)
            signature = tuple(
                token if frequency[token] >= self.ratio_threshold * max_count else WILDCARD
                for token in tokens
            )
            keys.append((len(tokens), signature))
        return self.group_by(keys)
