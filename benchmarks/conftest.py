"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The measured
workload runs under ``pytest-benchmark`` (so ``--benchmark-only`` collects
them all), and the reproduced rows/series are written to
``benchmarks/output/<experiment>.txt`` as well as echoed to stdout, so the
numbers survive the run and can be compared against the paper (see
EXPERIMENTS.md).

Scale note: the paper's LogHub-2.0 corpora run to tens of millions of lines;
the synthetic corpora here are scaled down (see ``repro.datasets.registry``)
and the slowest baselines additionally parse a bounded sample
(``BASELINE_SAMPLE_LINES``) so the whole suite finishes on a laptop.  The
per-log throughput of every method is unaffected by the sampling.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest

from repro.datasets.registry import generate_dataset
from repro.datasets.synthetic import LogDataset

#: Upper bound on the number of lines handed to baseline parsers in the
#: large-scale benches (ByteBrain always parses the full corpus).
BASELINE_SAMPLE_LINES = 12_000

OUTPUT_DIR = Path(__file__).parent / "output"


def write_report(name: str, text: str) -> None:
    """Persist a reproduced table/figure and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")


class DatasetCache:
    """Session-wide cache so each corpus is generated at most once."""

    def __init__(self) -> None:
        self._cache: Dict[tuple, LogDataset] = {}

    def get(self, name: str, variant: str = "loghub", **kwargs) -> LogDataset:
        key = (name, variant, tuple(sorted(kwargs.items())))
        if key not in self._cache:
            self._cache[key] = generate_dataset(name, variant=variant, **kwargs)
        return self._cache[key]


@pytest.fixture(scope="session")
def datasets() -> DatasetCache:
    return DatasetCache()


@pytest.fixture(scope="session")
def report():
    return write_report
