"""Positional similarity distance (paper §4.4, Eq. 2).

The hash-encoded token values carry no numeric meaning, so Euclidean distance
is useless.  Instead the paper scores how well a log fits a cluster by

* **token frequency at each position** — how often the log's token occurs at
  that position across the cluster (``f_i``), and
* **position importance** — positions with many distinct tokens are likely
  variables and receive a low weight ``w_i = 1 / (n_i - 1)``.

The similarity is the importance-weighted mean frequency; the distance used
for assignment is ``1 - similarity`` (the paper phrases assignment as
"smallest distance, i.e. highest positional similarity").
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

__all__ = ["cluster_similarities", "position_weights"]


def position_weights(distinct_counts: np.ndarray, use_position_importance: bool) -> np.ndarray:
    """Importance weight per position.

    ``w_i = 1 / (n_i - 1)`` with ``n_i`` the number of distinct tokens at
    position ``i`` inside the cluster; constant positions (``n_i == 1``) get
    the maximum weight.  With ``use_position_importance=False`` (ablation
    *w/o position importance*) every position weighs 1.
    """
    counts = np.asarray(distinct_counts, dtype=np.float64)
    if not use_position_importance:
        return np.ones_like(counts)
    return 1.0 / np.maximum(counts - 1.0, 1.0)


def cluster_similarities(
    codes: np.ndarray,
    weights: np.ndarray,
    member_indices: Sequence[int],
    candidate_indices: Sequence[int],
    use_position_importance: bool = True,
    jit_enabled: bool = True,
) -> np.ndarray:
    """Similarity of each candidate log to one cluster (Eq. 2).

    Parameters
    ----------
    codes:
        ``(n_unique, m)`` encoded token matrix of the whole initial group.
    weights:
        Occurrence count of each unique record (deduplication counts).
    member_indices:
        Row indices that currently belong to the cluster.
    candidate_indices:
        Row indices to score against the cluster.
    use_position_importance:
        Apply the ``w_i`` weights (ablation switch).
    jit_enabled:
        Use the vectorised NumPy kernel; ``False`` falls back to the
        pure-Python reference loop (the paper's *w/o JIT* mode).

    Returns
    -------
    numpy.ndarray
        ``len(candidate_indices)`` similarities in ``[0, 1]``; higher means
        the log fits the cluster better.
    """
    members = np.asarray(member_indices, dtype=np.intp)
    candidates = np.asarray(candidate_indices, dtype=np.intp)
    if members.size == 0 or candidates.size == 0:
        return np.zeros(candidates.size, dtype=np.float64)
    if jit_enabled:
        return _similarities_vectorized(codes, weights, members, candidates, use_position_importance)
    return _similarities_python(codes, weights, members, candidates, use_position_importance)


#: Cap on the size of the broadcast (candidates x members x positions)
#: comparison tensor; larger workloads are processed in candidate chunks.
_MAX_BROADCAST_CELLS = 4_000_000


def _similarities_vectorized(
    codes: np.ndarray,
    weights: np.ndarray,
    members: np.ndarray,
    candidates: np.ndarray,
    use_position_importance: bool,
) -> np.ndarray:
    """NumPy implementation: one broadcast comparison over all positions."""
    n_positions = codes.shape[1]
    if n_positions == 0:
        return np.ones(candidates.size, dtype=np.float64)
    member_codes = codes[members]
    member_weights = weights[members].astype(np.float64)
    total_weight = member_weights.sum()
    candidate_codes = codes[candidates]

    # Distinct token count per position, for the importance weights: sort
    # each column once and count value changes (vectorised across positions).
    sorted_columns = np.sort(member_codes, axis=0)
    if member_codes.shape[0] > 1:
        distinct = (sorted_columns[1:] != sorted_columns[:-1]).sum(axis=0) + 1
    else:
        distinct = np.ones(n_positions, dtype=np.int64)
    pos_weights = position_weights(distinct, use_position_importance)
    weight_sum = pos_weights.sum()
    if weight_sum <= 0.0:
        return np.zeros(candidates.size, dtype=np.float64)

    # Frequency of each candidate's token at each position within the
    # cluster: a broadcast equality against the member rows, weighted by the
    # members' occurrence counts.  Chunk candidates to bound memory.
    result = np.empty(candidates.size, dtype=np.float64)
    chunk_rows = max(1, _MAX_BROADCAST_CELLS // max(member_codes.shape[0] * n_positions, 1))
    for start in range(0, candidates.size, chunk_rows):
        stop = min(start + chunk_rows, candidates.size)
        block = candidate_codes[start:stop]
        equal = member_codes[None, :, :] == block[:, None, :]
        freq = np.einsum("cmp,m->cp", equal, member_weights) / total_weight
        result[start:stop] = freq @ pos_weights / weight_sum
    return result


def _similarities_python(
    codes: np.ndarray,
    weights: np.ndarray,
    members: np.ndarray,
    candidates: np.ndarray,
    use_position_importance: bool,
) -> np.ndarray:
    """Pure-Python reference implementation (*w/o JIT* mode)."""
    n_positions = codes.shape[1]
    if n_positions == 0:
        return np.ones(candidates.size, dtype=np.float64)
    total_weight = float(sum(float(weights[i]) for i in members))
    position_tables: List[Dict[int, float]] = []
    for pos in range(n_positions):
        table: Dict[int, float] = {}
        for row in members:
            token = int(codes[row, pos])
            table[token] = table.get(token, 0.0) + float(weights[row])
        position_tables.append(table)

    pos_weights: List[float] = []
    for table in position_tables:
        n_distinct = len(table)
        if use_position_importance:
            pos_weights.append(1.0 / max(n_distinct - 1.0, 1.0))
        else:
            pos_weights.append(1.0)
    weight_sum = float(sum(pos_weights))

    result = np.zeros(candidates.size, dtype=np.float64)
    if weight_sum <= 0.0:
        return result
    for out_idx, row in enumerate(candidates):
        acc = 0.0
        for pos in range(n_positions):
            token = int(codes[row, pos])
            freq = position_tables[pos].get(token, 0.0) / total_weight
            acc += pos_weights[pos] * freq
        result[out_idx] = acc / weight_sum
    return result
