"""Sharded-runtime ingest benchmark (machine-readable).

Measures the PR's service-stack split end to end: a multi-topic synthetic
workload (one LogHub-2.0-style system per topic, ~all raw lines distinct)
is pre-trained identically per mode, then the same interleaved record
stream — with training rounds triggering mid-stream — is driven through

* ``sync_per_record`` — the synchronous ``LogParsingService`` façade, one
  ``ingest`` call per record, training rounds inline (the pre-PR caller
  experience), and
* ``sharded_N`` — the :class:`~repro.service.runtime.ShardedRuntime` at
  N ∈ ``--shards``: per-record ``submit`` into bounded shard queues,
  micro-batches through the vectorised match engine, training rounds
  off-path on the shared executor.

Reported per mode (median of ``--repetitions``): end-to-end throughput
(wall clock until every record is stored and every round committed) and
producer-side acceptance rate.  A second, *paced* phase offers records at
a sustainable rate below capacity and measures the worst single-call
producer stall — the sync façade freezes its caller for whole inline
training rounds, the runtime's submit hands the record to a queue with
headroom and returns.

Being a single in-process Python service, ingest preprocessing (masking
regexes) holds the GIL, so shard scaling of wall-clock throughput is
modest — the wins come from micro-batched matching, purer per-topic
batches at higher shard counts, off-path rounds overlapping ingest via
their GIL-releasing NumPy kernels, and much smaller producer stalls
under paced load (typically 10-25x; the paced phase runs at a 1 ms
interpreter switch interval so the measurement captures the runtime, not
GIL convoying, and the assertion bound stays a conservative 1.5x).  The
benchmark asserts: the
best sharded mode beats the sync façade, no sharded mode is materially
slower than it, the highest shard count does not fall below the lowest
(the measured scaling ratio — a few percent, noise-bounded run to run —
is recorded in the summary), and the paced worst stall shrinks by
>= 1.5x.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_sharded.py [--records 8000]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.service.bench import run_serve_bench

DEFAULT_TOPICS = 4
DEFAULT_RECORDS = 8_000
DEFAULT_TRAIN_RECORDS = 2_000
#: Per-topic volume trigger during the measured phase: with 8k records per
#: topic this fires one mid-stream round per topic, so both modes pay for
#: (re)training — inline for the façade, off-path for the runtime.
DEFAULT_VOLUME_THRESHOLD = 4_000
#: Micro-batch size used by the runtime modes: large enough that a shard
#: hosting several interleaved topics still hands each topic substantial
#: per-topic batches to the broadcast match engine.
DEFAULT_MICRO_BATCH = 1_024
#: Offered rate of the paced latency phase — comfortably below the ~20k+
#: logs/s single-process capacity so stalls measure rounds, not saturation.
DEFAULT_PACED_RATE = 10_000.0


def run(
    n_topics: int = DEFAULT_TOPICS,
    records_per_topic: int = DEFAULT_RECORDS,
    train_records_per_topic: int = DEFAULT_TRAIN_RECORDS,
    shard_counts: Sequence[int] = (1, 2, 4),
    volume_threshold: int = DEFAULT_VOLUME_THRESHOLD,
    micro_batch_size: int = DEFAULT_MICRO_BATCH,
    paced_rate: float = DEFAULT_PACED_RATE,
    repetitions: int = 3,
    output: Optional[Path] = None,
) -> Dict[str, object]:
    report = run_serve_bench(
        n_topics=n_topics,
        records_per_topic=records_per_topic,
        train_records_per_topic=train_records_per_topic,
        shard_counts=shard_counts,
        micro_batch_size=micro_batch_size,
        volume_threshold=volume_threshold,
        repetitions=repetitions,
        paced_rate=paced_rate,
    )
    report["benchmark"] = "bench_sharded"
    modes = {mode["mode"]: mode for mode in report["modes"]}
    sync = modes["sync_per_record"]
    low = modes[f"sharded_{min(shard_counts)}"]
    high = modes[f"sharded_{max(shard_counts)}"]
    best = max(
        (mode for mode in report["modes"] if mode["mode"] != "sync_per_record"),
        key=lambda mode: mode["throughput"],
    )
    stalls = report["paced_latency"]["max_stall_ms"]
    stall_reduction = (
        stalls["sync_per_record"] / stalls[high["mode"]]
        if stalls[high["mode"]] > 0
        else float("inf")
    )
    report["summary"] = {
        "sync_throughput": sync["throughput"],
        "best_sharded_mode": best["mode"],
        "best_sharded_speedup_vs_sync": best["speedup_vs_sync"],
        "shard_scaling_low_to_high": round(high["throughput"] / low["throughput"], 3),
        "paced_producer_stall_reduction": round(stall_reduction, 1),
        "meets_best_sharded_beats_sync": best["throughput"] > sync["throughput"],
        "meets_no_sharded_mode_materially_slower": all(
            mode["throughput"] >= 0.95 * sync["throughput"]
            for mode in report["modes"]
            if mode["mode"] != "sync_per_record"
        ),
        # The scaling effect (purer per-topic micro-batches + GIL overlap
        # of off-path rounds) is a few percent on a GIL-bound process, so
        # the hard gate is non-degradation; the measured ratio is recorded
        # above for the artifact.
        "meets_scaling_high_not_below_low": high["throughput"] >= 0.97 * low["throughput"],
        "meets_paced_stall_reduction_1_5x": stall_reduction >= 1.5,
    }
    for criterion in (
        "meets_best_sharded_beats_sync",
        "meets_no_sharded_mode_materially_slower",
        "meets_scaling_high_not_below_low",
        "meets_paced_stall_reduction_1_5x",
    ):
        if not report["summary"][criterion]:
            raise AssertionError(f"{criterion} failed: {report['summary']}")
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topics", type=int, default=DEFAULT_TOPICS)
    parser.add_argument("--records", type=int, default=DEFAULT_RECORDS)
    parser.add_argument("--train-records", type=int, default=DEFAULT_TRAIN_RECORDS)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--volume-threshold", type=int, default=DEFAULT_VOLUME_THRESHOLD)
    parser.add_argument("--micro-batch-size", type=int, default=DEFAULT_MICRO_BATCH)
    parser.add_argument("--paced-rate", type=float, default=DEFAULT_PACED_RATE)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_sharded.json",
    )
    args = parser.parse_args()
    report = run(
        n_topics=args.topics,
        records_per_topic=args.records,
        train_records_per_topic=args.train_records,
        shard_counts=args.shards,
        volume_threshold=args.volume_threshold,
        micro_batch_size=args.micro_batch_size,
        paced_rate=args.paced_rate,
        repetitions=args.repetitions,
        output=args.output,
    )
    for mode in report["modes"]:
        print(
            f"{mode['mode']:>16}: {mode['throughput']:>9,.1f} logs/s "
            f"(x{mode['speedup_vs_sync']:.3f} vs sync, "
            f"{mode['training_rounds']} rounds)"
        )
    paced = report["paced_latency"]
    print(f"paced @ {paced['rate']:,.0f} rec/s, worst stall: {paced['max_stall_ms']}")
    print(f"summary: {report['summary']}")
    print(f"written: {args.output}")


if __name__ == "__main__":
    main()
