"""Unit tests for per-tenant admission control (token buckets, quotas)."""

import pytest

from repro.core.config import ByteBrainConfig
from repro.service.admission import (
    AdmissionController,
    TenantSpec,
    TokenBucket,
)


class FakeClock:
    """Deterministic monotonic clock for refill-math tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_spends_down(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=100.0, clock=clock)
        assert bucket.tokens == pytest.approx(100.0)
        assert bucket.try_take(60.0) == 0.0
        assert bucket.tokens == pytest.approx(40.0)
        assert bucket.try_take(40.0) == 0.0
        assert bucket.tokens == pytest.approx(0.0)

    def test_refill_is_continuous_not_stepwise(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=100.0, clock=clock)
        bucket.try_take(100.0)
        clock.advance(0.25)  # a quarter second buys 2.5 tokens
        assert bucket.tokens == pytest.approx(2.5)
        assert bucket.try_take(2.5) == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=20.0, clock=clock)
        bucket.try_take(20.0)
        clock.advance(1000.0)
        assert bucket.tokens == pytest.approx(20.0)

    def test_refusal_returns_exact_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=100.0, clock=clock)
        bucket.try_take(100.0)
        # 30 tokens at 10/s: exactly 3 seconds away.
        wait = bucket.try_take(30.0)
        assert wait == pytest.approx(3.0)
        # Nothing was taken by the refused call.
        clock.advance(3.0)
        assert bucket.try_take(30.0) == 0.0

    def test_refused_take_is_side_effect_free(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=5.0, burst=10.0, clock=clock)
        bucket.try_take(8.0)
        before = bucket.tokens
        assert bucket.try_take(5.0) > 0.0
        assert bucket.tokens == pytest.approx(before)

    def test_oversized_request_reports_finite_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=20.0, clock=clock)
        bucket.try_take(20.0)
        # A 50-token ask can never succeed (burst 20); the hint is the
        # time to a full bucket, not infinity.
        assert bucket.try_take(50.0) == pytest.approx(2.0)

    def test_give_back_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=20.0, clock=clock)
        bucket.try_take(5.0)
        bucket.give_back(500.0)
        assert bucket.tokens == pytest.approx(20.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestTenantSpec:
    def test_from_dict_roundtrip(self):
        spec = TenantSpec.from_dict(
            {"name": "a", "rate_limit": 5.0, "record_quota": 100}
        )
        assert spec.name == "a"
        assert spec.rate_limit == 5.0
        assert spec.record_quota == 100
        assert spec.byte_quota is None

    def test_rejects_missing_name_and_unknown_keys(self):
        with pytest.raises(ValueError):
            TenantSpec.from_dict({"rate_limit": 5.0})
        with pytest.raises(ValueError):
            TenantSpec.from_dict({"name": "a", "rate": 5.0})


class TestAdmissionController:
    def _controller(self, spec: TenantSpec, config=None, clock=None):
        controller = AdmissionController(
            config or ByteBrainConfig(), clock=clock or FakeClock()
        )
        controller.register(spec)
        return controller

    def test_unlimited_tenant_admits_everything(self):
        controller = self._controller(TenantSpec(name="a"))
        for _ in range(50):
            assert controller.admit("a", 1000, 100000).allowed
        assert controller.usage("a").records == 50000

    def test_unknown_tenant_raises(self):
        controller = self._controller(TenantSpec(name="a"))
        with pytest.raises(KeyError):
            controller.admit("ghost", 1, 1)

    def test_rate_limit_refuses_with_retry_after(self):
        clock = FakeClock()
        controller = self._controller(
            TenantSpec(name="a", rate_limit=10.0, rate_burst=20.0), clock=clock
        )
        assert controller.admit("a", 20, 0).allowed
        decision = controller.admit("a", 10, 0)
        assert not decision.allowed
        assert decision.reason == "rate"
        assert decision.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        assert controller.admit("a", 10, 0).allowed
        assert controller.usage("a").rate_limited == 1

    def test_record_quota_is_terminal_and_checked_first(self):
        clock = FakeClock()
        controller = self._controller(
            TenantSpec(name="a", rate_limit=1.0, rate_burst=1.0, record_quota=5),
            clock=clock,
        )
        assert controller.admit("a", 1, 10).allowed
        # Bucket is now empty AND the next batch would bust the quota:
        # the terminal reason must win so clients stop retrying.
        decision = controller.admit("a", 5, 10)
        assert not decision.allowed
        assert decision.reason == "record_quota"
        assert controller.usage("a").quota_refused == 1

    def test_byte_quota_refuses(self):
        controller = self._controller(TenantSpec(name="a", byte_quota=100))
        assert controller.admit("a", 1, 80).allowed
        decision = controller.admit("a", 1, 30)
        assert not decision.allowed
        assert decision.reason == "byte_quota"
        # A smaller batch still fits.
        assert controller.admit("a", 1, 20).allowed

    def test_refund_restores_quota_and_tokens(self):
        clock = FakeClock()
        controller = self._controller(
            TenantSpec(name="a", rate_limit=10.0, rate_burst=10.0, record_quota=10),
            clock=clock,
        )
        assert controller.admit("a", 10, 100).allowed
        # Shard said no: the charge comes back in full.
        controller.refund("a", 10, 100)
        usage = controller.usage("a")
        assert usage.records == 0 and usage.bytes == 0 and usage.refunds == 1
        assert controller.admit("a", 10, 100).allowed

    def test_config_defaults_apply_when_spec_is_silent(self):
        config = ByteBrainConfig(server_rate_limit=10.0, server_record_quota=15)
        controller = self._controller(TenantSpec(name="a"), config=config)
        limits = controller.limits("a")
        assert limits["rate_limit"] == 10.0
        assert limits["rate_burst"] == 20.0  # derived 2x default
        assert limits["record_quota"] == 15

    def test_spec_overrides_config_defaults(self):
        config = ByteBrainConfig(server_rate_limit=10.0)
        controller = self._controller(
            TenantSpec(name="a", rate_limit=99.0, rate_burst=7.0), config=config
        )
        limits = controller.limits("a")
        assert limits["rate_limit"] == 99.0
        assert limits["rate_burst"] == 7.0
