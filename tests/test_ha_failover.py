"""High availability over the wire: auth, sessions, standby, failover.

Each test boots real :class:`~repro.service.server.LogServer` instances
on event-loop threads and drives them with the real client (or a raw
socket for handshake-level assertions).  Together they pin the HA
contract the chaos drill exercises end-to-end:

* tenants with a shared secret complete an HMAC challenge/response, and
  a wrong or missing secret is a *terminal* ``AUTH`` — never retried;
* producer sessions deduplicate replayed ``batch_seq``\\ es, reject
  gaps, and survive a server restart through WAL recovery;
* a standby answers ``hello`` with ``role=standby`` plus a redirect
  hint and refuses writes with ``NOT_PRIMARY``;
* ``promote`` (operator op or the heartbeat watchdog) turns the standby
  into a serving primary on the same tenant namespace and sequences,
  and a sessioned client follows it there without losing or doubling a
  single acked record.
"""

import socket
import time

import pytest

from repro.core import failpoints
from repro.core.config import ByteBrainConfig
from repro.service import protocol
from repro.service.client import IngestReport, ServerError, ServiceClient
from repro.service.recovery import RecoveredRuntime
from repro.service.replication import StandbyRuntime, WalShipper
from repro.service.runtime import create_runtime
from repro.service.server import (
    LogServer,
    build_tenant_specs,
    qualify_topic,
    run_server_in_thread,
)
from repro.service.service import LogParsingService


PLAIN_TENANTS = [{"name": "alpha", "topics": ["app"]}]
SECRET_TENANTS = [{"name": "alpha", "topics": ["app"], "secret": "hunter2"}]


class Door:
    """One primary server over its own store + WAL (restartable)."""

    def __init__(self, tmp_path, tenants_data=None, config=None, **runtime_kwargs):
        self.root = tmp_path
        self.config = config or ByteBrainConfig(n_shards=2)
        self.tenants_data = tenants_data or PLAIN_TENANTS
        self.tenants = build_tenant_specs(self.tenants_data)
        self.service = LogParsingService(
            config=self.config, store_root=tmp_path / "store"
        )
        for spec, topics in self.tenants:
            for topic in topics:
                self.service.create_topic(qualify_topic(spec.name, topic))
        self.runtime = create_runtime(
            self.service, wal_dir=tmp_path / "wal", **runtime_kwargs
        )
        self._start()

    def _start(self):
        self.server = LogServer(
            self.service, self.runtime, self.tenants, config=self.config
        )
        self._thread, self._stop = run_server_in_thread(self.server)

    @property
    def port(self):
        return self.server.port

    def client(self, tenant="alpha", **kwargs):
        return ServiceClient("127.0.0.1", self.port, tenant, **kwargs)

    def close(self):
        try:
            self._stop()
        finally:
            self.runtime.shutdown(drain=False)

    def restart(self):
        """Stop everything, then recover store + WAL into a new server."""
        self.close()
        recovered = RecoveredRuntime.open(
            self.root / "store", self.root / "wal", config=self.config
        )
        self.service = recovered.service
        self.runtime = recovered.runtime
        self._start()
        return recovered.report


def _raw_call(port, *requests, timeout=10.0):
    """Send JSON ops on one raw connection; returns the responses."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    try:
        rfile = sock.makefile("rb")
        responses = []
        for i, request in enumerate(requests):
            sock.sendall(protocol.encode_json_frame({"id": i, **request}))
            _, body = protocol.read_frame_sync(rfile, 1 << 20)
            responses.append(protocol.decode_json_body(body))
        return responses
    finally:
        sock.close()


# --------------------------------------------------------------------- #
# HMAC challenge/response
# --------------------------------------------------------------------- #


class TestTenantAuth:
    def test_correct_secret_establishes_and_ingests(self, tmp_path):
        door = Door(tmp_path, tenants_data=SECRET_TENANTS)
        try:
            with door.client(secret="hunter2") as client:
                assert client.hello["tenant"] == "alpha"
                report = client.ingest("app", ["authed record"], timestamp=1.0)
                assert report.accepted == 1
        finally:
            door.close()

    def test_wrong_secret_is_terminal_auth(self, tmp_path):
        door = Door(tmp_path, tenants_data=SECRET_TENANTS)
        try:
            with pytest.raises(ServerError) as excinfo:
                door.client(secret="letmein")
            assert excinfo.value.code == protocol.ERR_AUTH
            assert not excinfo.value.retryable
            assert door.server.counters["auth_failures"] == 1
        finally:
            door.close()

    def test_missing_secret_is_terminal_auth(self, tmp_path):
        door = Door(tmp_path, tenants_data=SECRET_TENANTS)
        try:
            with pytest.raises(ServerError) as excinfo:
                door.client()  # no secret: answers the challenge wrongly
            assert excinfo.value.code == protocol.ERR_AUTH
        finally:
            door.close()

    def test_auth_failure_closes_the_connection(self, tmp_path):
        door = Door(tmp_path, tenants_data=SECRET_TENANTS)
        try:
            hello, bad_auth = _raw_call(
                door.port,
                {"op": "hello", "tenant": "alpha"},
                {"op": "auth", "mac": "deadbeef"},
            )
            assert hello["auth"] == "challenge"
            assert bad_auth["error"] == protocol.ERR_AUTH
            with pytest.raises((ConnectionError, OSError, ValueError)):
                _raw_call(door.port, {"op": "auth", "mac": "deadbeef"},
                          {"op": "ping"})
                raise ConnectionError("auth without hello must close")
        finally:
            door.close()

    def test_secretless_tenant_skips_the_challenge(self, tmp_path):
        door = Door(tmp_path)
        try:
            (hello,) = _raw_call(door.port, {"op": "hello", "tenant": "alpha"})
            assert hello["ok"] and "auth" not in hello
        finally:
            door.close()


# --------------------------------------------------------------------- #
# Producer sessions over the wire
# --------------------------------------------------------------------- #


class TestProducerSessions:
    def test_batch_seq_without_session_is_rejected(self, tmp_path):
        door = Door(tmp_path)
        try:
            with door.client() as client:  # no producer_id
                from repro.service.transport import BatchSection

                section = BatchSection(topic="app", first_seq=0,
                                       timestamps=[1.0], raws=["x"])
                client.send_batch([section], batch_seq=1)
                with pytest.raises(ServerError) as excinfo:
                    client.recv()
                assert excinfo.value.code == protocol.ERR_BAD_REQUEST
        finally:
            door.close()

    def test_sequence_gap_is_rejected(self, tmp_path):
        door = Door(tmp_path)
        try:
            with door.client(producer_id="p1") as client:
                from repro.service.transport import BatchSection

                section = BatchSection(topic="app", first_seq=0,
                                       timestamps=[1.0], raws=["x"])
                client.send_batch([section], batch_seq=5)  # expected 1
                with pytest.raises(ServerError) as excinfo:
                    client.recv()
                assert excinfo.value.code == protocol.ERR_BAD_REQUEST
                assert "gap" in str(excinfo.value)
        finally:
            door.close()

    def test_replayed_batch_is_acked_as_a_noop(self, tmp_path):
        door = Door(tmp_path)
        try:
            with door.client(producer_id="p1") as client:
                report = client.ingest("app", ["one", "two"], timestamp=1.0)
                assert report.accepted == 2
                assert client.producer_seq == 1
                # Replay the same batch_seq by hand: the ack-was-lost path.
                from repro.service.transport import BatchSection

                section = BatchSection(topic="app", first_seq=0,
                                       timestamps=[1.0, 1.0],
                                       raws=["one", "two"])
                client.send_batch([section], batch_seq=1)
                response = client.recv()
                assert response["deduped"] is True
                assert response["accepted"] == 0
                assert door.server.counters["deduped_batches"] == 1
                client.drain()
                stored = int(client.topic_stats("app")["n_records"])
                assert stored == 2  # applied exactly once
        finally:
            door.close()

    def test_lost_ack_replay_lands_exactly_once(self, tmp_path):
        """The chaos drill's core move, in miniature: the server applies a
        batch durably, then drops the ack on the floor (connection abort);
        the client replays it on a fresh connection and dedup turns the
        replay into a no-op."""
        door = Door(tmp_path)
        failpoints.configure("server.ack_lost", "raise", nth=2, times=1)
        try:
            with door.client(producer_id="p1") as client:
                total = 0
                report = IngestReport()
                for batch in range(4):
                    raws = [f"batch {batch} record {i}" for i in range(25)]
                    client.ingest("app", raws, timestamp=float(batch),
                                  report=report)
                    total += len(raws)
                assert report.accepted == total
                assert report.replayed == 1
                assert report.deduped == 1
                assert report.reconnects == 1
                client.drain()
                assert int(client.topic_stats("app")["n_records"]) == total
        finally:
            failpoints.clear_all()
            door.close()

    def test_dedup_state_survives_server_restart(self, tmp_path):
        door = Door(tmp_path)
        try:
            with door.client(producer_id="p1") as client:
                for batch in range(3):
                    client.ingest("app", [f"pre-restart {batch}"],
                                  timestamp=float(batch))
                assert client.producer_seq == 3

            report = door.restart()
            assert report.producer_marks == {"alpha::p1": 3}

            with door.client(producer_id="p1") as client:
                # The session resumes after the recovered high-water mark.
                assert client.hello["producer_seq"] == 3
                from repro.service.transport import BatchSection

                section = BatchSection(topic="app", first_seq=0,
                                       timestamps=[9.0], raws=["replayed"])
                client.send_batch([section], batch_seq=3)
                assert client.recv()["deduped"] is True
                client.producer_seq = 3
                client.ingest("app", ["post-restart"], timestamp=9.0)
                client.drain()
                assert int(client.topic_stats("app")["n_records"]) == 4
        finally:
            door.close()


# --------------------------------------------------------------------- #
# Standby role + redirect
# --------------------------------------------------------------------- #


class _StandbyDoor:
    """A standby server over a :class:`StandbyRuntime` (promotable)."""

    def __init__(self, tmp_path, tenants_data=None, config=None,
                 primary_hint="127.0.0.1:9", auto_promote=False):
        self.config = config or ByteBrainConfig(n_shards=2)
        self.tenants_data = tenants_data or PLAIN_TENANTS
        self.tenants = build_tenant_specs(self.tenants_data)
        self.standby = StandbyRuntime(tmp_path, config=self.config)
        self.shipper = None  # attached by tests that ship
        self._promoted_runtime = None

        def promote_hook():
            if self.shipper is not None:
                self.shipper.stop()
                self.shipper.catch_up()
            runtime = self.standby.promote()
            # Tenant topics that never saw a shipped frame must still
            # exist on the promoted node (same bootstrap as `cli serve`).
            for spec, topics in self.tenants:
                for topic in topics:
                    name = qualify_topic(spec.name, topic)
                    try:
                        self.standby.service.topic(name)
                    except KeyError:
                        runtime.create_topic(name)
            self._promoted_runtime = runtime
            return self.standby.service, runtime

        self.server = LogServer(
            self.standby.service, None, self.tenants, config=self.config,
            role="standby", primary_hint=primary_hint,
            promote_hook=promote_hook, auto_promote=auto_promote,
        )
        self._thread, self._stop = run_server_in_thread(self.server)

    @property
    def port(self):
        return self.server.port

    def close(self):
        if self.shipper is not None:
            self.shipper.stop()
        try:
            self._stop()
        finally:
            if self._promoted_runtime is not None:
                self._promoted_runtime.shutdown(drain=False)
            self.standby.close()


class TestStandbyRole:
    def test_hello_announces_standby_and_redirect_hint(self, tmp_path):
        standby = _StandbyDoor(tmp_path, primary_hint="127.0.0.1:4242")
        try:
            (hello,) = _raw_call(standby.port, {"op": "hello", "tenant": "alpha"})
            assert hello["role"] == "standby"
            assert hello["primary"] == "127.0.0.1:4242"
        finally:
            standby.close()

    def test_writes_are_refused_with_not_primary(self, tmp_path):
        standby = _StandbyDoor(tmp_path, primary_hint="127.0.0.1:4242")
        try:
            hello, refused = _raw_call(
                standby.port,
                {"op": "hello", "tenant": "alpha"},
                {"op": "ingest", "topic": "app", "records": ["x"],
                 "timestamp": 1.0},
            )
            assert refused["error"] == protocol.ERR_NOT_PRIMARY
            assert refused["primary"] == "127.0.0.1:4242"
            assert standby.server.counters["not_primary"] == 1
        finally:
            standby.close()

    def test_ping_and_promote_are_answered(self, tmp_path):
        standby = _StandbyDoor(tmp_path)
        try:
            ping, hello, promoted = _raw_call(
                standby.port,
                {"op": "ping"},  # pre-hello: the failure detector's probe
                {"op": "hello", "tenant": "alpha"},
                {"op": "promote"},
            )
            assert ping["pong"] and ping["role"] == "standby"
            assert promoted["promoted"] is True
            assert promoted["role"] == "primary"
            # Idempotent: a second promote is a no-op.
            _, again = _raw_call(standby.port,
                                 {"op": "hello", "tenant": "alpha"},
                                 {"op": "promote"})
            assert again["promoted"] is False
        finally:
            standby.close()

    def test_client_constructor_refuses_a_lone_standby(self, tmp_path):
        standby = _StandbyDoor(tmp_path)
        try:
            with pytest.raises(ConnectionError):
                ServiceClient("127.0.0.1", standby.port, "alpha",
                              reconnect_attempts=2, reconnect_backoff=0.01)
        finally:
            standby.close()


# --------------------------------------------------------------------- #
# End-to-end failover
# --------------------------------------------------------------------- #


class TestFailover:
    def test_sessioned_client_follows_a_promotion(self, tmp_path):
        """Primary dies; the standby is promoted; the same client keeps
        ingesting on the same session with zero loss and zero duplicates."""
        primary = Door(tmp_path / "primary")
        standby = _StandbyDoor(tmp_path / "standby", config=primary.config)
        standby.shipper = WalShipper(tmp_path / "primary" / "wal", standby.standby)
        client = None
        try:
            client = primary.client(producer_id="p1", reconnect_backoff=0.01)
            report = IngestReport()
            acked = [f"pre-failover {i}" for i in range(50)]
            client.ingest("app", acked, timestamp=1.0, report=report)
            primary.runtime.drain()
            standby.shipper.catch_up()

            # The primary dies (server + runtime down, WAL left on disk).
            primary.close()
            _, promoted = _raw_call(standby.port,
                                    {"op": "hello", "tenant": "alpha"},
                                    {"op": "promote"})
            assert promoted["promoted"] is True

            # The client only knows the dead endpoint until we tell it.
            client.endpoints.append(("127.0.0.1", standby.port))
            more = [f"post-failover {i}" for i in range(30)]
            client.ingest("app", more, timestamp=2.0, report=report)
            assert report.accepted == 80
            assert report.reconnects >= 1
            assert report.failovers >= 1

            client.drain()
            stored = int(client.topic_stats("app")["n_records"])
            assert stored == 80
            # Exactly once: nothing lost, nothing doubled, nothing invented.
            engine = standby.standby.service.topic("alpha::app").topic
            survived = [engine.record(i).raw for i in range(engine.high_watermark)]
            assert sorted(survived) == sorted(acked + more)
        finally:
            if client is not None:
                client.close()
            standby.close()
            try:
                primary.close()
            except Exception:
                pass

    def test_promotion_carries_the_dedup_marks(self, tmp_path):
        """A batch acked by the primary and replayed against the promoted
        standby is a dedup no-op: the marks travelled inside the shipped
        WAL frames."""
        primary = Door(tmp_path / "primary")
        standby = _StandbyDoor(tmp_path / "standby", config=primary.config)
        standby.shipper = WalShipper(tmp_path / "primary" / "wal", standby.standby)
        try:
            with primary.client(producer_id="p1") as client:
                client.ingest("app", ["acked once"], timestamp=1.0)
            primary.runtime.drain()
            standby.shipper.catch_up()
            primary.close()
            _raw_call(standby.port, {"op": "hello", "tenant": "alpha"},
                      {"op": "promote"})

            with ServiceClient("127.0.0.1", standby.port, "alpha",
                               producer_id="p1") as client:
                assert client.hello["producer_seq"] == 1
                from repro.service.transport import BatchSection

                section = BatchSection(topic="app", first_seq=0,
                                       timestamps=[1.0], raws=["acked once"])
                client.send_batch([section], batch_seq=1)
                assert client.recv()["deduped"] is True
        finally:
            standby.close()
            try:
                primary.close()
            except Exception:
                pass

    def test_auto_promote_watchdog_fires_on_missed_heartbeats(self, tmp_path):
        # Port 9 (discard) refuses instantly, so every probe is a miss.
        config = ByteBrainConfig(n_shards=2, ha_heartbeat_interval=0.05,
                                 ha_heartbeat_misses=2)
        standby = _StandbyDoor(tmp_path, config=config,
                               primary_hint="127.0.0.1:9", auto_promote=True)
        try:
            deadline = time.time() + 30.0
            while time.time() < deadline and standby.server.role != "primary":
                time.sleep(0.02)
            assert standby.server.role == "primary"
            with ServiceClient("127.0.0.1", standby.port, "alpha") as client:
                assert client.ingest("app", ["served by the promoted node"],
                                     timestamp=1.0).accepted == 1
        finally:
            standby.close()

    def test_watchdog_does_not_fire_while_the_primary_answers(self, tmp_path):
        primary = Door(tmp_path / "primary")
        config = ByteBrainConfig(n_shards=2, ha_heartbeat_interval=0.05,
                                 ha_heartbeat_misses=2)
        standby = _StandbyDoor(
            tmp_path / "standby", config=config,
            primary_hint=f"127.0.0.1:{primary.port}", auto_promote=True,
        )
        try:
            time.sleep(1.0)  # ~20 heartbeat intervals
            assert standby.server.role == "standby"
        finally:
            standby.close()
            primary.close()


# --------------------------------------------------------------------- #
# Dynamic topic creation (both backends)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestDynamicTopics:
    def test_create_topic_then_ingest(self, tmp_path, backend):
        door = Door(tmp_path, backend=backend)
        try:
            with door.client() as client:
                assert client.hello["topics"] == ["app"]
                response = client.call("create_topic", topic="fresh")
                assert response["topics"] == ["app", "fresh"]
                report = client.ingest("fresh", [f"new topic record {i}"
                                                 for i in range(20)],
                                       timestamp=1.0)
                assert report.accepted == 20
                client.drain()
                assert int(client.topic_stats("fresh")["n_records"]) == 20
                # Idempotent: re-creating is a no-op, data intact.
                client.call("create_topic", topic="fresh")
                assert int(client.topic_stats("fresh")["n_records"]) == 20
        finally:
            door.close()

    def test_separator_cannot_be_smuggled(self, tmp_path, backend):
        door = Door(tmp_path, backend=backend)
        try:
            with door.client() as client:
                with pytest.raises(ServerError) as excinfo:
                    client.call("create_topic", topic="beta::app")
                assert excinfo.value.code == protocol.ERR_BAD_REQUEST
        finally:
            door.close()
