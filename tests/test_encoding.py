"""Unit tests for §4.1.4 hash / ordinal encoding."""

import numpy as np
import pytest

from repro.core.encoding import (
    HashEncoder,
    OrdinalEncoder,
    collision_probability,
    hash_token,
    make_encoder,
)


class TestHashToken:
    def test_deterministic(self):
        assert hash_token("DataNode") == hash_token("DataNode")

    def test_distinct_tokens_differ(self):
        assert hash_token("alpha") != hash_token("beta")

    def test_fits_in_64_bits(self):
        assert 0 <= hash_token("x" * 500) < 2**64

    def test_unicode_tokens_supported(self):
        assert isinstance(hash_token("日志解析"), int)


class TestCollisionProbability:
    def test_zero_for_single_token(self):
        assert collision_probability(1) == 0.0

    def test_paper_example_ten_million_tokens(self):
        # §4.1.4: ~0.000271% for 10 million distinct tokens.
        probability = collision_probability(10_000_000)
        assert probability == pytest.approx(2.71e-6, rel=0.05)

    def test_monotonic_in_token_count(self):
        assert collision_probability(10**6) < collision_probability(10**7)

    def test_smaller_hash_space_collides_more(self):
        assert collision_probability(1000, bits=32) > collision_probability(1000, bits=64)


class TestHashEncoder:
    def test_shape_and_dtype(self):
        encoded = HashEncoder().encode_tokens(["a", "b", "c"])
        assert encoded.shape == (3,)
        assert encoded.dtype == np.uint64

    def test_matches_hash_token(self):
        encoded = HashEncoder().encode_tokens(["alpha"])
        assert int(encoded[0]) == hash_token("alpha")

    def test_no_dictionary_storage(self):
        encoder = HashEncoder()
        encoder.encode_batch([["a", "b"], ["c"]])
        assert encoder.dictionary_size_bytes() == 0

    def test_stateless_across_instances(self):
        a = HashEncoder().encode_tokens(["x", "y"])
        b = HashEncoder().encode_tokens(["x", "y"])
        assert np.array_equal(a, b)


class TestOrdinalEncoder:
    def test_assigns_consecutive_ids(self):
        encoder = OrdinalEncoder()
        encoded = encoder.encode_tokens(["a", "b", "a", "c"])
        assert encoded.tolist() == [0, 1, 0, 2]

    def test_dictionary_grows_with_vocabulary(self):
        encoder = OrdinalEncoder()
        encoder.encode_tokens(["a", "b"])
        small = encoder.dictionary_size_bytes()
        encoder.encode_tokens([f"token{i}" for i in range(100)])
        assert encoder.dictionary_size_bytes() > small
        assert encoder.vocabulary_size() == 102

    def test_hash_encoder_dictionary_smaller_than_ordinal(self):
        tokens = [f"token{i}" for i in range(1000)]
        hash_encoder, ordinal_encoder = HashEncoder(), OrdinalEncoder()
        hash_encoder.encode_tokens(tokens)
        ordinal_encoder.encode_tokens(tokens)
        assert hash_encoder.dictionary_size_bytes() < ordinal_encoder.dictionary_size_bytes()


class TestFactory:
    def test_make_hash(self):
        assert isinstance(make_encoder("hash"), HashEncoder)

    def test_make_ordinal(self):
        assert isinstance(make_encoder("ordinal"), OrdinalEncoder)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_encoder("onehot")
