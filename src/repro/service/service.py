"""Tenant-facing log parsing service (paper §3 system design, §6 deployment).

:class:`LogParsingService` ties everything together per topic:

* an append-only :class:`~repro.service.topic.LogTopic` holding records and
  their template ids,
* a :class:`~repro.core.parser.ByteBrainParser` trained periodically by a
  :class:`~repro.service.scheduler.TrainingScheduler`,
* an :class:`~repro.service.internal_topic.InternalTemplateTopic` recording
  template metadata after every round,
* query-time precision adjustment (the web UI's "precision slider"),
* a per-topic template library usable for alerting, and
* the analytics features of §6 (anomaly detection, period comparison,
  failure-scenario matching).

Time is always passed in explicitly so the service is deterministic in tests
and benchmarks; production would pass wall-clock time.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ByteBrainConfig
from repro.core.incremental import DriftPolicy, IncrementalRound, IncrementalTrainer
from repro.core.matcher import MatchResult
from repro.core.modelstore import ModelStore, ModelVersion
from repro.core.parser import ByteBrainParser
from repro.core.query import TemplateGroup
from repro.core.model import Template
from repro.service.analytics import (
    FailureScenarioLibrary,
    TemplateAnomaly,
    TemplateAnomalyDetector,
    compare_template_distributions,
)
from repro.service.indexer import IndexingPipeline, IngestionOutcome
from repro.service.internal_topic import InternalTemplateTopic
from repro.service.scheduler import SchedulerPolicy, TrainingScheduler
from repro.service.topic import LogTopic

__all__ = ["TopicState", "LogParsingService"]


@dataclass
class TopicState:
    """Everything the service keeps per log topic."""

    topic: LogTopic
    parser: ByteBrainParser
    scheduler: TrainingScheduler
    pipeline: IndexingPipeline
    internal_topic: InternalTemplateTopic
    trainer: IncrementalTrainer
    store: Optional[ModelStore] = None
    template_library: Dict[str, int] = field(default_factory=dict)
    #: Record id up to which the model has been trained; the topic itself is
    #: the delta buffer (``topic.records_since(trained_watermark)``).
    trained_watermark: int = 0
    #: Serialises model swaps against readers that snapshot the parser.
    #: Rounds compute the next model + matcher entirely outside this lock;
    #: only the pointer swap holds it, so queries never wait on training.
    lock: threading.Lock = field(default_factory=threading.Lock)
    last_round: Optional[IncrementalRound] = None


class LogParsingService:
    """Multi-topic, multi-tenant log parsing service (in-process simulation)."""

    def __init__(
        self,
        config: Optional[ByteBrainConfig] = None,
        scheduler_policy: Optional[SchedulerPolicy] = None,
        drift_policy: Optional[DriftPolicy] = None,
        store_root: Optional[os.PathLike] = None,
    ) -> None:
        self.config = config or ByteBrainConfig()
        self.scheduler_policy = scheduler_policy or SchedulerPolicy()
        self.drift_policy = drift_policy or DriftPolicy()
        #: Directory under which each topic gets a versioned model store
        #: (``<store_root>/<topic>``); ``None`` disables persistence.
        self.store_root = Path(store_root) if store_root is not None else None
        self._topics: Dict[str, TopicState] = {}
        self.failure_library = FailureScenarioLibrary()
        self.anomaly_detector = TemplateAnomalyDetector()

    # ------------------------------------------------------------------ #
    # topic lifecycle
    # ------------------------------------------------------------------ #
    def create_topic(self, name: str, config: Optional[ByteBrainConfig] = None) -> TopicState:
        """Create a log topic (errors if it already exists)."""
        if name in self._topics:
            raise ValueError(f"topic {name!r} already exists")
        topic = LogTopic(name)
        topic_config = config or self.config
        parser = ByteBrainParser(topic_config)
        scheduler = TrainingScheduler(SchedulerPolicy(**vars(self.scheduler_policy)))
        pipeline = IndexingPipeline(topic, scheduler)
        state = TopicState(
            topic=topic,
            parser=parser,
            scheduler=scheduler,
            pipeline=pipeline,
            internal_topic=InternalTemplateTopic(name),
            trainer=IncrementalTrainer(topic_config, DriftPolicy(**vars(self.drift_policy))),
            store=ModelStore(self.store_root / name) if self.store_root is not None else None,
        )
        self._topics[name] = state
        return state

    def topic_names(self) -> List[str]:
        """Names of all existing topics."""
        return list(self._topics)

    def topic(self, name: str) -> TopicState:
        """Fetch a topic's state (KeyError if unknown)."""
        return self._topics[name]

    def drop_topic(self, name: str) -> None:
        """Delete a topic and everything associated with it."""
        del self._topics[name]

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, topic_name: str, raw: str, now: float) -> IngestionOutcomeWithTraining:
        """Ingest one record; runs a training round first if the scheduler says so."""
        state = self._topics[topic_name]
        trained = self.maybe_train(topic_name, now)
        outcome = state.pipeline.ingest(raw, timestamp=now)
        if outcome.is_new_template and outcome.template_id is not None:
            state.internal_topic.publish_template(state.parser.model.get(outcome.template_id))
        return IngestionOutcomeWithTraining(outcome=outcome, trained=trained)

    def ingest_batch(self, topic_name: str, raws: Sequence[str], now: float) -> int:
        """Ingest a batch of records at one timestamp; returns count stored.

        The whole batch flows through the pipeline's batched match engine
        (one deduplicated, length-bucketed broadcast match call) instead of
        per-record ingestion.  Scheduler triggers are checked before and
        after the batch, so volume thresholds crossed mid-batch still fire
        at batch granularity — the same behaviour the paper's ingestion
        buffers exhibit.
        """
        if not raws:
            return 0
        state = self._topics[topic_name]
        self.maybe_train(topic_name, now)
        outcomes = state.pipeline.ingest_batch(raws, timestamp=now)
        for outcome in outcomes:
            if outcome.is_new_template and outcome.template_id is not None:
                state.internal_topic.publish_template(state.parser.model.get(outcome.template_id))
        self.maybe_train(topic_name, now)
        return len(raws)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def maybe_train(self, topic_name: str, now: float) -> bool:
        """Run a training round if the scheduler's trigger condition holds."""
        state = self._topics[topic_name]
        if not state.scheduler.should_train(now):
            return False
        self.train_now(topic_name, now)
        return True

    def train_now(self, topic_name: str, now: float, force_full: bool = False) -> None:
        """Run one training round on the records ingested since the last one.

        The first round clusters everything accumulated; later rounds run
        incrementally (novelty filter + residual clustering + weighted
        merge, escalating to a full retrain per the drift policy).  The
        round computes a *new* model and a fully-built matcher off to the
        side, then swaps both in atomically under the topic lock — queries
        and matches issued mid-round keep hitting the previous version
        (zero-downtime).  When the service has a ``store_root``, every
        round's model is persisted as a new :class:`ModelStore` version.
        """
        state = self._topics[topic_name]
        watermark = state.topic.high_watermark
        delta_records = state.topic.records_since(state.trained_watermark)
        if not delta_records and not force_full:
            return
        round_result = state.trainer.round(
            state.parser.model if state.parser.is_trained else None,
            [r.raw for r in delta_records],
            # The pipeline matched every delta record at ingestion, so the
            # round reuses those assignments and clusters only the records
            # that were unmatched or fell back to temporary templates.
            delta_template_ids=[r.template_id for r in delta_records],
            full_corpus=lambda: [r.raw for r in state.topic.records()],
            force_full=force_full,
        )
        model_changed = round_result.mode != "incremental" or round_result.n_clustered > 0
        if not model_changed:
            # No-op round: the delta was fully explained, so the only
            # difference between the round's model and the live one is the
            # reused templates' weights.  Apply those in place (weights are
            # not read by concurrent matching) instead of paying a model
            # swap, matcher/index rebuild, internal-topic snapshot and
            # store version for a model with no new structure.
            live = state.parser.model
            with state.lock:
                for template in round_result.model.templates():
                    if template.template_id in live:
                        live.get(template.template_id).weight = template.weight
                state.trained_watermark = watermark
            state.last_round = round_result
            state.scheduler.training_completed(now, mode=round_result.mode)
            return
        # Build the next matcher (including its vectorised match index)
        # against the new model entirely outside the lock.  The training
        # assignments map is only consulted by the "naive" matching
        # strategy; skip maintaining (and copying) it otherwise — it grows
        # with every unique clustered tuple.
        if state.parser.config.matching_strategy == "naive":
            assignments = state.parser.training_assignments
            assignments.update(round_result.training_assignments)
        else:
            assignments = None
        matcher = state.parser.build_matcher(round_result.model, assignments)
        with state.lock:
            state.parser.install_model(
                round_result.model, matcher=matcher, training_assignments=assignments
            )
            state.pipeline.attach_matcher(matcher)
            state.trained_watermark = watermark
        state.last_round = round_result
        state.scheduler.training_completed(now, mode=round_result.mode)
        state.internal_topic.publish_model(round_result.model)
        state.pipeline.backfill_templates(matcher)
        if state.store is not None:
            state.store.save(
                round_result.model,
                created_at=now,
                mode=round_result.mode,
                metadata={
                    "round": state.scheduler.training_rounds,
                    "reason": round_result.reason,
                    "n_delta_records": round_result.n_delta_records,
                    "n_reused": round_result.n_reused,
                    "n_clustered": round_result.n_clustered,
                    # Restored by rollback_model so the next round's delta
                    # re-covers everything this version never saw.
                    "trained_watermark": watermark,
                },
            )

    # ------------------------------------------------------------------ #
    # model versioning
    # ------------------------------------------------------------------ #
    def model_versions(self, topic_name: str) -> List[ModelVersion]:
        """Version history of the topic's persisted models (oldest first)."""
        state = self._topics[topic_name]
        if state.store is None:
            return []
        return state.store.versions()

    def rollback_model(self, topic_name: str) -> ModelVersion:
        """Hot-swap the topic back to the previous persisted model version.

        Moves the store's *current* pointer one version back, reloads that
        snapshot and installs it atomically (same swap discipline as a
        training round).  The training watermark rewinds to the point the
        restored version was trained at, so the next round re-covers every
        record the rolled-back-away versions had learned (their template
        knowledge would otherwise be lost for good).  Raises
        ``RuntimeError`` without a ``store_root``.
        """
        state = self._topics[topic_name]
        if state.store is None:
            raise RuntimeError(f"topic {topic_name!r} has no model store configured")
        version = state.store.rollback()
        model = state.store.load(version.version)
        # Ids handed out by the newer (rolled-back-away) versions are still
        # referenced by stored records; the restored model must never mint
        # them again for unrelated templates.
        model.reserve_ids(state.parser.model.next_template_id)
        matcher = state.parser.build_matcher(model)
        with state.lock:
            state.parser.install_model(model, matcher=matcher)
            state.pipeline.attach_matcher(matcher)
            state.trained_watermark = int(version.metadata.get("trained_watermark", 0))
        # Metadata readers must see the restored model, same as after any
        # other swap.
        state.internal_topic.publish_model(model)
        return version

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def match(self, topic_name: str, raw: str) -> MatchResult:
        """Match one record against the topic's live model without storing it.

        Snapshots the parser's matcher under the topic lock (a pointer
        read), then matches outside it — concurrent hot swaps never leave
        this call holding a half-built index.  The match is strictly
        read-only (``register_misses=False``): a record the model cannot
        explain comes back with ``template_id == -1`` instead of mutating
        the shared model from a reader thread.
        """
        state = self._topics[topic_name]
        with state.lock:
            if not state.parser.is_trained:
                raise RuntimeError(f"topic {topic_name!r} has no trained model yet")
            matcher = state.parser.matcher
        return matcher.match(raw, register_misses=False)

    # ------------------------------------------------------------------ #
    # query
    # ------------------------------------------------------------------ #
    def query_templates(
        self,
        topic_name: str,
        threshold: float,
        text_filter: Optional[str] = None,
        merge_wildcards: bool = True,
    ) -> List[TemplateGroup]:
        """Group the topic's records by template at a precision threshold.

        This is the paper's query path: records already carry the most
        precise template id, the threshold walks ancestors upward, and
        consecutive wildcards are merged for presentation.
        """
        state = self._topics[topic_name]
        if text_filter:
            records = state.topic.search_text(text_filter)
        else:
            records = state.topic.records()
        template_ids = [r.template_id for r in records if r.template_id is not None]
        with state.lock:
            # Snapshot the engine so a concurrent hot swap cannot hand this
            # query a model mid-installation.
            query_engine = state.parser.query_engine
        return query_engine.group_records(
            template_ids, threshold, merge_wildcards=merge_wildcards
        )

    def template_count(self, topic_name: str, threshold: float) -> int:
        """Number of distinct templates visible at a precision threshold."""
        state = self._topics[topic_name]
        return len(state.parser.model.templates_at_threshold(threshold))

    # ------------------------------------------------------------------ #
    # template library and alerting
    # ------------------------------------------------------------------ #
    def save_template_to_library(self, topic_name: str, label: str, template_id: int) -> None:
        """Save a template under a user-chosen label (§6 template library)."""
        state = self._topics[topic_name]
        if template_id not in state.parser.model:
            raise KeyError(f"template {template_id} does not exist in topic {topic_name!r}")
        state.template_library[label] = template_id

    def library_counts(self, topic_name: str) -> Dict[str, int]:
        """Record counts of every library template (alerting input)."""
        state = self._topics[topic_name]
        counts = state.topic.template_counts()
        result: Dict[str, int] = {}
        for label, template_id in state.template_library.items():
            total = counts.get(template_id, 0)
            for descendant in state.parser.model.descendants(template_id):
                total += counts.get(descendant.template_id, 0)
            result[label] = total
        return result

    # ------------------------------------------------------------------ #
    # analytics (§6)
    # ------------------------------------------------------------------ #
    def detect_anomalies(
        self,
        topic_name: str,
        baseline_window: Tuple[float, float],
        current_window: Tuple[float, float],
    ) -> List[TemplateAnomaly]:
        """Template-count anomaly detection between two time windows."""
        state = self._topics[topic_name]
        baseline_ids = [
            r.template_id
            for r in state.topic.records_between(*baseline_window)
            if r.template_id is not None
        ]
        current_ids = [
            r.template_id
            for r in state.topic.records_between(*current_window)
            if r.template_id is not None
        ]
        return self.anomaly_detector.detect(baseline_ids, current_ids)

    def compare_periods(
        self,
        topic_name: str,
        period_a: Tuple[float, float],
        period_b: Tuple[float, float],
    ):
        """Template-distribution comparison across two time periods."""
        state = self._topics[topic_name]
        ids_a = [
            r.template_id
            for r in state.topic.records_between(*period_a)
            if r.template_id is not None
        ]
        ids_b = [
            r.template_id
            for r in state.topic.records_between(*period_b)
            if r.template_id is not None
        ]
        return compare_template_distributions(ids_a, ids_b)

    def match_failure_scenarios(self, topic_name: str, window: Tuple[float, float]):
        """Match the window's templates against the known-failure library."""
        state = self._topics[topic_name]
        template_ids = {
            r.template_id
            for r in state.topic.records_between(*window)
            if r.template_id is not None
        }
        templates: List[Template] = [
            state.parser.model.get(tid) for tid in template_ids if tid in state.parser.model
        ]
        return self.failure_library.match(templates)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def topic_stats(self, topic_name: str) -> Dict[str, float]:
        """Operational statistics for one topic (Table 5-style reporting)."""
        state = self._topics[topic_name]
        model_stats = state.parser.model.stats()
        n_versions, current = state.store.summary() if state.store is not None else (0, None)
        return {
            "n_records": float(len(state.topic)),
            "raw_bytes": float(state.topic.size_bytes()),
            "n_templates": float(model_stats["n_templates"]),
            "model_size_bytes": float(model_stats["size_bytes"]),
            "training_rounds": float(state.scheduler.training_rounds),
            "incremental_rounds": float(state.scheduler.incremental_rounds),
            "full_rounds": float(state.scheduler.full_rounds),
            "pending_records": float(state.topic.high_watermark - state.trained_watermark),
            "n_model_versions": float(n_versions),
            "model_version": float(current.version) if current is not None else 0.0,
        }


@dataclass
class IngestionOutcomeWithTraining:
    """Ingestion outcome plus whether a training round was triggered."""

    outcome: IngestionOutcome
    trained: bool
