"""Synthetic LogHub-style corpus generation with exact ground truth.

A :class:`SyntheticLogGenerator` renders a corpus for one catalogued system:
it takes the curated templates of the :class:`~repro.datasets.catalog.SystemSpec`,
tops them up with procedurally generated templates until the target template
count of the chosen variant (LogHub vs LogHub-2.0) is reached, draws template
frequencies from a Zipf distribution (log data is heavily skewed — Fig. 4),
and renders each log line by filling the template's ``{kind}`` placeholders
with random values.

Every line carries its ground-truth template index, so Grouping Accuracy can
be computed exactly.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.catalog import ANDROID_WAKELOCK_TEMPLATES, SystemSpec
from repro.datasets.variables import VARIABLE_KINDS, render_variable

__all__ = ["LogDataset", "SyntheticLogGenerator", "render_template", "generate_android_wakelock"]

_PLACEHOLDER_RE = re.compile(r"\{(" + "|".join(sorted(VARIABLE_KINDS, key=len, reverse=True)) + r")\}")


def render_template(template: str, rng: np.random.Generator) -> str:
    """Render one concrete log line from a template string.

    ``{kind}`` placeholders are replaced by random values; ``{{``/``}}``
    escape literal braces.
    """
    rendered = _PLACEHOLDER_RE.sub(lambda match: render_variable(match.group(1), rng), template)
    return rendered.replace("{{", "{").replace("}}", "}")


@dataclass
class LogDataset:
    """A generated (or loaded) benchmark corpus with ground truth."""

    name: str
    variant: str
    lines: List[str]
    ground_truth: List[int]
    templates: List[str]
    source: str = "synthetic"

    @property
    def n_logs(self) -> int:
        """Number of log lines."""
        return len(self.lines)

    @property
    def n_templates(self) -> int:
        """Number of distinct ground-truth templates actually present."""
        return len(set(self.ground_truth))

    @property
    def size_bytes(self) -> int:
        """Raw text size of the corpus (Table 1 "Size")."""
        return sum(len(line.encode("utf-8")) + 1 for line in self.lines)

    def prefix(self, n_logs: int) -> "LogDataset":
        """A new dataset holding only the first ``n_logs`` lines."""
        n_logs = min(n_logs, self.n_logs)
        return LogDataset(
            name=self.name,
            variant=self.variant,
            lines=self.lines[:n_logs],
            ground_truth=self.ground_truth[:n_logs],
            templates=self.templates,
            source=self.source,
        )


# Procedural filler vocabulary: combined with the curated templates these
# give each system enough distinct templates to hit the Table 1 counts.
_FILLER_VERBS = [
    "starting", "stopping", "initialized", "failed to start", "restarting",
    "registered", "unregistered", "scheduling", "completed", "aborted",
    "committing", "rolling back", "allocating", "releasing", "refreshing",
    "loading", "flushing", "validating", "compacting", "rebalancing",
]
_FILLER_SUBJECTS = [
    "worker thread", "connection pool", "session cache", "request handler",
    "heartbeat monitor", "metadata store", "replica set", "shard router",
    "index builder", "queue consumer", "lease manager", "snapshot writer",
    "checkpoint task", "garbage collector", "metrics reporter", "token bucket",
    "rpc channel", "write-ahead log", "page cache", "partition balancer",
]
_FILLER_TAILS = [
    "",
    "after {duration}",
    "for tenant {uuid}",
    "on host {ip}",
    "with status {small_int}",
    "at offset {int}",
    "using {size} of memory",
    "in namespace ns-{int}",
    "for request {uuid}",
    "from peer {ip_port}",
]


class SyntheticLogGenerator:
    """Generates LogHub-style corpora for one catalogued system."""

    def __init__(self, spec: SystemSpec, seed: int = 11) -> None:
        self.spec = spec
        self.seed = seed

    # ------------------------------------------------------------------ #
    # template catalogue
    # ------------------------------------------------------------------ #
    def build_templates(self, n_templates: int) -> List[str]:
        """Curated templates topped up with procedural ones to ``n_templates``."""
        # zlib.crc32 is stable across processes (unlike the built-in hash),
        # keeping generated corpora identical between runs.
        rng = np.random.default_rng(self.seed + zlib.crc32(self.spec.name.encode()) % 10_000)
        templates = list(self.spec.curated_templates[:n_templates])
        existing = set(templates)
        attempts = 0
        while len(templates) < n_templates and attempts < n_templates * 50:
            attempts += 1
            candidate = self._procedural_template(rng)
            if candidate not in existing:
                templates.append(candidate)
                existing.add(candidate)
        return templates

    def _procedural_template(self, rng: np.random.Generator) -> str:
        verb = _FILLER_VERBS[int(rng.integers(len(_FILLER_VERBS)))]
        subject = _FILLER_SUBJECTS[int(rng.integers(len(_FILLER_SUBJECTS)))]
        tail = _FILLER_TAILS[int(rng.integers(len(_FILLER_TAILS)))]
        component = f"{self.spec.name}.{subject.replace(' ', '_')}"
        parts = [component, verb, subject]
        if tail:
            parts.append(tail)
        if rng.random() < 0.5:
            parts.append("id={int}")
        if rng.random() < 0.3:
            parts.append("elapsed {float} ms")
        return " ".join(parts)

    # ------------------------------------------------------------------ #
    # corpus generation
    # ------------------------------------------------------------------ #
    def generate(
        self,
        n_logs: int,
        n_templates: Optional[int] = None,
        variant: str = "loghub",
        seed: Optional[int] = None,
        uniqueness_exponent: Optional[float] = None,
    ) -> LogDataset:
        """Generate a corpus.

        Parameters
        ----------
        n_logs:
            Number of log lines to render.
        n_templates:
            Number of distinct templates; defaults to the catalogue's target
            for the chosen variant.
        variant:
            ``"loghub"`` (small, 2k-scale) or ``"loghub2"`` (large scale).
        seed:
            Override the generator seed (defaults to the constructor's).
        uniqueness_exponent:
            Controls how many *distinct* raw lines each template contributes:
            a template with ``c`` occurrences draws its lines from a pool of
            ``~c**uniqueness_exponent`` distinct renderings.  Distinct-line
            counts therefore grow sublinearly with volume, which is exactly
            the heavy duplication the paper's Fig. 4 documents for real log
            streams (and which deduplication exploits).  Set it to ``1.0``
            for fully distinct renderings.  Defaults to 0.9 for the small
            LogHub variant (2k-line samples are mostly unique) and 0.62 for
            the LogHub-2.0 variant (long streams are heavily duplicated).
        """
        if variant not in ("loghub", "loghub2"):
            raise ValueError(f"variant must be 'loghub' or 'loghub2', got {variant!r}")
        if uniqueness_exponent is None:
            uniqueness_exponent = 0.9 if variant == "loghub" else 0.62
        if not 0.0 < uniqueness_exponent <= 1.0:
            raise ValueError("uniqueness_exponent must be in (0, 1]")
        if n_templates is None:
            n_templates = (
                self.spec.loghub_templates if variant == "loghub" else self.spec.loghub2_templates
            )
        if n_templates <= 0:
            raise ValueError(f"{self.spec.name} has no {variant} variant")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        templates = self.build_templates(n_templates)

        frequencies = self._zipf_frequencies(len(templates), rng)
        template_choices = rng.choice(len(templates), size=n_logs, p=frequencies)
        # Guarantee every template appears at least once (ground truth in the
        # real LogHub labels every template present in the slice).
        for template_idx in range(min(len(templates), n_logs)):
            template_choices[template_idx] = template_idx
        rng.shuffle(template_choices)

        occurrence_counts = np.bincount(template_choices, minlength=len(templates))

        lines: List[str] = []
        ground_truth: List[int] = []
        pools: Dict[int, List[str]] = {}
        pool_limits: Dict[int, int] = {}
        for template_idx, count in enumerate(occurrence_counts):
            if count > 0 and uniqueness_exponent < 1.0:
                pool_limits[template_idx] = max(3, int(round(float(count) ** uniqueness_exponent)))
        for template_idx in template_choices:
            template_idx = int(template_idx)
            limit = pool_limits.get(template_idx)
            pool = pools.setdefault(template_idx, [])
            if limit is not None and len(pool) >= limit:
                line = pool[int(rng.integers(len(pool)))]
            else:
                line = render_template(templates[template_idx], rng)
                pool.append(line)
            lines.append(line)
            ground_truth.append(template_idx)
        return LogDataset(
            name=self.spec.name,
            variant=variant,
            lines=lines,
            ground_truth=ground_truth,
            templates=templates,
        )

    def _zipf_frequencies(self, n_templates: int, rng: np.random.Generator) -> np.ndarray:
        ranks = np.arange(1, n_templates + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, self.spec.zipf_alpha)
        rng.shuffle(weights)
        return weights / weights.sum()


def generate_android_wakelock(n_logs: int = 2000, seed: int = 23) -> LogDataset:
    """Android wakelock acquire/release corpus used for Table 4.

    These are the logs whose templates the paper shows at saturation
    thresholds 0.05 / 0.78 / 0.9 / 0.95.
    """
    rng = np.random.default_rng(seed)
    templates = list(ANDROID_WAKELOCK_TEMPLATES)
    lines: List[str] = []
    ground_truth: List[int] = []
    for _ in range(n_logs):
        template_idx = int(rng.integers(len(templates)))
        lines.append(render_template(templates[template_idx], rng))
        ground_truth.append(template_idx)
    return LogDataset(
        name="AndroidWakelock",
        variant="loghub",
        lines=lines,
        ground_truth=ground_truth,
        templates=templates,
    )
