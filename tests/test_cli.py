"""Tests for the command-line interface."""

import json
import math

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def log_file(tmp_path):
    lines = [f"worker {i} finished job {i * 7} in {i % 50} ms" for i in range(200)]
    lines += [f"worker {i} failed job {i * 3} with code {i % 5}" for i in range(100)]
    path = tmp_path / "app.log"
    path.write_text("\n".join(lines), encoding="utf-8")
    return path


class TestArgumentParsing:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_input_and_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--input", "x.log"])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.dataset == "HDFS"
        assert args.variant == "loghub"
        assert args.baselines == []


class TestTrainAndMatch:
    def test_train_writes_a_loadable_model(self, log_file, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        exit_code = main(["train", "--input", str(log_file), "--model", str(model_path)])
        assert exit_code == 0
        payload = json.loads(model_path.read_text(encoding="utf-8"))
        assert payload["templates"]
        out = capsys.readouterr().out
        assert "templates" in out

    def test_train_on_empty_file_fails_cleanly(self, tmp_path):
        empty = tmp_path / "empty.log"
        empty.write_text("\n", encoding="utf-8")
        exit_code = main(["train", "--input", str(empty), "--model", str(tmp_path / "m.json")])
        assert exit_code == 2

    def test_match_emits_one_template_per_line(self, log_file, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["train", "--input", str(log_file), "--model", str(model_path)])
        capsys.readouterr()
        exit_code = main(
            ["match", "--input", str(log_file), "--model", str(model_path), "--threshold", "0.6"]
        )
        assert exit_code == 0
        out_lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(out_lines) == 300
        assert all("\t" in line for line in out_lines)

    def test_match_threshold_controls_granularity(self, log_file, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["train", "--input", str(log_file), "--model", str(model_path)])
        capsys.readouterr()
        main(["match", "--input", str(log_file), "--model", str(model_path), "--threshold", "0.9"])
        fine = {line.split("\t")[1] for line in capsys.readouterr().out.splitlines() if "\t" in line}
        main(["match", "--input", str(log_file), "--model", str(model_path), "--threshold", "0.1"])
        coarse = {line.split("\t")[1] for line in capsys.readouterr().out.splitlines() if "\t" in line}
        assert len(coarse) <= len(fine)


class TestModelStoreCommands:
    def test_save_model_then_load_latest_matches_identically(self, log_file, tmp_path, capsys):
        """Acceptance: a model saved with save-model, reloaded via
        ModelStore.load_latest, produces identical match results on a
        held-out batch."""
        from repro.core.config import ByteBrainConfig
        from repro.core.matcher import OnlineMatcher
        from repro.core.modelstore import ModelStore
        from repro.core.trainer import OfflineTrainer

        store_dir = tmp_path / "store"
        exit_code = main(["save-model", "--store", str(store_dir), "--input", str(log_file)])
        assert exit_code == 0
        assert "saved version 1" in capsys.readouterr().out

        config = ByteBrainConfig()
        lines = log_file.read_text(encoding="utf-8").splitlines()
        direct = OfflineTrainer(config).train(lines).model
        reloaded = ModelStore(store_dir).load_latest()

        held_out = [f"worker {500 + i} finished job {i * 11} in {i % 7} ms" for i in range(50)]
        held_out += [f"worker {500 + i} failed job {i} with code {i % 4}" for i in range(30)]
        direct_ids = [r.template_id for r in OnlineMatcher(direct, config=config).match_many(held_out)]
        reloaded_ids = [
            r.template_id for r in OnlineMatcher(reloaded, config=config).match_many(held_out)
        ]
        assert direct_ids == reloaded_ids

    def test_save_model_snapshot_of_existing_json(self, log_file, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["train", "--input", str(log_file), "--model", str(model_path)])
        capsys.readouterr()
        store_dir = tmp_path / "store"
        assert main(["save-model", "--store", str(store_dir), "--model", str(model_path)]) == 0
        assert main(["save-model", "--store", str(store_dir), "--model", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "saved version 2" in out

    def test_save_model_requires_exactly_one_source(self, log_file, tmp_path):
        store = str(tmp_path / "store")
        assert main(["save-model", "--store", store]) == 2
        assert (
            main(
                [
                    "save-model", "--store", store,
                    "--input", str(log_file), "--model", str(log_file),
                ]
            )
            == 2
        )

    def test_load_model_prints_metadata_and_exports(self, log_file, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(["save-model", "--store", str(store_dir), "--input", str(log_file), "--tag", "demo"])
        capsys.readouterr()
        out_path = tmp_path / "exported.json"
        exit_code = main(
            ["load-model", "--store", str(store_dir), "--output", str(out_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "version 1" in out and "demo" in out
        assert json.loads(out_path.read_text(encoding="utf-8"))["templates"]

    def test_load_model_from_empty_store_fails_cleanly(self, tmp_path):
        assert main(["load-model", "--store", str(tmp_path / "nothing")]) == 2


class TestWalCommands:
    @pytest.fixture()
    def crashed_state(self, tmp_path):
        """A store + WAL left behind by a drained runtime (as if crashed)."""
        from repro.core.config import ByteBrainConfig
        from repro.service.runtime import ShardedRuntime
        from repro.service.scheduler import SchedulerPolicy
        from repro.service.service import LogParsingService

        store, wal_dir = tmp_path / "store", tmp_path / "wal"
        service = LogParsingService(
            config=ByteBrainConfig(),
            scheduler_policy=SchedulerPolicy(
                volume_threshold=10**9, time_interval_seconds=10**9,
                initial_volume_threshold=100,
            ),
            store_root=store,
        )
        service.create_topic("checkout")
        with ShardedRuntime(service, n_shards=1, wal_dir=wal_dir) as runtime:
            for i in range(200):
                runtime.submit("checkout", f"checkout request {i} took {i % 9} ms", float(i))
            runtime.drain()
        return store, wal_dir

    def test_wal_inspect_reports_segments_and_watermarks(self, crashed_state, capsys):
        _, wal_dir = crashed_state
        assert main(["wal-inspect", "--wal-dir", str(wal_dir)]) == 0
        out = capsys.readouterr().out
        assert "shard-00" in out
        assert "topic checkout" in out

    def test_wal_inspect_json_output(self, crashed_state, capsys):
        _, wal_dir = crashed_state
        assert main(["wal-inspect", "--wal-dir", str(wal_dir), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["topics"]["checkout"]["min_seq"] >= 1
        assert report["topics"]["checkout"]["max_seq"] == 200
        assert "captured" in report

    def test_wal_inspect_rejects_missing_directory(self, tmp_path, capsys):
        assert main(["wal-inspect", "--wal-dir", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_recover_prints_and_writes_report(self, crashed_state, tmp_path, capsys):
        store, wal_dir = crashed_state
        report_path = tmp_path / "recovery.json"
        exit_code = main(
            ["recover", "--store", str(store), "--wal-dir", str(wal_dir),
             "--output", str(report_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "checkout" in out and "replayed" in out
        report = json.loads(report_path.read_text())
        entry = report["topics"][0]
        assert entry["topic"] == "checkout"
        assert entry["captured_seq"] + entry["replayed_records"] == 200

    def test_recover_fails_cleanly_on_corrupt_wal(self, crashed_state, capsys):
        store, wal_dir = crashed_state
        segment = next(iter(sorted((wal_dir / "shard-00").glob("segment-*.wal"))))
        data = bytearray(segment.read_bytes())
        data[40] ^= 0xFF  # corrupt an early frame with frames after it
        segment.write_bytes(bytes(data))
        assert main(["recover", "--store", str(store), "--wal-dir", str(wal_dir)]) == 1
        assert "corrupt frame" in capsys.readouterr().err

    def test_recover_on_empty_state(self, tmp_path, capsys):
        (tmp_path / "w").mkdir()  # an existing but empty WAL directory
        exit_code = main(
            ["recover", "--store", str(tmp_path / "s"), "--wal-dir", str(tmp_path / "w")]
        )
        assert exit_code == 0
        assert "nothing to recover" in capsys.readouterr().out

    def test_recover_rejects_missing_wal_dir(self, tmp_path, capsys):
        exit_code = main(
            ["recover", "--store", str(tmp_path / "s"), "--wal-dir", str(tmp_path / "typo")]
        )
        assert exit_code == 2
        assert "not a directory" in capsys.readouterr().err
        assert not (tmp_path / "typo").exists()  # no stray directories


class TestEvaluateAndDatasets:
    def test_evaluate_bytebrain_only(self, capsys):
        exit_code = main(["evaluate", "--dataset", "Apache", "--variant", "loghub"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "ByteBrain" in out and "Apache" in out

    def test_evaluate_with_baseline(self, capsys):
        exit_code = main(["evaluate", "--dataset", "Apache", "--baselines", "Drain"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Drain" in out

    def test_evaluate_unknown_baseline_fails(self):
        assert main(["evaluate", "--dataset", "Apache", "--baselines", "NotAParser"]) == 2

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "loghub2" in out and "HDFS" in out

    def test_serve_bench_tiny_workload(self, capsys, tmp_path):
        report_path = tmp_path / "serve.json"
        exit_code = main(
            [
                "serve-bench",
                "--topics", "2",
                "--records", "250",
                "--train-records", "150",
                "--shards", "1",
                "--repetitions", "1",
                "--output", str(report_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "sync_per_record" in out and "sharded_1" in out
        import json

        report = json.loads(report_path.read_text())
        modes = {mode["mode"] for mode in report["modes"]}
        assert modes == {"sync_per_record", "sharded_1"}
        assert all(mode["throughput"] > 0 for mode in report["modes"])

    def test_serve_bench_paced_rate_requires_training(self, capsys):
        assert main(["serve-bench", "--paced-rate", "100"]) == 2
        assert "--volume-threshold" in capsys.readouterr().err


class TestAnalyticsCommand:
    @pytest.fixture()
    def analytics_state(self, tmp_path):
        """A store + WAL whose tail (past the snapshot watermark) holds a
        known template mix: a steady checkout stream over [120, 140) and a
        payment-timeout burst over [140, 160).  The first drain snapshots
        the training prefix, so recovery replays exactly that tail."""
        from repro.core.config import ByteBrainConfig
        from repro.service.runtime import ShardedRuntime
        from repro.service.scheduler import SchedulerPolicy
        from repro.service.service import LogParsingService

        store, wal_dir = tmp_path / "store", tmp_path / "wal"
        service = LogParsingService(
            config=ByteBrainConfig(analytics_bucket_seconds=10.0),
            scheduler_policy=SchedulerPolicy(
                volume_threshold=10**9, time_interval_seconds=10**9,
                initial_volume_threshold=50,
            ),
            store_root=store,
        )
        service.create_topic("checkout")
        with ShardedRuntime(service, n_shards=1, wal_dir=wal_dir) as runtime:
            for i in range(120):
                runtime.submit("checkout", f"checkout request {i} took {i % 9} ms", float(i))
            runtime.drain()  # training round snapshots this prefix
            for i in range(40):
                runtime.submit(
                    "checkout", f"checkout request {i} took {i % 9} ms", 120.0 + i * 0.5
                )
            for i in range(40):
                runtime.submit(
                    "checkout", f"payment gateway timeout shard {i % 3}", 140.0 + i * 0.5
                )
            runtime.drain()
        return store, wal_dir

    def test_top_k_round_trip(self, analytics_state, capsys):
        store, wal_dir = analytics_state
        assert main(
            [
                "analytics", "top-k",
                "--store", str(store), "--wal-dir", str(wal_dir),
                "--topic", "checkout", "--start", "0", "--end", "200", "--json",
            ]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and rows[0]["count"] >= rows[-1]["count"]
        assert sum(row["count"] for row in rows) == 80

    def test_top_k_engines_agree(self, analytics_state, capsys):
        store, wal_dir = analytics_state
        base = [
            "analytics", "top-k",
            "--store", str(store), "--wal-dir", str(wal_dir),
            "--topic", "checkout", "--start", "125", "--end", "155", "--json",
        ]
        assert main(base + ["--engine", "incremental"]) == 0
        incremental = capsys.readouterr().out
        assert main(base + ["--engine", "recompute"]) == 0
        assert capsys.readouterr().out == incremental

    def test_anomaly_reports_burst(self, analytics_state, capsys):
        store, wal_dir = analytics_state
        assert main(
            [
                "analytics", "anomaly",
                "--store", str(store), "--wal-dir", str(wal_dir),
                "--topic", "checkout", "--start", "140", "--end", "160", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["anomaly_score"] > 0
        assert any(a["kind"] == "new_template" for a in payload["anomalies"])

    def test_compare_requires_baseline(self, analytics_state, capsys):
        store, wal_dir = analytics_state
        assert main(
            [
                "analytics", "compare",
                "--store", str(store), "--wal-dir", str(wal_dir),
                "--topic", "checkout", "--start", "120", "--end", "160",
            ]
        ) == 2
        assert "--baseline-start" in capsys.readouterr().err

    def test_compare_emits_divergence(self, analytics_state, capsys):
        store, wal_dir = analytics_state
        assert main(
            [
                "analytics", "compare",
                "--store", str(store), "--wal-dir", str(wal_dir),
                "--topic", "checkout",
                "--baseline-start", "120", "--baseline-end", "140",
                "--start", "140", "--end", "160", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.0 < payload["jensen_shannon_divergence"] <= math.log(2.0) + 1e-12

    def test_unknown_topic_fails_cleanly(self, analytics_state, capsys):
        store, wal_dir = analytics_state
        assert main(
            [
                "analytics", "top-k",
                "--store", str(store), "--wal-dir", str(wal_dir),
                "--topic", "nope", "--start", "0", "--end", "1",
            ]
        ) == 2
        assert "not found" in capsys.readouterr().err


class TestFrontDoorCommands:
    """Argument surface for serve / ingest / query (end-to-end runs live
    in test_server_recovery.py — these cover parsing and spec errors)."""

    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--store", "s", "--wal-dir", "w"]
        )
        assert args.port == 0
        assert args.host == "127.0.0.1"
        assert args.backend is None
        assert args.tenants is None

    def test_serve_rejects_bad_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--store", "s", "--wal-dir", "w", "--backend", "carrier"]
            )

    def test_ingest_and_query_require_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "--input", "x.log"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])

    def test_serve_bad_tenants_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "tenants.json"
        bad.write_text('{"name": "not-a-list"}', encoding="utf-8")
        code = main(
            ["serve", "--store", str(tmp_path / "s"),
             "--wal-dir", str(tmp_path / "w"), "--tenants", str(bad)]
        )
        assert code == 2
        assert "tenant" in capsys.readouterr().err

    def test_serve_rejects_duplicate_tenants(self, tmp_path, capsys):
        bad = tmp_path / "tenants.json"
        bad.write_text(
            '[{"name": "a", "topics": ["t"]}, {"name": "a"}]', encoding="utf-8"
        )
        code = main(
            ["serve", "--store", str(tmp_path / "s"),
             "--wal-dir", str(tmp_path / "w"), "--tenants", str(bad)]
        )
        assert code == 2
        assert "duplicate" in capsys.readouterr().err
