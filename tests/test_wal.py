"""Unit tests for the per-shard write-ahead log (service/wal.py)."""

import zlib

import pytest

from repro.service.wal import (
    ShardWal,
    WalCorruptionError,
    WalRecord,
    WriteAheadLog,
    read_segment,
)


def records_for(topic, start, count, prefix="record"):
    return [
        WalRecord(topic=topic, seq=start + i, timestamp=float(start + i),
                  raw=f"{topic} {prefix} {start + i}")
        for i in range(count)
    ]


class TestFrameRoundTrip:
    def test_single_record_frames(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        for record in records_for("checkout", 1, 50):
            wal.append([record])
        wal.close()
        frames, info = read_segment(wal.segments()[0])
        assert info.n_frames == 50
        assert info.n_records == 50
        assert not info.torn_tail
        flat = [r for frame in frames for r in frame]
        assert [r.seq for r in flat] == list(range(1, 51))
        assert flat[0].raw == "checkout record 1"
        assert flat[0].timestamp == 1.0

    def test_batch_frame_keeps_order_and_topics(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        wal.append(records_for("a", 1, 10) + records_for("b", 1, 5))
        wal.close()
        frames, info = read_segment(wal.segments()[0])
        assert info.n_frames == 1
        assert info.topic_seqs == {"a": (1, 10), "b": (1, 5)}
        assert [r.topic for r in frames[0]] == ["a"] * 10 + ["b"] * 5

    def test_unicode_payloads_survive(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        wal.append([WalRecord("tøpic", 1, 0.5, "vålue — ünïcode ✓")])
        wal.close()
        frames, _ = read_segment(wal.segments()[0])
        assert frames[0][0].topic == "tøpic"
        assert frames[0][0].raw == "vålue — ünïcode ✓"

    def test_empty_append_is_a_no_op(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        wal.append([])
        wal.close()
        _, info = read_segment(wal.segments()[0])
        assert info.n_frames == 0

    def test_append_after_close_raises(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        wal.close()
        with pytest.raises(RuntimeError):
            wal.append(records_for("t", 1, 1))

    def test_sync_mode_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ShardWal(tmp_path / "s0", sync_mode="sometimes")


class TestRotation:
    def test_segments_rotate_at_size_bound(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off", segment_bytes=2048)
        for record in records_for("checkout", 1, 200):
            wal.append([record])
        wal.close()
        segments = wal.segments()
        assert len(segments) > 1
        # Every record readable across segments, in order.
        seqs = []
        for path in segments:
            frames, info = read_segment(path)
            assert not info.torn_tail
            seqs.extend(r.seq for frame in frames for r in frame)
        assert seqs == list(range(1, 201))

    def test_oversized_frame_still_lands_in_one_segment(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off", segment_bytes=4096)
        big = [WalRecord("t", 1, 0.0, "x" * 10_000)]
        wal.append(big)
        wal.close()
        frames, info = read_segment(wal.segments()[-1])
        assert info.n_records == 1
        assert frames[0][0].raw == "x" * 10_000

    def test_reopen_starts_a_fresh_segment(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        wal.append(records_for("t", 1, 3))
        wal.close()
        reopened = ShardWal(tmp_path / "s0", sync_mode="off")
        reopened.append(records_for("t", 4, 2))
        reopened.close()
        assert len(reopened.segments()) == 2


class TestTornTails:
    def write_then_tear(self, tmp_path, tear):
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        for record in records_for("t", 1, 20):
            wal.append([record])
        wal.close()
        path = wal.segments()[0]
        tear(path)
        return path

    def test_partial_frame_header(self, tmp_path):
        path = self.write_then_tear(tmp_path, lambda p: p.write_bytes(p.read_bytes() + b"\x05\x00"))
        frames, info = read_segment(path)
        assert info.torn_tail
        assert info.n_records == 20  # everything before the tear intact

    def test_partial_payload(self, tmp_path):
        path = self.write_then_tear(tmp_path, lambda p: p.write_bytes(p.read_bytes()[:-3]))
        frames, info = read_segment(path)
        assert info.torn_tail
        assert info.n_records == 19

    def test_corrupt_final_full_frame(self, tmp_path):
        def flip_last_byte(p):
            data = bytearray(p.read_bytes())
            data[-1] ^= 0xFF
            p.write_bytes(bytes(data))

        path = self.write_then_tear(tmp_path, flip_last_byte)
        frames, info = read_segment(path)
        assert info.torn_tail
        assert info.n_records == 19

    def test_mid_file_corruption_raises(self, tmp_path):
        def flip_early_byte(p):
            data = bytearray(p.read_bytes())
            data[40] ^= 0xFF  # inside an early frame, with frames after it
            p.write_bytes(bytes(data))

        path = self.write_then_tear(tmp_path, flip_early_byte)
        with pytest.raises(WalCorruptionError):
            read_segment(path)

    def test_partial_magic_reads_as_torn_empty(self, tmp_path):
        # A crash during segment creation: fewer bytes than the header.
        path = tmp_path / "segment-00000001.wal"
        path.write_bytes(b"garbage")  # 7 bytes < len(magic)
        frames, info = read_segment(path)
        assert frames == []
        assert info.torn_tail

    def test_wrong_magic_on_full_header_raises(self, tmp_path):
        # A corrupted header on a segment full of frames must be loud —
        # reading it as "torn empty" would silently drop every record.
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        wal.append(records_for("t", 1, 20))
        wal.close()
        path = wal.segments()[0]
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            read_segment(path)

    def test_header_only_file_reads_empty(self, tmp_path):
        # A crash during rotation leaves exactly the magic header.
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        wal.close()
        frames, info = read_segment(wal.segments()[0])
        assert frames == [] and not info.torn_tail

    def test_crc_catches_bit_flips_anywhere_in_payload(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        wal.append(records_for("t", 1, 1))
        wal.close()
        path = wal.segments()[0]
        data = path.read_bytes()
        # Flip one payload byte and fix nothing: CRC must notice.
        corrupted = bytearray(data)
        corrupted[len(data) - 5] ^= 0x01
        path.write_bytes(bytes(corrupted))
        _, info = read_segment(path)
        assert info.torn_tail and info.n_records == 0
        assert zlib.crc32(b"") == 0  # sanity: crc32 import used


class TestTruncation:
    def test_closed_segments_below_floor_are_deleted(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off", segment_bytes=1024)
        for record in records_for("t", 1, 120):
            wal.append([record])
        closed = wal.segments()[:-1]
        assert len(closed) >= 2
        deleted = wal.truncate({"t": 120})
        assert set(deleted) == set(closed)
        # Active segment always survives.
        assert wal.segments() != []
        wal.close()

    def test_segment_with_records_above_floor_survives(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off", segment_bytes=1024)
        for record in records_for("t", 1, 120):
            wal.append([record])
        wal.truncate({"t": 10})
        remaining = []
        for path in wal.segments():
            frames, _ = read_segment(path)
            remaining.extend(r.seq for frame in frames for r in frame)
        # Every record above the floor must still be present (a straddling
        # segment is kept whole, so some below-floor records may survive).
        assert set(range(11, 121)).issubset(set(remaining))
        wal.close()

    def test_unknown_topic_blocks_truncation(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off", segment_bytes=1024)
        for record in records_for("a", 1, 60):
            wal.append([record])
        for record in records_for("b", 1, 60):
            wal.append([record])
        # Floors only name topic "a": any segment containing "b" stays.
        deleted = wal.truncate({"a": 60})
        for path in deleted:
            assert not path.exists()
        remaining_seqs = set()
        for path in wal.segments():
            frames, _ = read_segment(path)
            remaining_seqs.update((r.topic, r.seq) for frame in frames for r in frame)
        assert {("b", s) for s in range(1, 61)}.issubset(remaining_seqs)
        wal.close()

    def test_reopened_torn_segment_is_never_truncated(self, tmp_path):
        # Both truncation paths must preserve torn-tail segments: they
        # hold the evidence of un-acknowledged records.
        wal = ShardWal(tmp_path / "s0", sync_mode="off")
        for record in records_for("t", 1, 20):
            wal.append([record])
        wal.close()
        torn_path = wal.segments()[0]
        torn_path.write_bytes(torn_path.read_bytes()[:-3])
        reopened = ShardWal(tmp_path / "s0", sync_mode="off")
        deleted = reopened.truncate({"t": 100})
        assert torn_path not in deleted
        assert torn_path.exists()
        reopened.close()

    def test_truncation_state_survives_reopen(self, tmp_path):
        wal = ShardWal(tmp_path / "s0", sync_mode="off", segment_bytes=1024)
        for record in records_for("t", 1, 120):
            wal.append([record])
        wal.close()
        reopened = ShardWal(tmp_path / "s0", sync_mode="off", segment_bytes=1024)
        deleted = reopened.truncate({"t": 120})
        assert deleted  # stats were rebuilt by scanning, not lost
        reopened.close()


class TestWriteAheadLog:
    def test_watermarks_persist_and_rewind(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        assert wal.captured() == {}
        wal.set_captured("checkout", 128)
        wal.set_captured("payments", 64)
        assert WriteAheadLog(tmp_path / "wal").captured() == {"checkout": 128, "payments": 64}
        wal.set_captured("checkout", 32)  # rollback rewinds
        assert wal.captured()["checkout"] == 32
        wal.close()

    def test_replay_merges_shards_and_sorts_by_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", sync_mode="off")
        wal.shard(0).append(records_for("a", 1, 10))
        wal.shard(1).append(records_for("b", 1, 7))
        wal.shard(0).append(records_for("a", 11, 5))
        wal.close()
        by_topic, infos = WriteAheadLog(tmp_path / "wal", sync_mode="off").replay_records()
        assert [r.seq for r in by_topic["a"]] == list(range(1, 16))
        assert [r.seq for r in by_topic["b"]] == list(range(1, 8))
        assert len(infos) == 2

    def test_truncate_covers_orphan_shard_dirs(self, tmp_path):
        # A recovered runtime may run with fewer shards than the crashed
        # one; captured records in the extra (never reopened) shard dirs
        # must still be reclaimed.
        wal = WriteAheadLog(tmp_path / "wal", sync_mode="off", segment_bytes=1024)
        wal.shard(1).append(records_for("t", 1, 60))
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal", sync_mode="off")
        reopened.shard(0)  # only shard 0 is open for writing now
        deleted = reopened.truncate({"t": 60})
        assert any(p.parent.name == "shard-01" for p in deleted)
        by_topic, _ = reopened.replay_records()
        assert by_topic.get("t", []) == []
        # Records above the floor in an orphan dir survive.
        wal2 = WriteAheadLog(tmp_path / "wal2", sync_mode="off", segment_bytes=1024)
        wal2.shard(3).append(records_for("t", 1, 60))
        wal2.close()
        reopened2 = WriteAheadLog(tmp_path / "wal2", sync_mode="off")
        reopened2.truncate({"t": 30})
        by_topic, _ = reopened2.replay_records()
        assert set(range(31, 61)).issubset({r.seq for r in by_topic["t"]})
        reopened.close()
        reopened2.close()

    def test_reopen_reuses_replay_scan_stats(self, tmp_path):
        # iter_segments fills the scan cache; a shard opened right after
        # must not re-read its segments to rebuild truncation stats.
        wal = WriteAheadLog(tmp_path / "wal", sync_mode="off", segment_bytes=1024)
        wal.shard(0).append(records_for("t", 1, 120))
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal", sync_mode="off", segment_bytes=1024)
        reopened.replay_records()  # the recovery pass
        import repro.service.wal as wal_module

        original = wal_module.read_segment
        calls = []

        def counting(path):
            calls.append(path)
            return original(path)

        wal_module.read_segment = counting
        try:
            shard = reopened.shard(0)
        finally:
            wal_module.read_segment = original
        assert calls == []  # stats came from the scan cache
        assert shard.truncate({"t": 120})  # and they still drive truncation
        reopened.close()

    def test_replay_drops_duplicate_seqs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", sync_mode="off")
        wal.shard(0).append(records_for("a", 1, 3))
        wal.shard(0).append(records_for("a", 3, 2, prefix="dup"))  # seq 3 again
        wal.close()
        by_topic, _ = WriteAheadLog(tmp_path / "wal", sync_mode="off").replay_records()
        assert [r.seq for r in by_topic["a"]] == [1, 2, 3, 4]
        assert by_topic["a"][2].raw == "a record 3"  # first occurrence wins
