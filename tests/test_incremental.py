"""Tests for the incremental training subsystem (core/incremental.py)."""

import pytest

from repro.core.config import WILDCARD, ByteBrainConfig
from repro.core.incremental import DriftPolicy, IncrementalTrainer
from repro.core.matcher import OnlineMatcher
from repro.core.model import ParserModel, Template
from repro.core.trainer import OfflineTrainer


def order_lines(start, count):
    return [f"order {start + i} created for customer {i % 17} amount {i * 3} cents" for i in range(count)]


def error_lines(count):
    return [f"payment gateway timeout after {1000 + i} ms for order {i}" for i in range(count)]


def disk_lines(count):
    return [f"disk volume {i % 7} usage at {50 + i % 40} percent on host {i}" for i in range(count)]


@pytest.fixture()
def config():
    return ByteBrainConfig()


@pytest.fixture()
def base_model(config):
    return OfflineTrainer(config).train(order_lines(0, 200)).model


class TestFirstRound:
    def test_no_live_model_runs_initial_full_round(self, config):
        trainer = IncrementalTrainer(config)
        result = trainer.round(None, order_lines(0, 100))
        assert result.mode == "initial"
        assert len(result.model) > 0
        assert result.n_clustered == 100

    def test_empty_live_model_also_counts_as_first_round(self, config):
        trainer = IncrementalTrainer(config)
        result = trainer.round(ParserModel(), order_lines(0, 100))
        assert result.mode == "initial"

    def test_initial_round_assignments_cover_training_tuples(self, config):
        trainer = IncrementalTrainer(config)
        result = trainer.round(None, order_lines(0, 100))
        assert result.training_assignments
        for template_id in result.training_assignments.values():
            assert template_id in result.model


class TestIncrementalRound:
    def test_live_model_is_never_mutated(self, config, base_model):
        snapshot = base_model.to_json()
        trainer = IncrementalTrainer(config)
        trainer.round(base_model, order_lines(200, 100) + error_lines(50))
        assert base_model.to_json() == snapshot

    def test_known_delta_is_fully_reused(self, config, base_model):
        trainer = IncrementalTrainer(config)
        result = trainer.round(base_model, order_lines(500, 120))
        assert result.mode == "incremental"
        assert result.n_reused == 120
        assert result.n_clustered == 0

    def test_reused_records_accumulate_weight_on_the_new_model(self, config, base_model):
        total_before = sum(t.weight for t in base_model.templates())
        trainer = IncrementalTrainer(config)
        result = trainer.round(base_model, order_lines(500, 120))
        total_after = sum(t.weight for t in result.model.templates())
        assert total_after == pytest.approx(total_before + 120)

    def test_novel_templates_are_learned_incrementally(self, config, base_model):
        trainer = IncrementalTrainer(config)
        result = trainer.round(base_model, order_lines(500, 60) + error_lines(80))
        assert result.mode == "incremental"
        assert result.n_clustered >= 80
        matcher = OnlineMatcher(result.model.clone(), config=config)
        matched = matcher.match("payment gateway timeout after 9999 ms for order 4")
        assert not matched.is_new_template

    def test_existing_template_ids_stay_stable(self, config, base_model):
        before = {t.template_id: t.tokens for t in base_model.templates()}
        trainer = IncrementalTrainer(config)
        result = trainer.round(base_model, order_lines(500, 60) + error_lines(80))
        for template_id, tokens in before.items():
            assert result.model.get(template_id).tokens == tokens

    def test_ingest_time_assignments_skip_matching(self, config, base_model):
        # All delta records were matched at ingest to high-saturation
        # templates; the round must not re-cluster anything.
        matcher = OnlineMatcher(base_model.clone(), config=config)
        delta = order_lines(700, 50)
        ids = [matcher.match(raw).template_id for raw in delta]
        trainer = IncrementalTrainer(config)
        result = trainer.round(matcher.model, delta, delta_template_ids=ids)
        assert result.n_clustered + result.n_reused == 50
        # Every record the ingest path resolved to a precise (>= reuse
        # saturation) trained template must be reused, not re-clustered.
        precise = sum(
            1
            for tid in ids
            if not matcher.model.get(tid).is_temporary
            and matcher.model.get(tid).saturation >= trainer.drift_policy.min_reuse_saturation
        )
        assert result.n_reused == precise

    def test_temporary_assignments_go_to_the_residue(self, config, base_model):
        # Records that fell back to a temporary template at ingest must be
        # re-clustered so the round learns them properly.
        matcher = OnlineMatcher(base_model.clone(), config=config)
        delta = error_lines(40)
        results = [matcher.match(raw) for raw in delta]
        assert any(matcher.model.get(r.template_id).is_temporary for r in results)
        trainer = IncrementalTrainer(config)
        round_result = trainer.round(
            matcher.model, delta, delta_template_ids=[r.template_id for r in results]
        )
        assert round_result.n_clustered == 40


class TestDriftPolicy:
    def test_forced_full_round(self, config, base_model):
        trainer = IncrementalTrainer(config)
        result = trainer.round(
            base_model,
            error_lines(50),
            full_corpus=lambda: order_lines(0, 200) + error_lines(50),
            force_full=True,
        )
        assert result.mode == "full"
        assert result.n_clustered == 250

    def test_periodic_full_retrain(self, config, base_model):
        trainer = IncrementalTrainer(config, DriftPolicy(full_retrain_every=2))
        corpus = list(order_lines(0, 200))

        def full():
            return corpus

        model = base_model
        modes = []
        for start in (300, 400, 500):
            batch = order_lines(start, 30)
            corpus.extend(batch)
            result = trainer.round(model, batch, full_corpus=full)
            model = result.model
            modes.append(result.mode)
        assert modes == ["incremental", "incremental", "full"]

    def test_insert_ratio_escalates_to_full(self, config, base_model):
        # A delta of entirely new structure (high insert ratio) must trigger
        # a full retrain when the policy allows none of it.
        policy = DriftPolicy(max_insert_ratio=0.0, min_residue_templates=1)
        trainer = IncrementalTrainer(config, policy)
        corpus = order_lines(0, 200) + disk_lines(120)
        result = trainer.round(base_model, disk_lines(120), full_corpus=lambda: corpus)
        assert result.mode == "full"
        assert "drift" in result.reason

    def test_escalation_without_corpus_provider_stays_incremental(self, config, base_model):
        policy = DriftPolicy(max_insert_ratio=0.0, min_residue_templates=1)
        trainer = IncrementalTrainer(config, policy)
        result = trainer.round(base_model, disk_lines(120))
        assert result.mode == "incremental"
        # The detected drift must still be reported, not papered over.
        assert "drift" in result.reason


class TestWeightedMerge:
    def test_weighted_saturation_blends_by_weight(self):
        target = ParserModel()
        target.add_template(Template(0, ("a", "b"), saturation=1.0, parent_id=None, depth=0, weight=3.0))
        other = ParserModel()
        other.add_template(Template(0, ("a", "b"), saturation=0.8, parent_id=None, depth=0, weight=1.0))
        target.merge_from(other, weighted_saturation=True)
        assert target.get(0).saturation == pytest.approx((1.0 * 3 + 0.8 * 1) / 4)
        assert target.get(0).weight == pytest.approx(4.0)

    def test_weighted_merge_keeps_length_buckets_sorted(self):
        target = ParserModel()
        target.add_template(Template(0, ("a", WILDCARD), saturation=0.9, parent_id=None, depth=0, weight=1.0))
        target.add_template(Template(1, ("b", WILDCARD), saturation=0.85, parent_id=None, depth=0, weight=1.0))
        other = ParserModel()
        # Merging drags template 0's saturation below template 1's (the
        # incoming saturation stays within the 0.25 merge-distance guard).
        other.add_template(Template(0, ("a", WILDCARD), saturation=0.7, parent_id=None, depth=0, weight=20.0))
        target.merge_from(other, weighted_saturation=True)
        ordered = target.templates_of_length(2)
        saturations = [t.saturation for t in ordered]
        assert saturations == sorted(saturations, reverse=True)
        assert ordered[0].template_id == 1

    def test_default_merge_keeps_target_saturation(self):
        target = ParserModel()
        target.add_template(Template(0, ("a", "b"), saturation=1.0, parent_id=None, depth=0, weight=3.0))
        other = ParserModel()
        other.add_template(Template(0, ("a", "b"), saturation=0.8, parent_id=None, depth=0, weight=1.0))
        target.merge_from(other)
        assert target.get(0).saturation == 1.0
