"""Wire protocol for the front-door server (:mod:`repro.service.server`).

Framing reuses the PR 6 discipline: every message is a length-prefixed
frame so both sides can read exactly one message without scanning for
delimiters, and a truncated stream is detected as a short read instead
of silently merging two messages.

Frame layout (all integers little-endian)::

    u32 body_len | u8 kind | body (body_len bytes)

Two frame kinds exist:

* ``KIND_JSON`` — ``body`` is a UTF-8 JSON object.  Requests carry
  ``{"id": <int>, "op": <str>, ...params}``; responses echo ``id`` and
  carry either ``{"ok": true, ...result}`` or
  ``{"ok": false, "error": <code>, "message": <str>, ...}``.
* ``KIND_BATCH`` — the ingest fast path.  ``body`` is
  ``u32 header_len | JSON header | batch payload`` where the payload is
  :func:`repro.service.transport.encode_record_batch` bytes.  Record
  text crosses the wire once, as packed binary sections, instead of
  being re-escaped into JSON.

The ``id`` field makes pipelining safe: the server processes a
connection's frames strictly in order and always responds with the
request's ``id``, so a client may keep many requests in flight and
match responses by position or id.

Error codes are part of the contract (clients switch on them, tests
assert them); see the ``ERR_*`` constants.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import BinaryIO, Tuple

__all__ = [
    "FRAME_HEADER_BYTES",
    "KIND_BATCH",
    "KIND_JSON",
    "ERR_AUTH",
    "ERR_BACKPRESSURE",
    "ERR_BAD_REQUEST",
    "ERR_FRAME_TOO_LARGE",
    "ERR_INTERNAL",
    "ERR_NOT_PRIMARY",
    "ERR_QUOTA_EXCEEDED",
    "ERR_RATE_LIMITED",
    "ERR_SHUTTING_DOWN",
    "ERR_UNAUTHENTICATED",
    "ERR_UNKNOWN_TOPIC",
    "RETRYABLE_ERRORS",
    "FrameError",
    "encode_frame",
    "encode_json_frame",
    "encode_batch_frame",
    "decode_json_body",
    "split_batch_body",
    "read_frame",
    "read_frame_sync",
]

#: ``u32 body_len | u8 kind`` — 5 bytes before every body.
_HEADER = struct.Struct("<IB")
FRAME_HEADER_BYTES = _HEADER.size

KIND_JSON = 0
KIND_BATCH = 1

#: ``u32 header_len`` prefix inside a batch frame body.
_BATCH_HEAD = struct.Struct("<I")

# --------------------------------------------------------------------- #
# Protocol error codes — the stable names clients may switch on.
# --------------------------------------------------------------------- #
#: Token bucket empty: the tenant sent faster than its refill rate.
ERR_RATE_LIMITED = "RATE_LIMITED"
#: A lifetime record/byte quota is exhausted; retrying will not help.
ERR_QUOTA_EXCEEDED = "QUOTA_EXCEEDED"
#: The target shard's queue is full; retry after ``retry_after`` seconds.
ERR_BACKPRESSURE = "BACKPRESSURE"
#: The named topic does not exist for this tenant.
ERR_UNKNOWN_TOPIC = "UNKNOWN_TOPIC"
#: Malformed frame body, unknown op, or missing/invalid parameters.
ERR_BAD_REQUEST = "BAD_REQUEST"
#: Frame length prefix exceeds the server's configured maximum.  The
#: stream cannot be resynchronised, so the connection is closed after
#: this error is sent.
ERR_FRAME_TOO_LARGE = "FRAME_TOO_LARGE"
#: The connection has not completed the ``hello`` handshake.
ERR_UNAUTHENTICATED = "UNAUTHENTICATED"
#: The server is draining; no new work is admitted.
ERR_SHUTTING_DOWN = "SHUTTING_DOWN"
#: Unexpected server-side failure; details in the message.
ERR_INTERNAL = "INTERNAL"
#: The HMAC challenge/response failed (wrong or missing shared secret).
#: Terminal: the connection is closed and retrying cannot help.
ERR_AUTH = "AUTH"
#: This node is a standby replica; writes must go to the primary.  The
#: response carries a ``primary`` hint (``"host:port"`` or ``None``)
#: the client should fail over to.
ERR_NOT_PRIMARY = "NOT_PRIMARY"

#: Errors a client may retry verbatim without risking duplicates: the
#: server guarantees nothing was logged or enqueued before raising them.
RETRYABLE_ERRORS = frozenset({ERR_RATE_LIMITED, ERR_BACKPRESSURE})


class FrameError(ValueError):
    """A frame violated the wire contract (bad kind, length, or body).

    Raised by the decode helpers; the server maps it to
    ``ERR_BAD_REQUEST`` / ``ERR_FRAME_TOO_LARGE`` and, where the stream
    position is lost, closes the connection.
    """


def encode_frame(kind: int, body: bytes) -> bytes:
    """Prefix ``body`` with the 5-byte frame header."""
    return _HEADER.pack(len(body), kind) + body


def encode_json_frame(payload: dict) -> bytes:
    """Encode one JSON frame (compact separators, UTF-8)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return encode_frame(KIND_JSON, body)


def encode_batch_frame(header: dict, payload: bytes) -> bytes:
    """Encode one batch frame: JSON header + binary record sections."""
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return encode_frame(KIND_BATCH, _BATCH_HEAD.pack(len(head)) + head + payload)


def decode_json_body(body: bytes) -> dict:
    """Parse a JSON frame body, insisting on a top-level object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable JSON frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


def split_batch_body(body: bytes) -> Tuple[dict, bytes]:
    """Split a batch frame body into (JSON header, binary payload)."""
    if len(body) < _BATCH_HEAD.size:
        raise FrameError(f"batch frame body truncated at {len(body)} bytes")
    (head_len,) = _BATCH_HEAD.unpack_from(body, 0)
    head_end = _BATCH_HEAD.size + head_len
    if head_end > len(body):
        raise FrameError(
            f"batch header length {head_len} overruns the {len(body)}-byte body"
        )
    header = decode_json_body(body[_BATCH_HEAD.size : head_end])
    return header, body[head_end:]


async def read_frame(reader: asyncio.StreamReader, max_frame_bytes: int) -> Tuple[int, bytes]:
    """Read one ``(kind, body)`` frame from an asyncio stream.

    Returns ``(-1, b"")`` on clean EOF (peer closed between frames).
    Raises :class:`FrameError` for an oversized length prefix or an
    unknown kind, and :class:`asyncio.IncompleteReadError` for a stream
    truncated mid-frame — both are loud, never a silent partial message.
    """
    try:
        head = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return -1, b""
        raise
    body_len, kind = _HEADER.unpack(head)
    if body_len > max_frame_bytes:
        raise FrameError(
            f"frame of {body_len} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    if kind not in (KIND_JSON, KIND_BATCH):
        raise FrameError(f"unknown frame kind {kind}")
    body = await reader.readexactly(body_len)
    return kind, body


def read_frame_sync(stream: BinaryIO, max_frame_bytes: int) -> Tuple[int, bytes]:
    """Blocking twin of :func:`read_frame` for the synchronous client.

    ``stream`` is a file-like object (``socket.makefile("rb")``).
    Returns ``(-1, b"")`` on clean EOF; raises :class:`FrameError` on a
    truncated frame or contract violation.
    """
    head = _read_exactly(stream, _HEADER.size, allow_eof=True)
    if not head:
        return -1, b""
    body_len, kind = _HEADER.unpack(head)
    if body_len > max_frame_bytes:
        raise FrameError(
            f"frame of {body_len} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    if kind not in (KIND_JSON, KIND_BATCH):
        raise FrameError(f"unknown frame kind {kind}")
    return kind, _read_exactly(stream, body_len, allow_eof=False)


def _read_exactly(stream: BinaryIO, n: int, *, allow_eof: bool) -> bytes:
    """Read exactly ``n`` bytes, or b"" at clean EOF when allowed."""
    chunks: list = []
    got = 0
    while got < n:
        chunk = stream.read(n - got)
        if not chunk:
            if allow_eof and got == 0:
                return b""
            raise FrameError(f"stream truncated: wanted {n} bytes, got {got}")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)
