"""Unit tests for the configuration / ablation switches."""

import pytest

from repro.core.config import (
    ABLATION_VARIANTS,
    ByteBrainConfig,
    ablation_config,
    list_ablation_variants,
)


class TestValidation:
    def test_default_config_is_valid(self):
        ByteBrainConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"encoding": "onehot"},
            {"matching_strategy": "semantic"},
            {"prefix_group_tokens": -1},
            {"saturation_target": 0.0},
            {"saturation_target": 1.5},
            {"parallelism": 0},
            {"max_tree_depth": 0},
            {"max_clusters_per_split": 1},
            {"model_merge_similarity": 1.5},
            {"training_sample_size": 0},
            {"n_shards": 0},
            {"micro_batch_size": 0},
            {"max_batch_delay": -0.1},
            {"ingest_queue_capacity": 0},
            {"train_volume_threshold": 0},
            {"train_time_interval_seconds": -1.0},
            {"train_initial_volume_threshold": -5},
            {"wal_sync_mode": "fsync"},
            {"wal_segment_bytes": 1024},
            {"wal_retain_versions": 0},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ByteBrainConfig(**kwargs)

    def test_runtime_knobs_default_and_round_trip(self):
        config = ByteBrainConfig(
            n_shards=4,
            micro_batch_size=512,
            max_batch_delay=0.1,
            train_volume_threshold=5000,
        )
        restored = ByteBrainConfig.from_dict(config.to_dict())
        assert restored.n_shards == 4
        assert restored.micro_batch_size == 512
        assert restored.max_batch_delay == 0.1
        assert restored.train_volume_threshold == 5000
        assert restored.train_time_interval_seconds is None

    def test_replace_returns_new_config(self):
        config = ByteBrainConfig()
        changed = config.replace(parallelism=4)
        assert changed.parallelism == 4
        assert config.parallelism == 1

    def test_round_trip_dict(self):
        config = ByteBrainConfig(parallelism=3, extra_masking_rules=(("r", r"\d+"),))
        clone = ByteBrainConfig.from_dict(config.to_dict())
        assert clone == config


class TestAblationVariants:
    def test_all_paper_variants_present(self):
        names = set(list_ablation_variants())
        expected = {
            "ByteBrain",
            "w/ naive match",
            "w/o variable in saturation",
            "w/o position importance",
            "w/o confidence factor",
            "random centroid selection",
            "w/o ensure saturation increase",
            "w/o balanced group",
            "w/o early stopping",
            "w/o deduplication&related techs",
            "ordinal encoding",
        }
        assert expected.issubset(names)

    def test_base_variant_is_default_config(self):
        assert ablation_config("ByteBrain") == ByteBrainConfig()

    def test_naive_match_variant(self):
        assert ablation_config("w/ naive match").matching_strategy == "naive"

    def test_dedup_variant_disables_related_techniques(self):
        config = ablation_config("w/o deduplication&related techs")
        assert not config.deduplication_enabled
        assert not config.balanced_grouping_enabled
        assert not config.early_stop_enabled

    def test_ordinal_encoding_variant(self):
        assert ablation_config("ordinal encoding").encoding == "ordinal"

    def test_unknown_variant_rejected(self):
        with pytest.raises(KeyError):
            ablation_config("w/o everything")

    def test_variant_derives_from_custom_base(self):
        base = ByteBrainConfig(parallelism=4)
        config = ablation_config("w/o early stopping", base)
        assert config.parallelism == 4
        assert not config.early_stop_enabled

    def test_every_variant_builds_a_valid_config(self):
        for name in ABLATION_VARIANTS:
            ablation_config(name).validate()
