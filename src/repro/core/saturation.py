"""Saturation score of a group of logs (paper §4.5, Eq. 3).

Saturation measures how completely the token positions of a group have been
resolved into constants or variables, and it is the quantity that

* terminates hierarchical clustering (nodes at saturation 1 are leaves),
* strictly increases with tree depth, and
* is exposed to users as the query-time precision threshold.

The score combines three ingredients:

1. ``f_c`` — the proportion of positions whose token is identical in every
   log of the group (*confirmed constants*).
2. ``f_v`` — the minimum variability factor ``log(n_u) / log(n)`` over the
   unresolved positions, where ``n`` is the number of logs in the group
   (counting duplicates — deduplication only collapses the representation,
   the score is defined over the original stream) and ``n_u`` the number of
   distinct tokens at that position.  Positions where almost every log holds
   a different token are almost certainly variables.
3. ``p_c = 1 / 2^(m - m_c - 1)`` — a confidence factor that discounts the
   variability estimate when many positions are still unresolved.

``s(C) = (f_v * p_c + (1 - p_c)) * f_c``

Interpretation notes (documented deviations where the paper is ambiguous):

* the paper writes the variability factor as ``(log(n_u) - 1) / log(n)``;
  we use ``log(n_u)/log(n)`` because it is the only reading consistent with
  the worked example of Fig. 5 (node ``{4,6}`` has saturation 0.6 = ``f_c``,
  which requires ``f_v = 1`` when every unresolved position is fully
  distinct);
* a group whose *single* unresolved position holds a distinct token in every
  log (Fig. 5, Set 1) is treated as fully resolved — that position is
  confidently a variable — giving saturation 1.0 as in the illustration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "PositionProfile",
    "profile_positions",
    "saturation_score",
    "saturation_from_profile",
]


@dataclass
class PositionProfile:
    """Per-position statistics of a group of logs.

    Attributes
    ----------
    n_unique:
        Number of distinct (deduplicated) records in the group.
    n_logs:
        Total number of log occurrences (sum of deduplication counts).
    distinct_counts:
        ``distinct_counts[i]`` is the number of distinct tokens at position
        ``i`` across the group.
    """

    n_unique: int
    n_logs: float
    distinct_counts: List[int]

    @property
    def n_positions(self) -> int:
        """Total number of token positions ``m``."""
        return len(self.distinct_counts)

    @property
    def n_constants(self) -> int:
        """Number of constant positions (a single distinct token)."""
        return sum(1 for count in self.distinct_counts if count <= 1)

    @property
    def unresolved_counts(self) -> List[int]:
        """Distinct-token counts of the unresolved (non-constant) positions."""
        return [count for count in self.distinct_counts if count > 1]

    def all_unresolved_fully_distinct(self) -> bool:
        """True if every unresolved position has a distinct token per log occurrence."""
        unresolved = self.unresolved_counts
        return bool(unresolved) and all(count >= self.n_logs for count in unresolved)


def profile_positions(
    codes: np.ndarray,
    member_indices: Optional[Sequence[int]] = None,
    weights: Optional[np.ndarray] = None,
) -> PositionProfile:
    """Compute the per-position distinct-token profile of a group.

    Parameters
    ----------
    codes:
        ``(n_unique, m)`` encoded token matrix.
    member_indices:
        Rows belonging to the group; ``None`` means all rows.
    weights:
        Per-row occurrence counts (deduplication counts); ``None`` means one
        occurrence per row.
    """
    if member_indices is None:
        rows = np.arange(codes.shape[0], dtype=np.intp)
    else:
        rows = np.asarray(member_indices, dtype=np.intp)
    group = codes[rows]
    n_unique = int(group.shape[0])
    if n_unique == 0:
        return PositionProfile(n_unique=0, n_logs=0.0, distinct_counts=[])
    if weights is None:
        n_logs = float(n_unique)
    else:
        n_logs = float(np.asarray(weights)[rows].sum())
    distinct = [int(np.unique(group[:, pos]).size) for pos in range(group.shape[1])]
    return PositionProfile(n_unique=n_unique, n_logs=n_logs, distinct_counts=distinct)


def saturation_from_profile(
    profile: PositionProfile,
    use_variable_saturation: bool = True,
    use_confidence_factor: bool = True,
) -> float:
    """Saturation score from a precomputed :class:`PositionProfile` (Eq. 3)."""
    m = profile.n_positions
    n = profile.n_logs
    if profile.n_unique <= 1 or m == 0 or n <= 1:
        return 1.0

    m_c = profile.n_constants
    f_c = m_c / m

    if not use_variable_saturation:
        # Ablation "w/o variable in saturation": s = f_c.
        return f_c
    if m_c == m:
        return 1.0

    unresolved = profile.unresolved_counts

    # Fig. 5 Set 1: a lone unresolved position whose tokens are all distinct
    # is confidently a variable -> the group is fully resolved.
    if len(unresolved) == 1 and unresolved[0] >= n and profile.n_unique >= 3:
        return 1.0

    log_n = math.log(n)
    factors = [min(math.log(count) / log_n, 1.0) for count in unresolved]
    f_v = min(factors)

    if not use_confidence_factor:
        # Ablation "w/o confidence factor": s = f_v * f_c.
        return f_v * f_c

    p_c = 1.0 / (2.0 ** (m - m_c - 1))
    return (f_v * p_c + (1.0 - p_c)) * f_c


def saturation_score(
    codes: np.ndarray,
    member_indices: Optional[Sequence[int]] = None,
    weights: Optional[np.ndarray] = None,
    use_variable_saturation: bool = True,
    use_confidence_factor: bool = True,
) -> float:
    """Saturation score of a group of encoded logs (convenience wrapper)."""
    profile = profile_positions(codes, member_indices, weights=weights)
    return saturation_from_profile(
        profile,
        use_variable_saturation=use_variable_saturation,
        use_confidence_factor=use_confidence_factor,
    )
