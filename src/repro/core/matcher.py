"""Online matching of incoming logs against the trained model (paper §4.8).

Incoming logs are preprocessed exactly like training logs and then matched
against template *texts* — position by position, most saturated template
first — rather than by re-computing clustering distances.  Logs that match
no template become temporary single-log templates so they are queryable
immediately and get folded into the model at the next training cycle.

The hot path is a **batched vectorised engine**:

* token hashes come from the process-wide cache in :mod:`repro.core.hashing`
  (each distinct token is hashed once per process, shared with training),
* :meth:`TemplateMatchIndex.match_batch` buckets logs by token count, packs
  each bucket into one ``(n_logs, length)`` ``uint64`` matrix and resolves
  it with blocked broadcast comparisons against the template code matrix,
* a per-length **first-constant-token inverted index** prunes the candidate
  templates for each log to those sharing its leading token (templates whose
  first position is a wildcard form a small always-checked residue), turning
  the O(templates) scan into a near-O(candidates) probe.

The ablation variant *w/ naive match* instead reuses the template assignment
the log received during training clustering (falling back to text matching
only for unseen logs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import WILDCARD, ByteBrainConfig
from repro.core.hashing import hash_tokens, pack_hash_matrix
from repro.core.model import ParserModel, Template
from repro.core.parallel import chunk_ranges, map_parallel
from repro.core.trainer import Preprocessor

__all__ = ["MatchResult", "OnlineMatcher", "TemplateMatchIndex"]

#: Default bound on the boolean intermediate of one broadcast block; kept in
#: sync with :attr:`ByteBrainConfig.match_block_bytes`.
DEFAULT_MATCH_BLOCK_BYTES = 32 * 1024 * 1024


class _LengthBucket:
    """Packed templates of one token count plus the anchor inverted index.

    ``codes``/``wildcard_mask`` rows are ordered by descending saturation
    (ties broken by template id), so the *first* matching row is always the
    answer — both the scalar and the batched path exploit that by taking the
    lowest matching row index.
    """

    __slots__ = (
        "codes",
        "wildcard_mask",
        "ids",
        "anchor_rows",
        "residue_rows",
        "n_rows",
        "_residue_premerged",
    )

    #: Above this many precomputed (anchor, residue-copy) entries the residue
    #: is merged lazily per lookup instead, bounding index build memory.
    _MAX_PREMERGED_ENTRIES = 4_000_000

    def __init__(self, templates: List[Template]) -> None:
        length = templates[0].n_tokens
        self.n_rows = len(templates)
        self.codes = np.zeros((self.n_rows, length), dtype=np.uint64)
        self.wildcard_mask = np.zeros((self.n_rows, length), dtype=bool)
        self.ids = np.empty(self.n_rows, dtype=np.int64)
        residue: List[int] = []
        by_anchor: Dict[int, List[int]] = {}
        for row, template in enumerate(templates):
            self.ids[row] = template.template_id
            encoded = hash_tokens(template.tokens)
            wild = np.fromiter(
                (token == WILDCARD for token in template.tokens), dtype=bool, count=length
            )
            encoded[wild] = 0
            self.codes[row] = encoded
            self.wildcard_mask[row] = wild
            if wild[0]:
                residue.append(row)
            else:
                by_anchor.setdefault(int(encoded[0]), []).append(row)
        self.residue_rows = np.asarray(residue, dtype=np.intp)
        # Merge the residue into every anchor's candidate list up front so a
        # lookup is a single dict probe returning saturation-ordered rows —
        # unless that would copy a large residue under many anchors, in
        # which case the merge happens lazily per lookup.
        self._residue_premerged = (
            len(by_anchor) * self.residue_rows.size <= self._MAX_PREMERGED_ENTRIES
        )
        if self._residue_premerged and self.residue_rows.size:
            self.anchor_rows: Dict[int, np.ndarray] = {
                anchor: np.sort(
                    np.concatenate([np.asarray(rows, dtype=np.intp), self.residue_rows])
                )
                for anchor, rows in by_anchor.items()
            }
        else:
            self.anchor_rows = {
                anchor: np.asarray(rows, dtype=np.intp) for anchor, rows in by_anchor.items()
            }

    def candidates(self, anchor_hash: int, prune: bool) -> np.ndarray:
        """Saturation-ordered candidate rows for one leading-token hash."""
        if not prune:
            return np.arange(self.n_rows, dtype=np.intp)
        rows = self.anchor_rows.get(anchor_hash)
        if rows is None:
            return self.residue_rows
        if self._residue_premerged or not self.residue_rows.size:
            return rows
        return np.sort(np.concatenate([rows, self.residue_rows]))


class TemplateMatchIndex:
    """Vectorised position-based template matching (§4.8).

    For every token count the index holds a matrix of the templates' hashed
    constant tokens plus a wildcard mask, ordered by descending saturation,
    and an inverted index from first-constant-token hash to candidate rows.
    Single logs resolve with one vectorised comparison; whole batches with
    :meth:`match_batch`'s blocked broadcasting.
    """

    def __init__(self, model: ParserModel) -> None:
        self._by_length: Dict[int, _LengthBucket] = {}
        self._build(model)

    def _build(self, model: ParserModel) -> None:
        per_length: Dict[int, List[Template]] = {}
        for template in model.templates():
            per_length.setdefault(template.n_tokens, []).append(template)
        for length, templates in per_length.items():
            if length == 0:
                continue
            templates.sort(key=lambda t: (-t.saturation, t.template_id))
            self._by_length[length] = _LengthBucket(templates)

    # ------------------------------------------------------------------ #
    # scalar path
    # ------------------------------------------------------------------ #
    def match(self, tokens: Sequence[str], prune: bool = True) -> Optional[int]:
        """Template id of the most saturated matching template, or ``None``."""
        bucket = self._by_length.get(len(tokens))
        if bucket is None:
            return None
        encoded = hash_tokens(tokens)
        rows = bucket.candidates(int(encoded[0]), prune)
        if rows.size == 0:
            return None
        hits = ((bucket.codes[rows] == encoded) | bucket.wildcard_mask[rows]).all(axis=1)
        index = int(np.argmax(hits))
        if not hits[index]:
            return None
        return int(bucket.ids[rows[index]])

    # ------------------------------------------------------------------ #
    # batched path
    # ------------------------------------------------------------------ #
    def match_batch(
        self,
        token_tuples: Sequence[Tuple[str, ...]],
        block_bytes: int = DEFAULT_MATCH_BLOCK_BYTES,
        prune: bool = True,
    ) -> List[Optional[int]]:
        """Match a batch of token tuples; returns one template id (or
        ``None``) per input, in input order.

        Tuples are bucketed by token count, packed into dense ``uint64``
        matrices, grouped by their leading-token hash against the inverted
        index, and each candidate set is resolved with a broadcast comparison
        processed in blocks of at most ``block_bytes`` of boolean
        intermediate, so memory stays flat for arbitrarily large batches.
        """
        results: List[Optional[int]] = [None] * len(token_tuples)
        by_length: Dict[int, List[int]] = {}
        for position, tokens in enumerate(token_tuples):
            by_length.setdefault(len(tokens), []).append(position)

        for length, positions in by_length.items():
            bucket = self._by_length.get(length)
            if bucket is None:
                continue
            logs = pack_hash_matrix([token_tuples[p] for p in positions], length)
            if prune:
                self._resolve_pruned(bucket, logs, positions, results, block_bytes)
            else:
                rows = np.arange(bucket.n_rows, dtype=np.intp)
                log_indices = np.arange(len(positions), dtype=np.intp)
                self._resolve_rows(bucket, rows, logs, log_indices, positions, results, block_bytes)
        return results

    def _resolve_pruned(
        self,
        bucket: _LengthBucket,
        logs: np.ndarray,
        positions: List[int],
        results: List[Optional[int]],
        block_bytes: int,
    ) -> None:
        """Group a packed log matrix by leading-token hash and resolve each
        group against only its candidate template rows."""
        anchors, inverse = np.unique(logs[:, 0], return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        starts = np.searchsorted(inverse[order], np.arange(anchors.size))
        ends = np.append(starts[1:], order.size)
        for group in range(anchors.size):
            rows = bucket.candidates(int(anchors[group]), prune=True)
            if rows.size == 0:
                continue
            log_indices = order[starts[group] : ends[group]]
            self._resolve_rows(bucket, rows, logs, log_indices, positions, results, block_bytes)

    @staticmethod
    def _resolve_rows(
        bucket: _LengthBucket,
        rows: np.ndarray,
        logs: np.ndarray,
        log_indices: np.ndarray,
        positions: List[int],
        results: List[Optional[int]],
        block_bytes: int,
    ) -> None:
        """Broadcast-compare ``logs[log_indices]`` against template ``rows``.

        The comparison materialises a ``(block, n_rows, length)`` boolean
        intermediate, so the log axis is processed in blocks sized to keep
        that intermediate under ``block_bytes``.
        """
        length = logs.shape[1]
        codes = bucket.codes[rows][None, :, :]
        mask = bucket.wildcard_mask[rows][None, :, :]
        per_log_bytes = max(1, rows.size * length)
        block = max(1, block_bytes // per_log_bytes)
        for start in range(0, log_indices.size, block):
            chunk_indices = log_indices[start : start + block]
            block_logs = logs[chunk_indices][:, None, :]
            # In-place OR keeps the peak at one boolean intermediate, so the
            # configured block_bytes really is the transient memory bound.
            eq = codes == block_logs
            eq |= mask
            hits = eq.all(axis=2)
            first = hits.argmax(axis=1)
            matched = hits[np.arange(first.size), first]
            for local, log_index in enumerate(chunk_indices):
                if matched[local]:
                    results[positions[int(log_index)]] = int(bucket.ids[rows[first[local]]])


@dataclass
class MatchResult:
    """Outcome of matching one log record."""

    template_id: int
    template: Template
    is_new_template: bool = False

    @property
    def template_text(self) -> str:
        """User-facing template text."""
        return self.template.text

    @property
    def saturation(self) -> float:
        """Saturation (precision) of the matched template."""
        return self.template.saturation


class OnlineMatcher:
    """Matches a stream of raw logs against a :class:`ParserModel`."""

    def __init__(
        self,
        model: ParserModel,
        config: Optional[ByteBrainConfig] = None,
        preprocessor: Optional[Preprocessor] = None,
        training_assignments: Optional[Dict[Tuple[str, ...], int]] = None,
    ) -> None:
        self.config = config or ByteBrainConfig()
        self.model = model
        self.preprocessor = preprocessor or Preprocessor(self.config)
        self.training_assignments = training_assignments or {}
        #: Memoised token-tuple -> template id map.  This is the online
        #: counterpart of deduplication: duplicate records skip matching.
        self._cache: Dict[Tuple[str, ...], int] = {}
        #: Memoised raw line -> preprocessed token tuple.  Batch dedup only
        #: collapses repeats *within* one call; the runtime's micro-batches
        #: are small (dozens to hundreds of records), so on skewed streams
        #: the same raw lines recur across calls and preprocessing (masking
        #: regexes + tokenization) would dominate the batch path without a
        #: cross-call memo.  Entries are deterministic pure functions of the
        #: raw string, so racy duplicate writes under the GIL are benign.
        self._raw_tokens: Dict[str, Tuple[str, ...]] = {}
        #: Vectorised index over the trained templates.  Temporary templates
        #: created online are exact token tuples, so they live in a side
        #: dictionary instead of forcing index rebuilds.
        self._index = TemplateMatchIndex(model) if self.config.jit_enabled else None
        self._temporary: Dict[Tuple[str, ...], int] = {}

    # ------------------------------------------------------------------ #
    # single record
    # ------------------------------------------------------------------ #
    def match(self, raw_log: str, register_misses: bool = True) -> MatchResult:
        """Preprocess and match a single raw log record.

        With ``register_misses=False`` the call is strictly read-only: an
        unmatched record is reported as a degenerate ``template_id == -1``
        result instead of inserting a temporary template into the (shared)
        model — the mode used for probe matches concurrent with hot swaps.
        """
        tokens = self._raw_tokens.get(raw_log)
        if tokens is None:
            tokens = self.preprocessor.process(raw_log)
            if not tokens:
                tokens = ("<empty>",)
            if register_misses:
                self._memoise_raw(raw_log, tokens)
        return self.match_tokens(tokens, register_misses=register_misses)

    def register_temporary(self, tokens: Tuple[str, ...], template_id: int) -> None:
        """Adopt an externally created temporary template.

        Used by the hot-swap carry-over: temporaries minted on the *old*
        model while a training round ran are re-minted on the new model,
        and registering them here lets the next occurrence of the same
        token tuple resolve to that template instead of inserting a
        duplicate.
        """
        self._temporary[tuple(tokens)] = template_id

    #: Soft cap on the raw-line memo; reset wholesale when exceeded (the
    #: same discipline as the shared token-hash cache).
    _MAX_RAW_MEMO = 262_144

    def _memoise_raw(self, raw: str, tokens: Tuple[str, ...]) -> None:
        if len(self._raw_tokens) >= self._MAX_RAW_MEMO:
            self._raw_tokens.clear()
        self._raw_tokens[raw] = tokens

    def _preprocess_unique(self, unique_raw: Sequence[str]) -> List[Tuple[str, ...]]:
        """Preprocess distinct raw lines through the cross-call memo."""
        memo = self._raw_tokens
        token_lists: List[Optional[Tuple[str, ...]]] = [None] * len(unique_raw)
        miss_positions: List[int] = []
        miss_raws: List[str] = []
        for position, raw in enumerate(unique_raw):
            tokens = memo.get(raw)
            if tokens is None:
                miss_positions.append(position)
                miss_raws.append(raw)
            else:
                token_lists[position] = tokens
        if miss_raws:
            processed = self.preprocessor.process_many(miss_raws)
            for position, tokens in zip(miss_positions, processed):
                tokens = tokens if tokens else ("<empty>",)
                token_lists[position] = tokens
                self._memoise_raw(unique_raw[position], tokens)
        return token_lists  # type: ignore[return-value]

    def match_tokens(self, tokens: Tuple[str, ...], register_misses: bool = True) -> MatchResult:
        """Match an already-preprocessed token tuple."""
        if self.config.deduplication_enabled:
            cached = self._cache.get(tokens)
            if cached is not None:
                return MatchResult(template_id=cached, template=self.model.get(cached))
        return self._finish(tokens, self._lookup(tokens), register_misses=register_misses)

    def _finish(
        self,
        tokens: Tuple[str, ...],
        template: Optional[Template],
        register_misses: bool = True,
    ) -> MatchResult:
        """Turn a lookup outcome into a result, inserting a temporary on miss."""
        is_new = False
        if template is None:
            if self.config.insert_unmatched_as_temporary and register_misses:
                template = self.model.new_temporary_template(tokens)
                self._temporary[tokens] = template.template_id
                is_new = True
            else:
                # Degenerate fallback: report the log itself without
                # registering it (temporary insertion off, or a read-only
                # probe match).
                template = Template(
                    template_id=-1,
                    tokens=tokens,
                    saturation=1.0,
                    parent_id=None,
                    depth=0,
                    is_temporary=True,
                )
        if self.config.deduplication_enabled and template.template_id >= 0 and register_misses:
            # Read-only probe matches skip the cache write too: the dedup
            # cache is shared with the ingest path, and the read-only
            # contract promises no mutation of shared state at all.
            self._cache[tokens] = template.template_id
        return MatchResult(template_id=template.template_id, template=template, is_new_template=is_new)

    def _lookup(self, tokens: Tuple[str, ...]) -> Optional[Template]:
        if self.config.matching_strategy == "naive":
            assigned = self.training_assignments.get(tokens)
            if assigned is not None and assigned in self.model:
                return self.model.get(assigned)
        if self._index is not None:
            template_id = self._index.match(tokens, prune=self.config.candidate_pruning_enabled)
            if template_id is not None:
                return self.model.get(template_id)
            temporary_id = self._temporary.get(tokens)
            if temporary_id is not None:
                return self.model.get(temporary_id)
            return None
        return self.model.match_tokens(tokens)

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #
    def match_many(self, raw_logs: Sequence[str]) -> List[MatchResult]:
        """Match a batch of raw logs.

        The batch is preprocessed, deduplicated (the online counterpart of
        §4.1.3 — duplicate records are matched once) and the distinct token
        tuples are resolved through the batched index engine, optionally
        sharded across ``parallelism`` worker threads — the shards are NumPy
        broadcast blocks that release the GIL, so threads scale (§3 "Online
        Matching").  Temporary-template insertion stays single-threaded to
        avoid concurrent model mutation.
        """
        if not raw_logs:
            return []
        if not self.config.deduplication_enabled:
            token_lists = self.preprocessor.process_many(raw_logs)
            token_lists = [tokens if tokens else ("<empty>",) for tokens in token_lists]
            lookups = self._lookup_pending(token_lists, list(range(len(token_lists))))
            return [
                self.match_tokens(tokens)
                if lookups[idx] is None
                else MatchResult(template_id=lookups[idx], template=self.model.get(lookups[idx]))
                for idx, tokens in enumerate(token_lists)
            ]

        # Raw-level deduplication first: identical raw records (bursts,
        # health checks, retries) skip preprocessing entirely.
        unique_raw: List[str] = []
        raw_inverse: List[int] = []
        raw_seen: Dict[str, int] = {}
        for raw in raw_logs:
            idx = raw_seen.get(raw)
            if idx is None:
                idx = len(unique_raw)
                raw_seen[raw] = idx
                unique_raw.append(raw)
            raw_inverse.append(idx)

        token_lists = self._preprocess_unique(unique_raw)

        # Token-level deduplication second: distinct raw records frequently
        # collapse after variable replacement (§4.1.3, Fig. 4).
        unique_order: List[Tuple[str, ...]] = []
        token_inverse: List[int] = []
        seen: Dict[Tuple[str, ...], int] = {}
        for tokens in token_lists:
            idx = seen.get(tokens)
            if idx is None:
                idx = len(unique_order)
                seen[tokens] = idx
                unique_order.append(tokens)
            token_inverse.append(idx)

        unique_results = self._match_unique(unique_order)
        # Expand unique results back to records.  A newly created temporary
        # template is "new" only for the first record that produced it —
        # duplicates must report is_new_template=False, exactly like the
        # per-record path (where they hit the dedup cache).
        emitted: set = set()
        expanded: List[MatchResult] = []
        for raw_idx in raw_inverse:
            unique_idx = token_inverse[raw_idx]
            result = unique_results[unique_idx]
            if result.is_new_template:
                if unique_idx in emitted:
                    result = MatchResult(
                        template_id=result.template_id, template=result.template
                    )
                else:
                    emitted.add(unique_idx)
            expanded.append(result)
        return expanded

    def _match_unique(self, unique_tokens: List[Tuple[str, ...]]) -> List[MatchResult]:
        """Match each distinct token tuple exactly once."""
        results: List[Optional[MatchResult]] = [None] * len(unique_tokens)

        pending: List[int] = []
        for idx, tokens in enumerate(unique_tokens):
            cached = self._cache.get(tokens)
            if cached is not None:
                results[idx] = MatchResult(template_id=cached, template=self.model.get(cached))
            else:
                pending.append(idx)

        lookups = self._lookup_pending(unique_tokens, pending)

        batch_resolved = (
            self._index is not None
            and self.config.batch_matching_enabled
            and self.config.matching_strategy != "naive"
        )
        for idx in pending:
            template_id = lookups[idx]
            tokens = unique_tokens[idx]
            if template_id is None:
                if batch_resolved:
                    # The batch engine already probed the trained index; only
                    # the temporary side dictionary and temporary insertion
                    # remain (single-threaded model mutation).
                    temporary_id = self._temporary.get(tokens)
                    template = self.model.get(temporary_id) if temporary_id is not None else None
                    results[idx] = self._finish(tokens, template)
                else:
                    results[idx] = self.match_tokens(tokens)
            else:
                self._cache[tokens] = template_id
                results[idx] = MatchResult(template_id=template_id, template=self.model.get(template_id))
        # Every slot is filled above (cached or pending); a None would mean
        # the result/position alignment is corrupt, which match_many would
        # silently propagate into wrong per-record template ids.
        if any(result is None for result in results):
            raise RuntimeError("internal error: unmatched slot in _match_unique results")
        return results  # type: ignore[return-value]

    def _lookup_pending(
        self, unique_tokens: List[Tuple[str, ...]], pending: List[int]
    ) -> Dict[int, Optional[int]]:
        """Resolve pending tuples to trained template ids (or ``None``).

        Uses the batched engine when enabled; shards are contiguous blocks
        handed to :meth:`TemplateMatchIndex.match_batch`, whose broadcast
        kernels release the GIL, so thread-parallelism operates on NumPy
        blocks instead of per-tuple Python calls.
        """
        if not pending:
            return {}
        parallelism = self.config.parallelism
        use_batch = (
            self._index is not None
            and self.config.batch_matching_enabled
            and self.config.matching_strategy != "naive"
        )
        if use_batch:
            pending_tokens = [unique_tokens[idx] for idx in pending]
            prune = self.config.candidate_pruning_enabled
            block_bytes = self.config.match_block_bytes
            if parallelism > 1 and len(pending) >= 2 * parallelism:
                shards = chunk_ranges(len(pending_tokens), parallelism)

                def match_shard(bounds: Tuple[int, int]) -> List[Optional[int]]:
                    start, end = bounds
                    return self._index.match_batch(
                        pending_tokens[start:end], block_bytes=block_bytes, prune=prune
                    )

                shard_ids = map_parallel(match_shard, shards, parallelism)
                ids: List[Optional[int]] = [tid for shard in shard_ids for tid in shard]
            else:
                ids = self._index.match_batch(pending_tokens, block_bytes=block_bytes, prune=prune)
            return dict(zip(pending, ids))

        if parallelism > 1 and len(pending) >= 2 * parallelism:
            shards = chunk_ranges(len(pending), parallelism)

            def match_scalar_shard(bounds: Tuple[int, int]) -> List[Tuple[int, Optional[int]]]:
                start, end = bounds
                return [
                    (idx, self._lookup_id(unique_tokens[idx])) for idx in pending[start:end]
                ]

            shard_results = map_parallel(match_scalar_shard, shards, parallelism)
            return {idx: template_id for shard in shard_results for idx, template_id in shard}
        return {idx: self._lookup_id(unique_tokens[idx]) for idx in pending}

    def _lookup_id(self, tokens: Tuple[str, ...]) -> Optional[int]:
        template = self._lookup(tokens)
        return template.template_id if template is not None else None
