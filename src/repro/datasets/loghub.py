"""Loader for the genuine LogHub / LogHub-2.0 corpus files.

The public benchmarks distribute, for every system, a raw log file plus a
``*_structured.csv`` companion whose ``Content`` and ``EventId`` columns hold
the log message and its ground-truth template id.  When those files are
available locally (they cannot be downloaded in this offline environment),
this loader produces :class:`~repro.datasets.synthetic.LogDataset` objects
that drop into every experiment unchanged, so the whole harness can be
re-run against the real benchmark.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.datasets.synthetic import LogDataset

__all__ = ["load_structured_csv", "find_loghub_dataset"]


def load_structured_csv(
    path: Union[str, Path],
    name: Optional[str] = None,
    variant: str = "loghub",
    content_column: str = "Content",
    event_column: str = "EventId",
    template_column: str = "EventTemplate",
) -> LogDataset:
    """Load a LogHub ``*_structured.csv`` file into a :class:`LogDataset`.

    Parameters
    ----------
    path:
        Path to the structured CSV (e.g. ``HDFS_2k.log_structured.csv``).
    name:
        Dataset name; derived from the file name if omitted.
    variant:
        Label recorded on the dataset (``"loghub"`` or ``"loghub2"``).
    content_column, event_column, template_column:
        Column names of the log content, ground-truth event id and template
        text (the LogHub defaults).
    """
    path = Path(path)
    if name is None:
        name = path.stem.split("_")[0]
    lines: List[str] = []
    event_ids: List[str] = []
    template_texts: Dict[str, str] = {}
    with path.open(newline="", encoding="utf-8", errors="replace") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or content_column not in reader.fieldnames:
            raise ValueError(f"{path} does not look like a LogHub structured CSV")
        for row in reader:
            content = row.get(content_column, "")
            event = row.get(event_column, "")
            lines.append(content)
            event_ids.append(event)
            if template_column in row and event not in template_texts:
                template_texts[event] = row[template_column]

    event_index = {event: idx for idx, event in enumerate(dict.fromkeys(event_ids))}
    ground_truth = [event_index[event] for event in event_ids]
    templates = [
        template_texts.get(event, event) for event in dict.fromkeys(event_ids)
    ]
    return LogDataset(
        name=name,
        variant=variant,
        lines=lines,
        ground_truth=ground_truth,
        templates=templates,
        source="loghub",
    )


def find_loghub_dataset(root: Union[str, Path], name: str) -> Optional[Path]:
    """Locate the structured CSV for ``name`` under a local LogHub checkout."""
    root = Path(root)
    if not root.exists():
        return None
    patterns = [
        f"{name}/{name}_2k.log_structured.csv",
        f"{name}_2k.log_structured.csv",
        f"{name}/{name}_full.log_structured.csv",
    ]
    for pattern in patterns:
        candidate = root / pattern
        if candidate.exists():
            return candidate
    matches = sorted(root.glob(f"**/{name}*structured.csv"))
    return matches[0] if matches else None
