"""Per-shard write-ahead log for the sharded ingest runtime.

Every record the runtime acknowledges lives only in memory until a
training round persists a :class:`~repro.core.modelstore.ModelStore`
snapshot — a crash between the two loses data.  The WAL closes that gap:
:meth:`ShardedRuntime.submit` appends the record to its shard's log
*before* enqueueing it, so an acknowledged record is always recoverable
(:mod:`repro.service.recovery` replays the log through the batched ingest
path on restart).

On-disk layout (one directory per runtime)::

    <wal_root>/
      watermark.json            # {"captured": {topic: seq}} — low-water mark
      shard-00/
        segment-00000001.wal    # length-prefixed CRC32 frames
        segment-00000002.wal
      shard-01/
        ...

Segment format: an 8-byte magic header, then frames.  Each frame is one
*record batch*.  Two magics are readable; writers emit v2::

    u32 payload_length | u32 crc32(payload) | payload

    BBWAL001 payload := u32 n_records, then per record:
        u16 len(topic) | topic utf-8 | u64 seq | f64 timestamp
        | u32 len(raw) | raw utf-8

    BBWAL002 payload := u8 n_marks
        | n_marks x (u16 len(producer) | producer utf-8 | u64 batch_seq)
        | <BBWAL001 payload>

The v2 *producer mark* records the idempotent-producer dedup high-water
mark (``tenant::producer_id`` -> highest applied wire ``batch_seq``)
inside the same frame as the records it covers: recovery and the WAL
shipper restore dedup state from the frames themselves, so a client
replaying an un-acked batch after reconnect or failover is detected as
a duplicate even across a crash or a promotion.  The mark rides the
frame — never a frame of its own — because a torn tail must not restore
records without the mark that makes their replay a no-op.  A segment's
frames are uniformly one version (every process starts a fresh segment).

``seq`` is a per-topic sequence number assigned at append time, starting
at 1 and contiguous — replay and snapshot watermarks are expressed in it.
A crash can tear the final frame of the final segment (partial header,
short payload, CRC mismatch); readers detect that, drop the torn frame and
report it.  A bad frame anywhere *else* is corruption and raises
:class:`WalCorruptionError` — data loss must be loud, not silent.

Durability semantics are set by ``wal_sync_mode`` (see
:class:`~repro.core.config.ByteBrainConfig`): every append always reaches
the OS page cache (``write`` + ``flush``), which survives a process kill;
fsync policy only decides the exposure window to a kernel/power failure.

Truncation: a *closed* segment is deleted once every record in it has
``seq <= floor(topic)`` for the caller-supplied per-topic floors (the
runtime computes floors from persisted snapshot watermarks; see
``ShardedRuntime``'s low-water-mark protocol).  The active segment is
never truncated.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core import failpoints
from repro.core.failpoints import FailpointError

__all__ = [
    "WalRecord",
    "WalCorruptionError",
    "SegmentInfo",
    "ShardWal",
    "WriteAheadLog",
    "read_segment",
    "decode_frame_payload",
    "segment_version",
]

_MAGIC = b"BBWAL001"
_MAGIC_V2 = b"BBWAL002"
_MAGICS = (_MAGIC, _MAGIC_V2)
_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
_RECORD_HEAD = struct.Struct("<H")  # len(topic)
_RECORD_BODY = struct.Struct("<Qd")  # seq, timestamp
_RECORD_RAW = struct.Struct("<I")  # len(raw)
_COUNT = struct.Struct("<I")  # records per frame
_MARK_FLAG = struct.Struct("<B")  # v2: number of producer marks (0-255)
_MARK_HEAD = struct.Struct("<H")  # v2: len(producer key)
_MARK_SEQ = struct.Struct("<Q")  # v2: producer batch_seq

_WATERMARK_FILE = "watermark.json"
_SESSIONS_FILE = "sessions.json"
_SHARD_PREFIX = "shard-"
_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".wal"


class WalCorruptionError(RuntimeError):
    """A WAL frame failed its CRC/framing check outside the torn tail."""


@dataclass
class WalRecord:
    """One durably logged ingest record."""

    topic: str
    seq: int
    timestamp: float
    raw: str


@dataclass
class SegmentInfo:
    """Reader-side summary of one segment file."""

    path: Path
    n_frames: int = 0
    n_records: int = 0
    #: Per-topic ``(min_seq, max_seq)`` of the records in this segment.
    topic_seqs: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: True when the segment ends in a torn (partially written) frame.
    torn_tail: bool = False
    #: Per-producer max ``batch_seq`` mark found in this segment (v2 only).
    producer_marks: Dict[str, int] = field(default_factory=dict)
    #: Frame-format version of the segment (1 = BBWAL001, 2 = BBWAL002).
    version: int = 2


def _normalize_session(session) -> List[Tuple[str, int]]:
    """Accept one ``(producer_key, batch_seq)`` mark or a sequence of
    them (a coalesced micro-batch frame can cover several producers)."""
    if session is None:
        return []
    if isinstance(session, tuple) and len(session) == 2 and isinstance(session[0], str):
        return [session]
    return [tuple(mark) for mark in session]


def _encode_mark_prefix(session) -> bytes:
    """The v2 payload prefix: the producer-mark count and entries."""
    marks = _normalize_session(session)
    if len(marks) > 255:
        raise ValueError("a frame carries at most 255 producer marks")
    parts = [_MARK_FLAG.pack(len(marks))]
    for producer_key, batch_seq in marks:
        key_bytes = producer_key.encode("utf-8")
        parts.append(_MARK_HEAD.pack(len(key_bytes)))
        parts.append(key_bytes)
        parts.append(_MARK_SEQ.pack(batch_seq))
    return b"".join(parts)


def _encode_frame(records: Sequence[WalRecord], session=None) -> bytes:
    parts: List[bytes] = [_encode_mark_prefix(session), _COUNT.pack(len(records))]
    for record in records:
        topic_bytes = record.topic.encode("utf-8")
        raw_bytes = record.raw.encode("utf-8")
        parts.append(_RECORD_HEAD.pack(len(topic_bytes)))
        parts.append(topic_bytes)
        parts.append(_RECORD_BODY.pack(record.seq, record.timestamp))
        parts.append(_RECORD_RAW.pack(len(raw_bytes)))
        parts.append(raw_bytes)
    payload = b"".join(parts)
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


#: Compiled per-record header structs keyed by topic-name byte length
#: (struct's internal cache only covers the module-level pack functions,
#: not explicit Struct construction — without this, every single-record
#: submit would recompile the format string).
_TOPIC_HEAD_STRUCTS: Dict[int, struct.Struct] = {}


def _encode_topic_frame(topic: str, first_seq: int, timestamp: float,
                        raws: Sequence[str],
                        timestamps: Optional[Sequence[float]] = None,
                        session=None) -> bytes:
    """Encode one frame of seq-contiguous records for a single topic.

    The ingest hot path: identical wire format to :func:`_encode_frame`,
    but the per-record topic/seq/timestamp prefix collapses into one
    precompiled struct pack — an acknowledged durable append must stay
    within a microsecond or two of the in-memory deque push it guards.
    ``timestamps`` optionally stamps each record individually (worker
    processes coalesce records submitted at different times into one
    frame); ``timestamp`` stamps the whole batch otherwise.  ``session``
    — ``(producer_key, batch_seq)`` — embeds an idempotent-producer
    dedup mark in the same frame as the records it covers.
    """
    topic_bytes = topic.encode("utf-8")
    topic_len = len(topic_bytes)
    head = _TOPIC_HEAD_STRUCTS.get(topic_len)
    if head is None:
        head = _TOPIC_HEAD_STRUCTS.setdefault(
            topic_len, struct.Struct(f"<H{topic_len}sQdI")
        )
    parts: List[bytes] = [_encode_mark_prefix(session), _COUNT.pack(len(raws))]
    append = parts.append
    pack = head.pack
    seq = first_seq
    if timestamps is None:
        for raw in raws:
            raw_bytes = raw.encode("utf-8")
            append(pack(topic_len, topic_bytes, seq, timestamp, len(raw_bytes)))
            append(raw_bytes)
            seq += 1
    else:
        if len(timestamps) != len(raws):
            raise ValueError("timestamps must match raws in length")
        for raw, record_ts in zip(raws, timestamps):
            raw_bytes = raw.encode("utf-8")
            append(pack(topic_len, topic_bytes, seq, record_ts, len(raw_bytes)))
            append(raw_bytes)
            seq += 1
    payload = b"".join(parts)
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes, offset: int = 0) -> List[WalRecord]:
    """Decode the v1 record block starting at ``offset``."""
    (n_records,) = _COUNT.unpack_from(payload, offset)
    offset += _COUNT.size
    records: List[WalRecord] = []
    for _ in range(n_records):
        (topic_len,) = _RECORD_HEAD.unpack_from(payload, offset)
        offset += _RECORD_HEAD.size
        topic = payload[offset : offset + topic_len].decode("utf-8")
        offset += topic_len
        seq, timestamp = _RECORD_BODY.unpack_from(payload, offset)
        offset += _RECORD_BODY.size
        (raw_len,) = _RECORD_RAW.unpack_from(payload, offset)
        offset += _RECORD_RAW.size
        raw = payload[offset : offset + raw_len].decode("utf-8")
        offset += raw_len
        records.append(WalRecord(topic=topic, seq=seq, timestamp=timestamp, raw=raw))
    if offset != len(payload):
        raise ValueError("frame payload has trailing bytes")
    return records


def _decode_payload_v2(payload: bytes) -> Tuple[List[WalRecord], Dict[str, int]]:
    """Decode a v2 payload: ``(records, producer_marks)``."""
    (n_marks,) = _MARK_FLAG.unpack_from(payload, 0)
    offset = _MARK_FLAG.size
    marks: Dict[str, int] = {}
    for _ in range(n_marks):
        (key_len,) = _MARK_HEAD.unpack_from(payload, offset)
        offset += _MARK_HEAD.size
        producer_key = payload[offset : offset + key_len].decode("utf-8")
        offset += key_len
        (batch_seq,) = _MARK_SEQ.unpack_from(payload, offset)
        offset += _MARK_SEQ.size
        if batch_seq > marks.get(producer_key, 0):
            marks[producer_key] = batch_seq
    return _decode_payload(payload, offset), marks


def decode_frame_payload(
    payload: bytes, version: int
) -> Tuple[List[WalRecord], Dict[str, int]]:
    """Version-dispatching payload decoder shared with the WAL shipper."""
    if version == 1:
        return _decode_payload(payload), {}
    return _decode_payload_v2(payload)


def segment_version(magic: bytes) -> Optional[int]:
    """Frame-format version for a segment magic; ``None`` if unknown."""
    if magic == _MAGIC:
        return 1
    if magic == _MAGIC_V2:
        return 2
    return None


def read_segment(path: Path) -> Tuple[List[List[WalRecord]], SegmentInfo]:
    """Read one segment: ``(frames, info)``.

    A torn tail (short header, short payload or CRC mismatch at the very
    end of the file) is dropped and flagged in ``info.torn_tail``; the
    frames before it are returned intact.  A zero-length or header-only
    file (a crash during rotation) reads as an empty segment.
    """
    info = SegmentInfo(path=path)
    data = path.read_bytes()
    if len(data) < len(_MAGIC):
        # A crash during segment creation: empty file or partial header.
        info.torn_tail = len(data) > 0
        return [], info
    version = segment_version(data[: len(_MAGIC)])
    if version is None:
        # A full-size header that is not a known magic is never a crash
        # artifact — treating it as torn would silently drop every frame
        # in the segment.
        raise WalCorruptionError(f"bad segment magic in {path}")
    info.version = version
    frames: List[List[WalRecord]] = []
    offset = len(_MAGIC)
    total = len(data)
    while offset < total:
        if offset + _FRAME_HEADER.size > total:
            info.torn_tail = True  # partial frame header: crash mid-append
            break
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        payload_start = offset + _FRAME_HEADER.size
        payload_end = payload_start + length
        if payload_end > total:
            info.torn_tail = True  # declared payload extends past EOF
            break
        payload = data[payload_start:payload_end]
        bad = zlib.crc32(payload) != crc
        marks: Dict[str, int] = {}
        if not bad:
            try:
                records, marks = decode_frame_payload(payload, version)
            except Exception:
                bad = True
        if bad:
            if payload_end == total:
                # A full-length final frame with a bad CRC: the tail of an
                # append that never finished — drop it like any torn tail.
                info.torn_tail = True
                break
            # Bad frame with more data after it: never a crash artifact.
            raise WalCorruptionError(f"corrupt frame at byte {offset} of {path}")
        frames.append(records)
        info.n_frames += 1
        info.n_records += len(records)
        for producer_key, batch_seq in marks.items():
            if batch_seq > info.producer_marks.get(producer_key, 0):
                info.producer_marks[producer_key] = batch_seq
        for record in records:
            lo, hi = info.topic_seqs.get(record.topic, (record.seq, record.seq))
            info.topic_seqs[record.topic] = (min(lo, record.seq), max(hi, record.seq))
        offset = payload_end
    return frames, info


def _write_json_atomic(directory: Path, filename: str, obj: Dict) -> None:
    """Temp file, fsync, ``os.replace``, best-effort directory fsync — a
    crash at any point leaves either the old complete file or the new
    complete file (watermark.json and the sessions.json checkpoints)."""
    payload = (json.dumps(obj, indent=2) + "\n").encode("utf-8")
    target = directory / filename
    tmp = target.with_name(filename + ".tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, target)
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # directory fds unsupported (non-POSIX): replace is enough
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _read_producer_marks(path: Path) -> Dict[str, int]:
    """Read one sessions.json checkpoint; missing or torn reads as empty
    (the file is written crash-atomically, so a parse error only means a
    write raced the read)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return {str(key): int(seq) for key, seq in data.get("producers", {}).items()}


def _segment_index(path: Path) -> int:
    stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return int(stem)


def _delete_if_captured(path: Path, stats: Dict[str, int], floors: Dict[str, int]) -> bool:
    """Delete a segment if every record in it is below its topic's floor.

    The single retention predicate shared by shard-owned and orphan-
    directory truncation: a segment survives if any topic in it is above
    its floor — or absent from ``floors`` entirely.
    """
    if not all(max_seq <= floors.get(topic, -1) for topic, max_seq in stats.items()):
        return False
    try:
        path.unlink()
    except FileNotFoundError:
        pass
    return True


def _segment_paths(directory: Path) -> List[Path]:
    """Segment files of one shard directory, oldest first.

    The single definition of "what is a segment file" — listing, replay
    and truncation must all agree on it or they silently diverge.
    """
    return sorted(
        (
            p
            for p in directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
            if p.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)].isdigit()
        ),
        key=_segment_index,
    )


class ShardWal:
    """Append-only segmented log for one shard (thread-safe appends)."""

    def __init__(self, directory: os.PathLike, sync_mode: str = "batch",
                 segment_bytes: int = 4 * 1024 * 1024,
                 known_stats: Optional[Dict[Path, Dict[str, int]]] = None) -> None:
        if sync_mode not in ("off", "batch", "always"):
            raise ValueError(f"unknown wal sync mode {sync_mode!r}")
        self.directory = Path(directory)
        self.sync_mode = sync_mode
        self.segment_bytes = segment_bytes
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = None
        self._size = 0
        self._last_sync = 0.0
        #: Set when a failed append left a tail this process could not
        #: truncate away — the next append rotates to a fresh segment so
        #: the torn bytes end a *closed* segment (readers drop a torn
        #: tail; torn bytes mid-file would read as corruption).
        self._force_rotate = False
        #: Per *closed* segment: per-topic max seq (feeds truncation).
        self._closed_stats: Dict[Path, Dict[str, int]] = {}
        self._active_stats: Dict[str, int] = {}
        self._active_path: Optional[Path] = None
        self._producer_marks_cache: Optional[Dict[str, int]] = None
        existing = self.segments()
        for path in existing:
            # Truncation needs per-topic max seqs for pre-existing
            # segments.  ``known_stats`` (a recovery replay already read
            # every segment) avoids paying a second full scan; anything
            # not covered is scanned here once.  Torn-tail segments are
            # never registered for truncation — they hold evidence of
            # un-acknowledged records, preserved for inspection (same
            # rule as orphan-directory truncation).
            stats = None if known_stats is None else known_stats.get(path)
            if stats is None:
                _, info = read_segment(path)
                if info.torn_tail:
                    continue
                stats = {t: hi for t, (_, hi) in info.topic_seqs.items()}
            self._closed_stats[path] = stats
        next_index = _segment_index(existing[-1]) + 1 if existing else 1
        # Always start a fresh segment: never append after a possibly-torn
        # tail left by a previous crash.
        self._start_segment(next_index)

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def _start_segment(self, index: int) -> None:
        """Open segment ``index`` for appending (crash-test hook point)."""
        path = self.directory / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"
        # Unbuffered: every write is one syscall straight into the page
        # cache, which is the per-append durability point (a process kill
        # cannot lose it) — no userspace buffer to flush, no double copy.
        self._file = open(path, "ab", buffering=0)
        self._file.write(_MAGIC_V2)
        self._size = len(_MAGIC_V2)
        self._active_path = path
        self._active_stats = {}
        self._force_rotate = False

    def _rotate(self) -> None:
        assert self._file is not None and self._active_path is not None
        failpoints.hit("wal.rotate")
        if self.sync_mode != "off":
            self._fsync()
        self._file.close()
        self._closed_stats[self._active_path] = self._active_stats
        self._start_segment(_segment_index(self._active_path) + 1)

    def append(self, records: Sequence[WalRecord], session=None) -> None:
        """Durably append one frame holding ``records`` (a record batch).

        A record-less call with a ``session`` still writes a mark-only
        frame: an empty idempotent batch's acknowledgement promises the
        producer's ``batch_seq`` is durable like any other.
        """
        if not records and not _normalize_session(session):
            return
        frame = _encode_frame(records, session)
        with self._lock:
            start = self._write_frame(frame)
            if self.sync_mode == "always":
                self._fsync_or_discard(start)
            for record in records:
                previous = self._active_stats.get(record.topic, 0)
                if record.seq > previous:
                    self._active_stats[record.topic] = record.seq

    def append_batch(self, topic: str, first_seq: int, timestamp: float,
                     raws: Sequence[str],
                     timestamps: Optional[Sequence[float]] = None,
                     session=None) -> None:
        """Hot-path append: one frame of contiguous records for one topic.

        Same durability and framing as :meth:`append`; skips the
        per-record :class:`WalRecord` materialisation the generic path
        pays (the runtime always logs one topic per frame).
        ``timestamps`` stamps each record individually when given;
        ``session`` embeds a producer dedup mark in the frame.
        """
        if not raws:
            return
        frame = _encode_topic_frame(topic, first_seq, timestamp, raws, timestamps,
                                    session)
        last_seq = first_seq + len(raws) - 1
        with self._lock:
            start = self._write_frame(frame)
            if self.sync_mode == "always":
                self._fsync_or_discard(start)
            if last_seq > self._active_stats.get(topic, 0):
                self._active_stats[topic] = last_seq

    def _write_frame(self, frame: bytes) -> int:
        """Write one encoded frame (caller holds the lock).

        Returns the frame's start offset.  A write that fails midway —
        a real short write (disk full, I/O error) or an injected
        ``wal.append`` torn-write failpoint — is *repaired*: the file is
        truncated back to the frame boundary, so the failed append can
        neither corrupt later appends nor leave a frame whose seq the
        caller will re-mint for a different record (the raising submit
        was never acknowledged; replay must not prefer its payload).
        """
        if self._file is None:
            raise RuntimeError("write-ahead log is closed")
        if self._force_rotate or (
            self._size > len(_MAGIC) and self._size + len(frame) > self.segment_bytes
        ):
            self._rotate()
        start = self._size
        try:
            torn = failpoints.hit("wal.append")
            if torn is not None:
                # Cooperating torn write: a strict prefix of the frame,
                # then the injected failure — exactly what a crash or
                # ENOSPC mid-write leaves behind.
                prefix = frame[: max(1, min(torn.bytes_written, len(frame) - 1))]
                self._file.write(prefix)
                raise FailpointError(
                    f"failpoint 'wal.append' tore the frame after {len(prefix)} bytes"
                )
            self._file.write(frame)
        except BaseException:
            self._discard_tail(start)
            raise
        self._size += len(frame)
        return start

    def _discard_tail(self, size: int) -> None:
        """Truncate the active segment back to ``size`` (a frame boundary).

        Best-effort repair after a failed append or ack-path fsync.  If
        even the truncate fails, the torn bytes stay — the next append
        then rotates first, so they end a closed segment whose torn tail
        readers drop, instead of corrupting the middle of a live one.
        """
        try:
            self._file.truncate(size)
            self._size = size
        except OSError:
            self._force_rotate = True

    def _fsync(self) -> None:
        failpoints.hit("wal.sync")
        os.fsync(self._file.fileno())

    def _fsync_or_discard(self, start: int) -> None:
        """``always``-mode ack fsync: on failure, drop the just-written
        frame before re-raising.  The submit is about to raise, so its
        seq will be re-minted for the *next* record — a surviving frame
        with the old payload would make replay keep the wrong record."""
        try:
            self._fsync()
        except BaseException:
            self._discard_tail(start)
            raise

    def sync(self, min_interval: float = 0.0) -> None:
        """fsync the active segment (micro-batch / drain barrier).

        ``min_interval`` rate-limits group commit: the call is a no-op if
        the last fsync happened less than that many seconds ago (the
        classic commit-delay trade — a crash of the *kernel* can lose at
        most one interval's worth of acknowledged records; a process
        crash still loses nothing).  ``0.0`` forces the fsync.
        """
        with self._lock:
            if self._file is None or self.sync_mode == "off":
                return
            now = time.monotonic()
            if min_interval > 0.0 and now - self._last_sync < min_interval:
                return
            self._fsync()
            self._last_sync = now

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                if self.sync_mode != "off":
                    os.fsync(self._file.fileno())
                self._file.close()
                self._file = None

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def segments(self) -> List[Path]:
        """All segment files of this shard, oldest first."""
        return _segment_paths(self.directory)

    def pending_records(self, floors: Dict[str, int]) -> Dict[str, List[WalRecord]]:
        """Logged-but-unapplied records, for supervisor restart resync.

        ``floors`` maps topic -> last *applied* seq; every logged record
        with a higher seq is returned, per topic, seq-sorted and deduped
        (topics absent from ``floors`` are skipped — the caller only
        resyncs topics it owns).  Safe to call while producers append
        concurrently: frames are written whole under the append lock, so
        a read can at worst see a torn-looking final frame, which is
        skipped here — its record still sits in the ingest queue, and
        the applied-seq filter makes replay-then-queue-delivery land it
        exactly once.
        """
        pending: Dict[str, List[WalRecord]] = {}
        for path in self.segments():
            try:
                frames, _ = read_segment(path)
            except OSError:
                continue  # truncated away between listing and reading
            for frame in frames:
                for record in frame:
                    floor = floors.get(record.topic)
                    if floor is None or record.seq <= floor:
                        continue
                    pending.setdefault(record.topic, []).append(record)
        for topic, records in pending.items():
            records.sort(key=lambda r: r.seq)
            deduped: List[WalRecord] = []
            last_seq = -1
            for record in records:
                if record.seq != last_seq:
                    deduped.append(record)
                    last_seq = record.seq
            pending[topic] = deduped
        return pending

    def truncate(self, floors: Dict[str, int]) -> List[Path]:
        """Delete closed segments whose every record is below its topic floor.

        ``floors`` maps topic -> highest seq safe to discard.  A segment
        containing any record above its topic's floor — or any topic absent
        from ``floors`` — is kept.  Returns the deleted paths.
        """
        deleted: List[Path] = []
        with self._lock:
            for path, stats in list(self._closed_stats.items()):
                if path == self._active_path:
                    continue
                if _delete_if_captured(path, stats, floors):
                    del self._closed_stats[path]
                    deleted.append(path)
        return deleted

    def producer_marks(self) -> Dict[str, int]:
        """This shard's checkpointed producer marks (see
        :meth:`WriteAheadLog.producer_marks` for the ownership split)."""
        with self._lock:
            return dict(self._producer_marks_locked())

    def _producer_marks_locked(self) -> Dict[str, int]:
        if self._producer_marks_cache is None:
            self._producer_marks_cache = _read_producer_marks(
                self.directory / _SESSIONS_FILE
            )
        return self._producer_marks_cache

    def record_producer_marks(self, marks: Dict[str, int]) -> None:
        """Max-merge ``marks`` into this shard's checkpoint (crash-atomic;
        a no-op when nothing advanced).  Process-backend workers call this
        before truncating their own segments — the marks those segments
        carried must survive the reclaim, and only the owning worker may
        write inside a shard directory."""
        if not marks:
            return
        with self._lock:
            merged = dict(self._producer_marks_locked())
            changed = False
            for key, seq in marks.items():
                if int(seq) > merged.get(key, 0):
                    merged[key] = int(seq)
                    changed = True
            if not changed:
                return
            _write_json_atomic(self.directory, _SESSIONS_FILE, {"producers": merged})
            self._producer_marks_cache = merged


class WriteAheadLog:
    """Per-shard WALs plus the persisted low-water mark, under one root."""

    def __init__(
        self,
        root: os.PathLike,
        sync_mode: str = "batch",
        segment_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        self.root = Path(root)
        self.sync_mode = sync_mode
        self.segment_bytes = segment_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._shards: Dict[int, ShardWal] = {}
        self._shards_lock = threading.Lock()
        self._watermark_lock = threading.Lock()
        self._captured_cache: Optional[Dict[str, int]] = None
        self._producer_marks_cache: Optional[Dict[str, int]] = None
        #: Segment -> per-topic max seq for shard dirs this process does
        #: not write to (scanned once per segment, see truncate()).
        self._orphan_stats: Dict[Path, Dict[str, int]] = {}
        #: Segment -> (size at scan time, per-topic max seq), filled by
        #: iter_segments so a runtime opened right after a recovery replay
        #: does not re-read every segment just to rebuild stats.
        self._scan_cache: Dict[Path, Tuple[int, Dict[str, int]]] = {}

    # ------------------------------------------------------------------ #
    # shard access
    # ------------------------------------------------------------------ #
    def shard(self, index: int) -> ShardWal:
        """The shard's log, opened lazily (a fresh segment per process)."""
        with self._shards_lock:
            wal = self._shards.get(index)
            if wal is None:
                directory = self.root / f"{_SHARD_PREFIX}{index:02d}"
                known = {
                    path: stats
                    for path, (size, stats) in self._scan_cache.items()
                    if path.parent == directory
                    and path.exists()
                    and path.stat().st_size == size
                }
                wal = ShardWal(
                    directory,
                    sync_mode=self.sync_mode,
                    segment_bytes=self.segment_bytes,
                    known_stats=known,
                )
                self._shards[index] = wal
            return wal

    def shard_directory(self, index: int) -> Path:
        """Path of shard ``index``'s directory, *without* opening a
        :class:`ShardWal` over it (opening starts a fresh segment and
        claims append ownership — worker processes do that themselves;
        the parent must only ever name the path)."""
        return self.root / f"{_SHARD_PREFIX}{index:02d}"

    def shard_dirs(self) -> List[Path]:
        """Every shard directory on disk (crash-time shard count may differ
        from the current runtime's)."""
        return sorted(p for p in self.root.glob(f"{_SHARD_PREFIX}*") if p.is_dir())

    def has_state(self) -> bool:
        """True when the log holds records or low-water marks from a
        previous run (a fresh runtime must not restart sequences over
        them — see ``ShardedRuntime``'s constructor guard).  Magic-only
        segments (a runtime that opened shards but never logged a record)
        do not count as state."""
        if self.captured():
            return True
        return any(
            path.stat().st_size > len(_MAGIC)
            for shard_dir in self.shard_dirs()
            for path in _segment_paths(shard_dir)
        )

    def sync_all(self) -> None:
        with self._shards_lock:
            shards = list(self._shards.values())
        for wal in shards:
            wal.sync()

    def close(self) -> None:
        with self._shards_lock:
            shards = list(self._shards.values())
            self._shards.clear()
        for wal in shards:
            wal.close()

    # ------------------------------------------------------------------ #
    # low-water mark
    # ------------------------------------------------------------------ #
    def _watermark_path(self) -> Path:
        return self.root / _WATERMARK_FILE

    def captured(self) -> Dict[str, int]:
        """Per-topic seq up to which records are snapshot-captured.

        Served from an in-memory copy after the first read — this process
        is the file's only writer, and every training-round persist,
        drain and stats poll consults it.
        """
        with self._watermark_lock:
            return dict(self._captured_locked())

    def _captured_locked(self) -> Dict[str, int]:
        if self._captured_cache is None:
            path = self._watermark_path()
            if not path.exists():
                self._captured_cache = {}
            else:
                data = json.loads(path.read_text(encoding="utf-8"))
                self._captured_cache = {
                    str(topic): int(seq) for topic, seq in data.get("captured", {}).items()
                }
        return self._captured_cache

    def set_captured(self, topic: str, seq: int) -> None:
        """Persist the low-water mark for one topic (crash-atomic).

        Moves both forward (training commit) and *backward* (rollback: the
        rolled-back-to version has captured less, so more log must be
        retained and replayed).

        Write protocol: temp file, fsync, ``os.replace``, then a
        best-effort directory fsync.  A crash at any point leaves either
        the old complete file or the new complete file — a torn
        ``watermark.json`` would otherwise block every future recovery
        with a JSON parse error.  The in-memory cache is updated only
        after the replace, so a failed write never makes this process
        believe a mark it did not persist.
        """
        with self._watermark_lock:
            captured = dict(self._captured_locked())
            captured[topic] = seq
            _write_json_atomic(self.root, _WATERMARK_FILE, {"captured": captured})
            self._captured_cache = captured

    # ------------------------------------------------------------------ #
    # idempotent-producer marks
    # ------------------------------------------------------------------ #
    def producer_marks(self) -> Dict[str, int]:
        """Per-producer dedup high-water marks, max-merged across every
        checkpoint under this root.

        The marks embedded in the frames themselves cover live segments;
        truncation may delete the segments that carried a producer's
        latest mark, so the mark set is checkpointed (same crash-atomic
        protocol as the low-water mark) before segments are reclaimed.
        Two checkpoint locations exist because of write ownership: the
        root's ``sessions.json`` (thread backend, recovery, promotion)
        and one per shard directory (process-backend workers truncate
        their own directories and may not touch the parent's file).
        """
        with self._watermark_lock:
            merged = dict(self._root_marks_locked())
        for shard_dir in self.shard_dirs():
            for key, seq in _read_producer_marks(shard_dir / _SESSIONS_FILE).items():
                if seq > merged.get(key, 0):
                    merged[key] = seq
        return merged

    def _root_marks_locked(self) -> Dict[str, int]:
        if self._producer_marks_cache is None:
            self._producer_marks_cache = _read_producer_marks(
                self.root / _SESSIONS_FILE
            )
        return self._producer_marks_cache

    def record_producer_marks(self, marks: Dict[str, int]) -> None:
        """Max-merge ``marks`` into the root checkpoint (crash-atomic).

        A no-op when nothing advanced, so callers may invoke it on every
        truncation barrier without paying a write.
        """
        if not marks:
            return
        with self._watermark_lock:
            merged = dict(self._root_marks_locked())
            changed = False
            for key, seq in marks.items():
                if int(seq) > merged.get(key, 0):
                    merged[key] = int(seq)
                    changed = True
            if not changed:
                return
            _write_json_atomic(self.root, _SESSIONS_FILE, {"producers": merged})
            self._producer_marks_cache = merged

    # ------------------------------------------------------------------ #
    # maintenance / reading
    # ------------------------------------------------------------------ #
    def truncate(self, floors: Dict[str, int]) -> List[Path]:
        """Truncate every shard directory below the per-topic floors.

        Covers both shards opened for writing in this process and
        *orphaned* shard directories a previous run left behind (a
        recovered runtime may use fewer shards than the crashed one) —
        without reclaiming those, every snapshot-captured record in them
        would survive forever and every future recovery would re-read it.
        Orphan directories have no active segment, so all of their fully
        captured segments are deletable; their stats are scanned once and
        cached.  A segment that fails its CRC scan is kept (recovery is
        the place to surface corruption, not truncation).
        """
        with self._shards_lock:
            shards = dict(self._shards)
        deleted: List[Path] = []
        for wal in shards.values():
            deleted.extend(wal.truncate(floors))
        open_dirs = {wal.directory for wal in shards.values()}
        for shard_dir in self.shard_dirs():
            if shard_dir in open_dirs:
                continue
            deleted.extend(self._truncate_orphan_dir(shard_dir, floors))
        return deleted

    def truncate_orphans(self, floors: Dict[str, int], live_dirs: Sequence[Path]) -> List[Path]:
        """Truncate only shard directories *not* in ``live_dirs``.

        The process-backend parent's truncation entry point: each worker
        process owns (and truncates) its own shard directory, and this
        process has no :class:`ShardWal` open at all — plain
        :meth:`truncate` would classify every live directory as orphaned
        and delete segments out from under the children, including their
        active ones.  Ownership rule: a shard directory is touched by
        exactly one writer — the worker that appends to it — and the
        parent only ever reclaims directories left behind by a previous
        run with a higher shard count.
        """
        live = {Path(d) for d in live_dirs}
        deleted: List[Path] = []
        for shard_dir in self.shard_dirs():
            if shard_dir in live:
                continue
            deleted.extend(self._truncate_orphan_dir(shard_dir, floors))
        return deleted

    def _truncate_orphan_dir(self, shard_dir: Path, floors: Dict[str, int]) -> List[Path]:
        deleted: List[Path] = []
        for path in _segment_paths(shard_dir):
            stats = self._orphan_stats.get(path)
            if stats is None:
                try:
                    _, info = read_segment(path)
                except (WalCorruptionError, OSError):
                    continue
                if info.torn_tail:
                    # A torn tail means un-acknowledged records; keep the
                    # segment so inspection can still see them.
                    continue
                stats = {topic: hi for topic, (_, hi) in info.topic_seqs.items()}
                self._orphan_stats[path] = stats
            if _delete_if_captured(path, stats, floors):
                self._orphan_stats.pop(path, None)
                deleted.append(path)
        return deleted

    def iter_segments(self) -> Iterator[Tuple[Path, List[List[WalRecord]], SegmentInfo]]:
        """Yield ``(path, frames, info)`` for every segment of every shard,
        shard by shard, oldest segment first."""
        for shard_dir in self.shard_dirs():
            for path in _segment_paths(shard_dir):
                frames, info = read_segment(path)
                if not info.torn_tail:
                    # Torn segments are never cached: truncation paths
                    # treat them as non-truncatable evidence, so their
                    # stats must not flow into a ShardWal's closed set.
                    self._scan_cache[path] = (
                        path.stat().st_size,
                        {t: hi for t, (_, hi) in info.topic_seqs.items()},
                    )
                yield path, frames, info

    def replay_records(self) -> Tuple[Dict[str, List[WalRecord]], List[SegmentInfo]]:
        """All logged records grouped per topic and sorted by seq.

        Returns ``(records_by_topic, segment_infos)``.  Torn tails are
        dropped (and flagged on their ``SegmentInfo``); duplicate seqs —
        possible only if a caller re-appended after reading a torn tail —
        keep the first occurrence.
        """
        by_topic: Dict[str, List[WalRecord]] = {}
        infos: List[SegmentInfo] = []
        for _, frames, info in self.iter_segments():
            infos.append(info)
            for frame in frames:
                for record in frame:
                    by_topic.setdefault(record.topic, []).append(record)
        for topic, records in by_topic.items():
            records.sort(key=lambda r: r.seq)
            deduped: List[WalRecord] = []
            last_seq = -1
            for record in records:
                if record.seq != last_seq:
                    deduped.append(record)
                    last_seq = record.seq
            by_topic[topic] = deduped
        return by_topic, infos
