"""Template-based analytics built on parsing results (paper §1 and §6).

The paper lists the advanced capabilities the service layers on top of
parsing: "log anomaly detection (identifying abnormal changes in template
quantities and newly emerged templates), template distribution comparison
across different time periods, and automatic matching against a library of
known failure scenarios".  This module implements all three over the
per-record template ids stored in a :class:`~repro.service.topic.LogTopic`.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.model import Template, template_similarity

__all__ = [
    "TemplateAnomaly",
    "TemplateAnomalyDetector",
    "DistributionComparison",
    "compare_template_distributions",
    "FailureScenario",
    "FailureScenarioLibrary",
]


# --------------------------------------------------------------------------- #
# anomaly detection
# --------------------------------------------------------------------------- #
@dataclass
class TemplateAnomaly:
    """One detected anomaly on a template's behaviour."""

    template_id: int
    kind: str  # "count_spike", "count_drop" or "new_template"
    baseline_count: int
    current_count: int
    score: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.kind}] template {self.template_id}: "
            f"{self.baseline_count} -> {self.current_count} (score {self.score:.2f})"
        )


class TemplateAnomalyDetector:
    """Detects count anomalies and newly emerged templates between windows."""

    def __init__(self, spike_ratio: float = 3.0, drop_ratio: float = 3.0, min_count: int = 5) -> None:
        if spike_ratio <= 1.0 or drop_ratio <= 1.0:
            raise ValueError("spike_ratio and drop_ratio must be > 1")
        self.spike_ratio = spike_ratio
        self.drop_ratio = drop_ratio
        self.min_count = min_count

    def detect(
        self,
        baseline_template_ids: Sequence[int],
        current_template_ids: Sequence[int],
    ) -> List[TemplateAnomaly]:
        """Compare two windows of per-record template ids."""
        baseline = Counter(baseline_template_ids)
        current = Counter(current_template_ids)
        baseline_total = max(sum(baseline.values()), 1)
        current_total = max(sum(current.values()), 1)

        anomalies: List[TemplateAnomaly] = []
        for template_id, count in current.items():
            base_count = baseline.get(template_id, 0)
            if base_count == 0:
                if count >= self.min_count:
                    anomalies.append(
                        TemplateAnomaly(
                            template_id=template_id,
                            kind="new_template",
                            baseline_count=0,
                            current_count=count,
                            score=float(count),
                        )
                    )
                continue
            base_rate = base_count / baseline_total
            current_rate = count / current_total
            if current_rate >= base_rate * self.spike_ratio and count >= self.min_count:
                anomalies.append(
                    TemplateAnomaly(
                        template_id=template_id,
                        kind="count_spike",
                        baseline_count=base_count,
                        current_count=count,
                        score=current_rate / base_rate,
                    )
                )
        for template_id, base_count in baseline.items():
            if base_count < self.min_count:
                continue
            count = current.get(template_id, 0)
            base_rate = base_count / baseline_total
            current_rate = count / current_total
            if current_rate * self.drop_ratio <= base_rate:
                anomalies.append(
                    TemplateAnomaly(
                        template_id=template_id,
                        kind="count_drop",
                        baseline_count=base_count,
                        current_count=count,
                        score=base_rate / max(current_rate, 1e-9),
                    )
                )
        return sorted(anomalies, key=lambda a: -a.score)


# --------------------------------------------------------------------------- #
# distribution comparison
# --------------------------------------------------------------------------- #
@dataclass
class DistributionComparison:
    """Comparison of template distributions across two periods."""

    jensen_shannon_divergence: float
    added_templates: List[int]
    removed_templates: List[int]
    largest_shifts: List[Tuple[int, float]]  # (template_id, rate delta)


def compare_template_distributions(
    period_a_template_ids: Sequence[int],
    period_b_template_ids: Sequence[int],
    top_k: int = 10,
) -> DistributionComparison:
    """Compare the template mix of two time periods (§6 feature)."""
    count_a = Counter(period_a_template_ids)
    count_b = Counter(period_b_template_ids)
    total_a = max(sum(count_a.values()), 1)
    total_b = max(sum(count_b.values()), 1)
    all_ids = set(count_a) | set(count_b)

    divergence = 0.0
    shifts: List[Tuple[int, float]] = []
    for template_id in all_ids:
        p = count_a.get(template_id, 0) / total_a
        q = count_b.get(template_id, 0) / total_b
        m = (p + q) / 2.0
        if p > 0:
            divergence += 0.5 * p * math.log2(p / m)
        if q > 0:
            divergence += 0.5 * q * math.log2(q / m)
        shifts.append((template_id, q - p))

    shifts.sort(key=lambda item: -abs(item[1]))
    return DistributionComparison(
        jensen_shannon_divergence=divergence,
        added_templates=sorted(set(count_b) - set(count_a)),
        removed_templates=sorted(set(count_a) - set(count_b)),
        largest_shifts=shifts[:top_k],
    )


# --------------------------------------------------------------------------- #
# failure scenario library
# --------------------------------------------------------------------------- #
@dataclass
class FailureScenario:
    """A known failure signature: template texts that characterise it."""

    name: str
    description: str
    signature_templates: List[str]
    #: Fraction of signature templates that must be present to report a match.
    min_coverage: float = 0.6


@dataclass
class ScenarioMatch:
    """A failure scenario detected in a window of logs."""

    scenario: FailureScenario
    coverage: float
    matched_templates: List[str]


class FailureScenarioLibrary:
    """Library of known failure scenarios matched against parsed templates."""

    def __init__(self) -> None:
        self._scenarios: List[FailureScenario] = []

    def add(self, scenario: FailureScenario) -> None:
        """Register a failure scenario."""
        if not scenario.signature_templates:
            raise ValueError("a failure scenario needs at least one signature template")
        self._scenarios.append(scenario)

    def __len__(self) -> int:
        return len(self._scenarios)

    def scenarios(self) -> List[FailureScenario]:
        """All registered scenarios."""
        return list(self._scenarios)

    def match(
        self,
        observed_templates: Sequence[Template],
        similarity_threshold: float = 0.75,
    ) -> List[ScenarioMatch]:
        """Match observed templates against every registered scenario.

        A signature template counts as present when some observed template's
        token sequence is sufficiently similar to it.
        """
        observed_token_lists = [template.tokens for template in observed_templates]
        matches: List[ScenarioMatch] = []
        for scenario in self._scenarios:
            matched: List[str] = []
            for signature in scenario.signature_templates:
                signature_tokens = tuple(signature.split())
                hit = any(
                    template_similarity(signature_tokens, tokens) >= similarity_threshold
                    for tokens in observed_token_lists
                )
                if hit:
                    matched.append(signature)
            coverage = len(matched) / len(scenario.signature_templates)
            if coverage >= scenario.min_coverage:
                matches.append(
                    ScenarioMatch(scenario=scenario, coverage=coverage, matched_templates=matched)
                )
        return sorted(matches, key=lambda m: -m.coverage)
