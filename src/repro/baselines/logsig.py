"""LogSig: message signature based clustering.

Re-implementation of Tang et al., *LogSig: Generating System Events from Raw
Textual Logs* (CIKM 2011).  Logs are represented by their set of ordered word
pairs; starting from a random assignment into ``k`` groups, logs are
iteratively moved to the group where their word pairs gain the most
"potential" (pairs shared with many group members).  LogSig requires the
number of event types ``k`` up front — the paper highlights this as its main
practical weakness — so ``k`` defaults to a heuristic estimate.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.base import BaselineParser

__all__ = ["LogSigParser"]


class LogSigParser(BaselineParser):
    """Word-pair signature clustering (LogSig)."""

    name = "LogSig"

    def __init__(self, n_groups: Optional[int] = None, iterations: int = 5, seed: int = 3) -> None:
        self.n_groups = n_groups
        self.iterations = iterations
        self.seed = seed

    def parse(self, lines: Sequence[str]) -> List[int]:
        token_lists = self.preprocess_many(lines)
        token_lists = [tokens if tokens else ["<empty>"] for tokens in token_lists]
        rng = np.random.default_rng(self.seed)

        # Word pairs per unique message (deduplicated for tractability).
        unique: List[Tuple[str, ...]] = []
        index_of: Dict[Tuple[str, ...], int] = {}
        inverse: List[int] = []
        for tokens in token_lists:
            key = tuple(tokens)
            idx = index_of.get(key)
            if idx is None:
                idx = len(unique)
                index_of[key] = idx
                unique.append(key)
            inverse.append(idx)

        pairs: List[Set[Tuple[str, str]]] = [self._word_pairs(tokens) for tokens in unique]
        k = self.n_groups or max(2, int(round(len(unique) ** 0.5)))
        k = min(k, len(unique))
        assignment = [int(rng.integers(k)) for _ in range(len(unique))]

        for _ in range(self.iterations):
            pair_counts: List[Counter] = [Counter() for _ in range(k)]
            group_sizes = [0] * k
            for idx, group in enumerate(assignment):
                pair_counts[group].update(pairs[idx])
                group_sizes[group] += 1
            moved = False
            for idx in range(len(unique)):
                best_group, best_score = assignment[idx], -1.0
                for group in range(k):
                    if group_sizes[group] == 0 and group != assignment[idx]:
                        continue
                    score = self._potential(pairs[idx], pair_counts[group], group_sizes[group])
                    if score > best_score:
                        best_score = score
                        best_group = group
                if best_group != assignment[idx]:
                    moved = True
                    assignment[idx] = best_group
            if not moved:
                break

        return [assignment[idx] for idx in inverse]

    @staticmethod
    def _word_pairs(tokens: Sequence[str]) -> Set[Tuple[str, str]]:
        pairs: Set[Tuple[str, str]] = set()
        for i in range(len(tokens)):
            for j in range(i + 1, min(i + 6, len(tokens))):
                pairs.add((tokens[i], tokens[j]))
        return pairs

    @staticmethod
    def _potential(pairs: Set[Tuple[str, str]], counts: Counter, size: int) -> float:
        if size == 0 or not pairs:
            return 0.0
        return sum((counts[pair] / size) ** 2 for pair in pairs) / len(pairs)
