"""Per-tenant admission control for the front-door server.

Three layers guard the shard queues:

1. **Token-bucket rate limits** (:class:`TokenBucket`) — sustained
   records/second with a burst allowance.  Refusals are transient:
   the client retries after ``retry_after`` seconds.
2. **Lifetime quotas** — total records and total ingested bytes per
   tenant.  Refusals are terminal: retrying cannot help.
3. **Shard backpressure** — checked downstream by
   ``ShardTransport.try_submit_many``; the controller only *refunds*
   a charge when that check rejects a batch, so an unadmitted batch
   never consumes quota.

Admission is all-or-nothing per batch: either every record in the
batch is charged and forwarded, or none is.  That keeps the retry
contract simple — a refused batch can be resent verbatim without
double-charging or partial application.

The controller takes an injectable ``clock`` so tests can verify the
refill math deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.config import ByteBrainConfig

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TenantSpec",
    "TenantUsage",
    "TokenBucket",
]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    The bucket starts full.  ``try_take(n)`` lazily refills from the
    elapsed time since the last call, then either takes ``n`` tokens or
    returns the seconds until ``n`` tokens will be available.  Refill is
    continuous (fractional tokens accumulate), so a 100/s bucket grants
    one token every 10 ms, not 100 on each whole second.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        if burst <= 0.0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0.0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = now

    @property
    def tokens(self) -> float:
        """Current token balance (refilled to now)."""
        self._refill(self._clock())
        return self._tokens

    def try_take(self, n: float) -> float:
        """Take ``n`` tokens if available; else return seconds to wait.

        Returns ``0.0`` on success.  A positive return means nothing
        was taken and the caller should retry after that many seconds.
        Requests larger than ``burst`` can never succeed; they return
        the time to fill the whole bucket so callers still get a finite
        hint, but should split the batch instead.
        """
        self._refill(self._clock())
        if n <= self._tokens:
            self._tokens -= n
            return 0.0
        deficit = min(n, self.burst) - self._tokens
        return max(deficit / self.rate, 1e-9)

    def give_back(self, n: float) -> None:
        """Return ``n`` tokens (a downstream reject refunds its charge)."""
        self._tokens = min(self.burst, self._tokens + n)


@dataclass(frozen=True)
class TenantSpec:
    """Static per-tenant limits; ``None`` inherits the config default."""

    name: str
    rate_limit: Optional[float] = None
    rate_burst: Optional[float] = None
    record_quota: Optional[int] = None
    byte_quota: Optional[int] = None
    #: Shared secret for the HMAC hello challenge/response; ``None``
    #: means the tenant authenticates by name alone (trusted network).
    secret: Optional[str] = None

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"tenant spec needs a non-empty 'name': {data!r}")
        known = {"name", "rate_limit", "rate_burst", "record_quota", "byte_quota",
                 "secret"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown tenant spec keys for {name!r}: {sorted(unknown)}")
        secret = data.get("secret")
        if secret is not None and (not isinstance(secret, str) or not secret):
            raise ValueError(f"tenant {name!r}: 'secret' must be a non-empty string")
        return cls(
            name=name,
            rate_limit=data.get("rate_limit"),
            rate_burst=data.get("rate_burst"),
            record_quota=data.get("record_quota"),
            byte_quota=data.get("byte_quota"),
            secret=secret,
        )


@dataclass
class TenantUsage:
    """Lifetime counters for one tenant (admitted work only)."""

    records: int = 0
    bytes: int = 0
    batches: int = 0
    rate_limited: int = 0
    quota_refused: int = 0
    refunds: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "records": self.records,
            "bytes": self.bytes,
            "batches": self.batches,
            "rate_limited": self.rate_limited,
            "quota_refused": self.quota_refused,
            "refunds": self.refunds,
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of :meth:`AdmissionController.admit`."""

    allowed: bool
    #: ``None`` when allowed; else ``"rate"`` or ``"record_quota"`` /
    #: ``"byte_quota"`` — the server maps these to protocol error codes.
    reason: Optional[str] = None
    #: Seconds until a rate-limited batch is worth retrying.
    retry_after: float = 0.0


class _TenantState:
    """Mutable per-tenant admission state (bucket + quota counters)."""

    def __init__(self, spec: TenantSpec, config: ByteBrainConfig, clock) -> None:
        self.spec = spec
        rate = spec.rate_limit if spec.rate_limit is not None else config.server_rate_limit
        if rate is not None:
            burst = spec.rate_burst if spec.rate_burst is not None else config.server_rate_burst
            if burst is None:
                burst = 2.0 * rate
            self.bucket: Optional[TokenBucket] = TokenBucket(rate, burst, clock)
        else:
            self.bucket = None
        self.record_quota = (
            spec.record_quota if spec.record_quota is not None else config.server_record_quota
        )
        self.byte_quota = (
            spec.byte_quota if spec.byte_quota is not None else config.server_byte_quota
        )
        self.usage = TenantUsage()


class AdmissionController:
    """Charges batches against per-tenant buckets and quotas.

    Thread-safe: the server calls :meth:`admit` from the event loop but
    :meth:`usage` may be read from executor threads, and tests poke it
    from multiple threads.  A single lock suffices — every operation is
    a handful of arithmetic ops.
    """

    def __init__(
        self,
        config: ByteBrainConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._config = config
        self._clock = clock
        self._tenants: Dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    def register(self, spec: TenantSpec) -> None:
        """Register a tenant; re-registering the same name resets it."""
        with self._lock:
            self._tenants[spec.name] = _TenantState(spec, self._config, self._clock)

    def known(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._tenants

    def tenant_names(self) -> list:
        with self._lock:
            return sorted(self._tenants)

    def admit(self, tenant: str, n_records: int, n_bytes: int) -> AdmissionDecision:
        """Charge a batch; all-or-nothing.

        Quotas are checked before the bucket so a quota-dead tenant gets
        the terminal error even when also rate-limited — retrying a
        ``QUOTA_EXCEEDED`` batch is pointless and the client must learn
        that first.
        """
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                raise KeyError(f"unknown tenant {tenant!r}")
            usage = state.usage
            if (
                state.record_quota is not None
                and usage.records + n_records > state.record_quota
            ):
                usage.quota_refused += 1
                return AdmissionDecision(False, "record_quota")
            if state.byte_quota is not None and usage.bytes + n_bytes > state.byte_quota:
                usage.quota_refused += 1
                return AdmissionDecision(False, "byte_quota")
            if state.bucket is not None:
                wait = state.bucket.try_take(float(n_records))
                if wait > 0.0:
                    usage.rate_limited += 1
                    return AdmissionDecision(False, "rate", retry_after=wait)
            usage.records += n_records
            usage.bytes += n_bytes
            usage.batches += 1
            return AdmissionDecision(True)

    def refund(self, tenant: str, n_records: int, n_bytes: int) -> None:
        """Undo an :meth:`admit` charge after a downstream reject.

        Shard backpressure (``ShardBusy``) happens *after* admission but
        *before* anything is logged, so the batch was never applied and
        must not count against the tenant.
        """
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return
            usage = state.usage
            usage.records = max(0, usage.records - n_records)
            usage.bytes = max(0, usage.bytes - n_bytes)
            usage.batches = max(0, usage.batches - 1)
            usage.refunds += 1
            if state.bucket is not None:
                state.bucket.give_back(float(n_records))

    def usage(self, tenant: str) -> TenantUsage:
        """Snapshot of a tenant's lifetime counters."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                raise KeyError(f"unknown tenant {tenant!r}")
            return TenantUsage(**state.usage.to_dict())

    def limits(self, tenant: str) -> Dict[str, Optional[float]]:
        """Effective limits for a tenant (spec merged over config)."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                raise KeyError(f"unknown tenant {tenant!r}")
            return {
                "rate_limit": state.bucket.rate if state.bucket else None,
                "rate_burst": state.bucket.burst if state.bucket else None,
                "record_quota": state.record_quota,
                "byte_quota": state.byte_quota,
            }
