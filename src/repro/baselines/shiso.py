"""SHISO: incremental mining of log formats with a structured tree.

Re-implementation of Mizutani, *Incremental Mining of System Log Format*
(SCC 2013).  Each incoming log is compared against the children of the
current tree node using a similarity over per-token character-class vectors
(letters / digits / symbols); sufficiently similar nodes absorb the log and
refine their format, otherwise a new child is created (children per node are
bounded, overflow descends into the most similar child).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import WILDCARD, BaselineParser

__all__ = ["SHISOParser"]


@dataclass
class _Node:
    group_id: int
    format: List[str]
    children: List["_Node"] = field(default_factory=list)


class SHISOParser(BaselineParser):
    """Incremental structured-tree parser (SHISO)."""

    name = "SHISO"

    def __init__(self, max_children: int = 4, similarity_threshold: float = 0.6) -> None:
        self.max_children = max_children
        self.similarity_threshold = similarity_threshold

    def parse(self, lines: Sequence[str]) -> List[int]:
        roots: List[_Node] = []
        assignments: List[int] = []
        next_id = 0
        cache: Dict[Tuple[str, ...], int] = {}
        for line in lines:
            tokens = self.preprocess(line)
            if not tokens:
                tokens = ["<empty>"]
            key = tuple(tokens)
            cached = cache.get(key)
            if cached is not None:
                assignments.append(cached)
                continue
            node, created = self._search(roots, tokens, next_id)
            if created:
                next_id += 1
            cache[key] = node.group_id
            assignments.append(node.group_id)
        return assignments

    def _search(self, siblings: List[_Node], tokens: List[str], next_id: int) -> Tuple[_Node, bool]:
        best: Optional[_Node] = None
        best_similarity = -1.0
        for node in siblings:
            similarity = self._similarity(node.format, tokens)
            if similarity > best_similarity:
                best_similarity = similarity
                best = node
        if best is not None and best_similarity >= self.similarity_threshold and len(best.format) == len(tokens):
            self._refine(best, tokens)
            return best, False
        if len(siblings) < self.max_children or best is None:
            node = _Node(group_id=next_id, format=list(tokens))
            siblings.append(node)
            return node, True
        return self._search(best.children, tokens, next_id)

    def _similarity(self, format_tokens: Sequence[str], tokens: Sequence[str]) -> float:
        if not format_tokens or not tokens:
            return 0.0
        length = min(len(format_tokens), len(tokens))
        score = 0.0
        for index in range(length):
            score += self._token_similarity(format_tokens[index], tokens[index])
        return score / max(len(format_tokens), len(tokens))

    @staticmethod
    def _token_similarity(a: str, b: str) -> float:
        if a == b:
            return 1.0
        if a == WILDCARD or b == WILDCARD:
            return 0.5
        vector_a = SHISOParser._char_classes(a)
        vector_b = SHISOParser._char_classes(b)
        dot = sum(x * y for x, y in zip(vector_a, vector_b))
        norm = (sum(x * x for x in vector_a) * sum(y * y for y in vector_b)) ** 0.5
        return 0.5 * (dot / norm if norm else 0.0)

    @staticmethod
    def _char_classes(token: str) -> List[float]:
        letters = sum(1 for ch in token if ch.isalpha())
        digits = sum(1 for ch in token if ch.isdigit())
        symbols = len(token) - letters - digits
        return [float(letters), float(digits), float(symbols), float(len(token))]

    @staticmethod
    def _refine(node: _Node, tokens: Sequence[str]) -> None:
        node.format = [
            old if old == new else WILDCARD for old, new in zip(node.format, tokens)
        ]
