"""Package-surface tests: imports, public API exports, example scripts."""

import importlib
import pkgutil
import py_compile
from pathlib import Path

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


class TestImports:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_every_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", MODULES)
    def test_exported_names_exist(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestPublicDocstrings:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_key_classes_have_docstrings(self):
        from repro import ByteBrainConfig, ByteBrainParser, LogParsingService, ParserModel

        for obj in (ByteBrainParser, ByteBrainConfig, LogParsingService, ParserModel):
            assert obj.__doc__ and obj.__doc__.strip()


class TestExamples:
    def test_example_scripts_compile(self):
        examples_dir = Path(__file__).resolve().parent.parent / "examples"
        scripts = sorted(examples_dir.glob("*.py"))
        assert len(scripts) >= 4
        for script in scripts:
            py_compile.compile(str(script), doraise=True)
