"""Unit tests for the evaluation metrics (§5.1.3)."""

import pytest

from repro.evaluation.metrics import (
    f1_grouping_accuracy,
    grouping_accuracy,
    parsing_accuracy,
    throughput,
)


class TestGroupingAccuracy:
    def test_perfect_grouping(self):
        assert grouping_accuracy([0, 0, 1, 1], ["a", "a", "b", "b"]) == 1.0

    def test_label_names_do_not_matter(self):
        assert grouping_accuracy([5, 5, 9], ["x", "x", "y"]) == 1.0

    def test_merging_two_truth_groups_fails_both(self):
        assert grouping_accuracy([0, 0, 0, 0], ["a", "a", "b", "b"]) == 0.0

    def test_splitting_a_truth_group_fails_all_its_logs(self):
        assert grouping_accuracy([0, 1, 2, 2], ["a", "a", "b", "b"]) == pytest.approx(0.5)

    def test_partial_credit_for_untouched_groups(self):
        predicted = [0, 0, 1, 2, 2]
        truth = ["a", "a", "b", "b", "b"]
        # group "a" intact (2 logs correct), group "b" split (3 logs wrong).
        assert grouping_accuracy(predicted, truth) == pytest.approx(0.4)

    def test_empty_inputs(self):
        assert grouping_accuracy([], []) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouping_accuracy([0], [0, 1])


class TestParsingAccuracy:
    def test_pure_groups_count(self):
        assert parsing_accuracy([0, 1, 2, 2], ["a", "a", "b", "b"]) == 1.0

    def test_mixed_group_fails_its_logs(self):
        assert parsing_accuracy([0, 0, 0], ["a", "a", "b"]) == 0.0

    def test_at_least_as_lenient_as_grouping_accuracy(self):
        predicted = [0, 1, 2, 2, 3]
        truth = ["a", "a", "b", "b", "b"]
        assert parsing_accuracy(predicted, truth) >= grouping_accuracy(predicted, truth)


class TestF1GroupingAccuracy:
    def test_perfect(self):
        assert f1_grouping_accuracy([0, 0, 1], ["a", "a", "b"]) == 1.0

    def test_all_singletons_vs_one_group(self):
        assert f1_grouping_accuracy([0, 1, 2], ["a", "a", "a"]) == 0.0

    def test_between_zero_and_one(self):
        score = f1_grouping_accuracy([0, 0, 1, 1, 1], ["a", "a", "a", "b", "b"])
        assert 0.0 < score < 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            f1_grouping_accuracy([0], [0, 1])


class TestThroughput:
    def test_simple_division(self):
        assert throughput(1000, 2.0) == 500.0

    def test_zero_time(self):
        assert throughput(10, 0.0) == float("inf")
        assert throughput(0, 0.0) == 0.0

    def test_negative_logs_rejected(self):
        with pytest.raises(ValueError):
            throughput(-1, 1.0)
