"""Asyncio TCP front door over a :class:`~repro.service.runtime.ShardedRuntime`.

This is the first layer where the *wire contract* lives: tenancy,
admission control, and backpressure mapping.  Everything below it
(sharded runtime, WAL, process workers, incremental analytics) stays
unchanged — the server is a protocol adapter plus a policy gate.

Design points
-------------

**Single-writer ingest.**  All ingest submission happens on the event
loop thread, so the headroom check in
``ShardTransport.try_submit_many`` (and the multi-section variant in
:meth:`LogServer._submit_sections`) is exact, not advisory: between the
check and the enqueue nothing else can fill the queue (shard workers
only *drain* it).  A batch is therefore either fully logged + enqueued
or untouched — which is what makes ``BACKPRESSURE`` and
``RATE_LIMITED`` safely retryable verbatim.

**Ack implies durable.**  ``try_submit_many`` returns only after the
WAL append, so by the time the ``ok`` frame is written the records
survive a SIGKILL of the server process.  Graceful shutdown goes
further: the listener keeps accepting (refusing work with
``SHUTTING_DOWN``) while :meth:`~repro.service.runtime.ShardedRuntime.drain`
runs its fsync barrier, and only then are listeners and connections
closed — an acked record is never lost to a clean stop either.

**Tenancy by namespacing.**  Wire topic ``t`` for tenant ``A`` is the
internal topic ``A::t``.  Tenants cannot name each other's topics (the
separator is forbidden in wire names) and every response is computed
against the connection's tenant only.

**Slow clients are bounded.**  Each connection's transport gets a write
high-water mark (``server_write_buffer_bytes``) and every response
write is awaited under ``server_write_timeout_seconds``; a reader that
stalls past that gets its connection aborted instead of pinning server
memory or wedging the loop.

**Blocking ops leave the loop.**  Queries, analytics, training and
drain run in a thread-pool executor; the event loop only ever does
admission arithmetic, WAL appends, and frame IO.

**Idempotent producer sessions.**  A ``hello`` carrying a
``producer_id`` opens a ``(tenant, producer_id)`` session; each batch
frame then carries a monotone ``batch_seq``.  The server embeds the
producer's dedup high-water mark *inside the WAL frame holding the
batch's records* (``submit_session_batch``), so the mark is durable
exactly when the records are: recovery, and the WAL shipper feeding a
standby, restore dedup state together with the data, and a batch
replayed after an ack was lost — to this node or to a promoted standby
— is acknowledged as a no-op instead of applied twice.

**Roles.**  A server runs as ``primary`` (the default) or ``standby``.
A standby answers ``hello`` with ``role=standby`` plus a redirect hint
and refuses writes with ``NOT_PRIMARY``; ``promote`` (the ``cli
failover`` op, or the auto-promote watchdog after missed heartbeats)
seals the underlying :class:`~repro.service.replication.StandbyRuntime`
and swaps a live runtime in, after which the same tenants and sequences
are served from the replica.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import hmac as hmac_mod
import hashlib
import logging
import os
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import failpoints
from ..core.config import ByteBrainConfig
from ..core.retry import RetryPolicy
from .admission import AdmissionController, TenantSpec
from .runtime import ShardBusy
from . import protocol
from .transport import BatchSection, decode_record_batch

__all__ = ["LogServer", "TENANT_SEPARATOR", "qualify_topic", "build_tenant_specs"]

logger = logging.getLogger(__name__)

#: Joins tenant and wire topic into the internal topic name.  Forbidden
#: inside wire topic names so tenants cannot forge cross-tenant paths.
TENANT_SEPARATOR = "::"


def qualify_topic(tenant: str, topic: str) -> str:
    """Map a tenant's wire topic name to the internal topic name."""
    return f"{tenant}{TENANT_SEPARATOR}{topic}"


def build_tenant_specs(data: Sequence[dict]) -> List[Tuple[TenantSpec, List[str]]]:
    """Parse tenant declarations (``cli serve --tenants`` JSON).

    Each entry is a :class:`TenantSpec` dict plus an optional
    ``topics`` list naming the wire topics to pre-create.  Pre-declared
    topics skip the per-topic ``create_topic`` roundtrip at runtime
    (both backends also accept the op live — the process backend
    registers new topics with its shard workers over the control
    channel).
    """
    specs: List[Tuple[TenantSpec, List[str]]] = []
    for entry in data:
        entry = dict(entry)
        topics = entry.pop("topics", [])
        if not isinstance(topics, list) or not all(isinstance(t, str) for t in topics):
            raise ValueError(f"tenant 'topics' must be a list of strings: {entry!r}")
        for topic in topics:
            _check_wire_topic(topic)
        specs.append((TenantSpec.from_dict(entry), list(topics)))
    names = [spec.name for spec, _ in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in spec: {names}")
    return specs


def _check_wire_topic(topic: str) -> None:
    if not topic or TENANT_SEPARATOR in topic:
        raise ValueError(
            f"invalid wire topic name {topic!r}: must be non-empty and must not "
            f"contain {TENANT_SEPARATOR!r}"
        )


class _RequestError(Exception):
    """Internal: abort request handling with a protocol error response."""

    def __init__(self, code: str, message: str, close: bool = False,
                 **extra: object) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.close = close
        self.extra = extra


class _ConnState:
    """Per-connection handshake + session state.

    ``tenant`` is set only once the connection is authenticated.  When a
    tenant declares a shared secret, ``hello`` stores the outstanding
    challenge here and authentication completes on the ``auth`` frame;
    ``producer_key`` (``tenant::producer_id``) marks an idempotent
    producer session — batch frames on such a connection must carry a
    ``batch_seq`` and are deduplicated against the server's mark table.
    """

    __slots__ = ("tenant", "producer_key", "challenge",
                 "pending_tenant", "pending_producer")

    def __init__(self) -> None:
        self.tenant: Optional[str] = None
        self.producer_key: Optional[str] = None
        self.challenge: Optional[str] = None
        self.pending_tenant: Optional[str] = None
        self.pending_producer: Optional[str] = None


class LogServer:
    """The front-door server: one instance per process, many connections.

    ``runtime`` is any :class:`~repro.service.runtime.ShardTransport`
    (thread or process backend) whose service already holds the
    tenants' pre-created topics.  The server owns no storage — stopping
    it leaves service + runtime usable (and :meth:`stop` has already
    drained, so everything acked is on disk).

    With ``role="standby"`` the server answers ``hello``/``ping``/
    ``stats`` but refuses all data-plane work with ``NOT_PRIMARY`` (the
    response carries ``primary_hint`` so clients can redirect).
    ``runtime``/``service`` may be ``None`` until ``promote_hook`` — a
    blocking callable returning ``(service, runtime)``, typically
    wrapping :meth:`~repro.service.replication.StandbyRuntime.promote`
    — installs them via the ``promote`` op, ``promote()``, or the
    auto-promote watchdog (``auto_promote=True`` + ``primary_hint``),
    which probes the primary with ``ping`` heartbeats every
    ``ha_heartbeat_interval`` seconds and promotes after
    ``ha_heartbeat_misses`` consecutive missed deadlines.
    """

    def __init__(
        self,
        service,
        runtime,
        tenants: Sequence[Tuple[TenantSpec, List[str]]],
        config: Optional[ByteBrainConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        role: str = "primary",
        primary_hint: Optional[str] = None,
        promote_hook: Optional[Callable[[], Tuple[object, object]]] = None,
        auto_promote: bool = False,
    ) -> None:
        if role not in ("primary", "standby"):
            raise ValueError(f"role must be 'primary' or 'standby', not {role!r}")
        if role == "primary" and runtime is None:
            raise ValueError("a primary server needs a runtime")
        self.service = service
        self.runtime = runtime
        self.config = config or getattr(service, "config", None) or ByteBrainConfig()
        self.host = host
        self.port = port  # replaced with the bound port after start()
        self.role = role
        self.primary_hint = primary_hint
        self._promote_hook = promote_hook
        self._auto_promote = auto_promote
        self.admission = AdmissionController(self.config)
        #: wire topic names per tenant (authorisation set for queries).
        self._topics: Dict[str, set] = {}
        #: shared secrets for tenants that require the HMAC handshake.
        self._secrets: Dict[str, str] = {}
        for spec, topics in tenants:
            self.admission.register(spec)
            self._topics[spec.name] = set(topics)
            if spec.secret is not None:
                self._secrets[spec.name] = spec.secret
        #: idempotent-producer dedup high-water marks, seeded from the
        #: runtime (which read them from the WAL at open/recovery time).
        self._producer_marks: Dict[str, int] = (
            dict(runtime.producer_marks()) if runtime is not None else {}
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._closing = False
        self._stopped = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._promote_lock = threading.Lock()
        self._watchdog_task: Optional[asyncio.Task] = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="frontdoor"
        )
        # Ingest counters the bench and smoke harnesses assert on: every
        # refused batch must be *visible* — silent drops are a bug class
        # this layer exists to prevent.
        self.counters = {
            "accepted_batches": 0,
            "accepted_records": 0,
            "backpressure": 0,
            "rate_limited": 0,
            "quota_refused": 0,
            "deduped_batches": 0,
            "auth_failures": 0,
            "not_primary": 0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind and start accepting connections; sets :attr:`port`."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("front door listening on %s:%d (role=%s)",
                    self.host, self.port, self.role)
        if self.role == "standby" and self._auto_promote and self.primary_hint:
            self._watchdog_task = self._loop.create_task(self._heartbeat_watchdog())

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`stop` (or the ``shutdown`` op) completes."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: refuse new work, drain, then close.

        Order matters (and is tested): the closing flag flips first so
        no new records are admitted, then ``runtime.drain()`` runs its
        fsync barrier *before* listeners and connections close — every
        record acked over the wire is durable by the time the socket
        goes away.
        """
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
        if self.runtime is not None:
            try:
                await self._run_blocking(self.runtime.drain)
            except Exception:
                logger.exception("drain during shutdown failed")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        self._executor.shutdown(wait=False)
        self._stopped.set()

    async def _run_blocking(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #

    async def promote(self, reason: str = "operator") -> bool:
        """Promote a standby to primary; idempotent, returns True if the
        role changed.

        The promote hook (shipper stop + catch-up + WAL seal + runtime
        construction) blocks for as long as replay takes, so it runs in
        the executor; the role flips only after the new runtime is live,
        and its recovered producer marks are merged into the dedup table
        before any client can reach the ingest path again.
        """
        if self.role == "primary":
            return False
        if self._promote_hook is None:
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                "this standby has no promote hook wired")

        def _do_promote():
            with self._promote_lock:
                if self.role == "primary":
                    return False
                service, runtime = self._promote_hook()
                self.service = service
                self.runtime = runtime
                for key, seq in runtime.producer_marks().items():
                    if seq > self._producer_marks.get(key, 0):
                        self._producer_marks[key] = seq
                # Publish last: connections observe role=="standby" until
                # the runtime above is fully in place.
                self.role = "primary"
                return True

        promoted = await self._run_blocking(_do_promote)
        if promoted:
            logger.warning("promoted standby to primary (reason=%s)", reason)
            if self._watchdog_task is not None:
                self._watchdog_task.cancel()
                self._watchdog_task = None
        return promoted

    async def _heartbeat_watchdog(self) -> None:
        """Probe the primary with ``ping`` frames; promote when it misses
        ``ha_heartbeat_misses`` consecutive deadlines.

        The missed-deadline policy is a :class:`~repro.core.retry.RetryPolicy`
        with a flat backoff of one heartbeat interval: each failed probe
        consumes an attempt, a successful probe resets the budget, and
        policy exhaustion *is* the failure-detector verdict.
        """
        interval = self.config.ha_heartbeat_interval
        # max_attempts counts *retries*: misses - 1 retries means the
        # policy exhausts on the configured Nth consecutive miss.
        policy = RetryPolicy(
            max_attempts=max(0, self.config.ha_heartbeat_misses - 1),
            base_delay=interval, max_delay=interval,
            multiplier=1.0, jitter=0.0,
        )
        state = policy.start()
        try:
            while self.role == "standby":
                alive = await self._probe_primary(timeout=interval * 2)
                if alive:
                    state.reset()
                    await asyncio.sleep(interval)
                    continue
                delay = state.record_failure()
                if delay is None:
                    try:
                        await self.promote(reason="heartbeat")
                    except Exception:
                        logger.exception("auto-promote failed; retrying")
                        state = policy.start()
                        await asyncio.sleep(interval)
                    continue
                await asyncio.sleep(delay)
        except asyncio.CancelledError:
            pass

    async def _probe_primary(self, timeout: float) -> bool:
        """One heartbeat: connect to the primary and exchange a ``ping``
        (allowed pre-``hello`` exactly so this probe stays cheap)."""
        host, _, port = (self.primary_hint or "").rpartition(":")
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, int(port)), timeout=timeout
            )
        except (OSError, ValueError, asyncio.TimeoutError):
            return False
        try:
            writer.write(protocol.encode_json_frame({"id": 0, "op": "ping"}))
            await asyncio.wait_for(writer.drain(), timeout=timeout)
            kind, body = await asyncio.wait_for(
                protocol.read_frame(reader, self.config.server_max_frame_bytes),
                timeout=timeout,
            )
            if kind != protocol.KIND_JSON:
                return False
            reply = protocol.decode_json_body(body)
            return bool(reply.get("ok"))
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError,
                protocol.FrameError):
            return False
        finally:
            writer.close()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        writer.transport.set_write_buffer_limits(high=self.config.server_write_buffer_bytes)
        self._connections.add(writer)
        state = _ConnState()
        try:
            while True:
                try:
                    kind, body = await protocol.read_frame(
                        reader, self.config.server_max_frame_bytes
                    )
                except protocol.FrameError as exc:
                    # The stream position is lost (we did not consume the
                    # oversized/unknown frame), so answer loudly and close.
                    code = (
                        protocol.ERR_FRAME_TOO_LARGE
                        if "exceeds" in str(exc)
                        else protocol.ERR_BAD_REQUEST
                    )
                    await self._send(writer, {"id": None, "ok": False, "error": code,
                                              "message": str(exc)})
                    return
                except asyncio.IncompleteReadError:
                    logger.warning("connection truncated mid-frame (tenant=%s)",
                                   state.tenant)
                    return
                if kind == -1:
                    return  # clean EOF between frames
                response, close = await self._dispatch(kind, body, state)
                if response is not None:
                    if kind == protocol.KIND_BATCH:
                        # Chaos-drill hook: drop the ack *after* the batch
                        # was durably applied, exactly the window where an
                        # idempotent replay must be deduplicated.
                        try:
                            failpoints.hit("server.ack_lost")
                        except failpoints.FailpointError:
                            logger.warning("failpoint server.ack_lost: "
                                           "aborting connection before ack")
                            writer.transport.abort()
                            return
                    await self._send(writer, response)
                if close:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        """Write one JSON response frame, bounding slow readers."""
        writer.write(protocol.encode_json_frame(payload))
        try:
            await asyncio.wait_for(
                writer.drain(), timeout=self.config.server_write_timeout_seconds
            )
        except asyncio.TimeoutError:
            logger.warning("slow client: write stalled > %.1fs, aborting connection",
                           self.config.server_write_timeout_seconds)
            writer.transport.abort()
            raise ConnectionResetError("slow client aborted")

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    #: Ops a standby answers; everything else gets ``NOT_PRIMARY``.
    _STANDBY_OPS = frozenset({"ping", "stats", "promote", "shutdown"})

    async def _dispatch(
        self, kind: int, body: bytes, state: _ConnState
    ) -> Tuple[Optional[dict], bool]:
        """Handle one frame; returns (response, close_connection)."""
        request_id: object = None
        try:
            if kind == protocol.KIND_BATCH:
                header, payload = protocol.split_batch_body(body)
                request_id = header.get("id")
                if state.tenant is None:
                    raise _RequestError(protocol.ERR_UNAUTHENTICATED,
                                        "send a 'hello' frame first")
                if self.role != "primary":
                    self.counters["not_primary"] += 1
                    raise _RequestError(protocol.ERR_NOT_PRIMARY,
                                        "this node is a standby replica",
                                        primary=self.primary_hint)
                if self._closing:
                    raise _RequestError(protocol.ERR_SHUTTING_DOWN,
                                        "server is draining")
                result = await self._handle_batch_ingest(state, header, payload)
                return {"id": request_id, "ok": True, **result}, False

            request = protocol.decode_json_body(body)
            request_id = request.get("id")
            op = request.get("op")
            if not isinstance(op, str):
                raise _RequestError(protocol.ERR_BAD_REQUEST, "missing 'op'")
            if op == "hello":
                result = self._handle_hello(state, request)
                return {"id": request_id, "ok": True, **result}, False
            if op == "auth":
                result = self._handle_auth(state, request)
                return {"id": request_id, "ok": True, **result}, False
            if op == "ping":
                # Pre-hello on purpose: the standby's failure detector and
                # liveness probes must not need tenant credentials.
                return {"id": request_id, "ok": True, "pong": True,
                        "closing": self._closing, "role": self.role}, False
            if state.tenant is None:
                raise _RequestError(protocol.ERR_UNAUTHENTICATED,
                                    "send a 'hello' frame first")
            if op == "promote":
                promoted = await self.promote(reason="operator")
                return {"id": request_id, "ok": True, "promoted": promoted,
                        "role": self.role}, False
            if self.role != "primary" and op not in self._STANDBY_OPS:
                self.counters["not_primary"] += 1
                raise _RequestError(protocol.ERR_NOT_PRIMARY,
                                    "this node is a standby replica",
                                    primary=self.primary_hint)
            if op == "shutdown":
                # Ack first so the client can observe an orderly goodbye,
                # then stop (drain barrier included) in the background.
                asyncio.get_running_loop().create_task(self.stop())
                return {"id": request_id, "ok": True, "stopping": True}, False
            if self._closing and op not in ("stats", "ping"):
                raise _RequestError(protocol.ERR_SHUTTING_DOWN, "server is draining")
            handler = self._OPS.get(op)
            if handler is None:
                raise _RequestError(protocol.ERR_BAD_REQUEST, f"unknown op {op!r}")
            result = await handler(self, state.tenant, request)
            return {"id": request_id, "ok": True, **result}, False
        except protocol.FrameError as exc:
            return (
                {"id": request_id, "ok": False, "error": protocol.ERR_BAD_REQUEST,
                 "message": str(exc)},
                False,
            )
        except _RequestError as exc:
            return (
                {"id": request_id, "ok": False, "error": exc.code,
                 "message": exc.message, **exc.extra},
                exc.close,
            )
        except Exception as exc:  # noqa: BLE001 — protocol boundary
            logger.exception("internal error handling op")
            return (
                {"id": request_id, "ok": False, "error": protocol.ERR_INTERNAL,
                 "message": f"{type(exc).__name__}: {exc}"},
                False,
            )

    # ------------------------------------------------------------------ #
    # Handshake + ingest
    # ------------------------------------------------------------------ #

    def _handle_hello(self, state: _ConnState, request: dict) -> dict:
        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not self.admission.known(tenant):
            raise _RequestError(protocol.ERR_UNAUTHENTICATED,
                                f"unknown tenant {tenant!r}")
        producer_id = request.get("producer_id")
        if producer_id is not None and (
            not isinstance(producer_id, str)
            or not producer_id
            or TENANT_SEPARATOR in producer_id
        ):
            raise _RequestError(
                protocol.ERR_BAD_REQUEST,
                f"invalid producer_id {producer_id!r}: must be a non-empty "
                f"string without {TENANT_SEPARATOR!r}",
            )
        secret = self._secrets.get(tenant)
        if secret is not None:
            # Challenge/response: the connection stays unauthenticated
            # until the 'auth' frame returns a valid HMAC of this nonce.
            state.challenge = os.urandom(16).hex()
            state.pending_tenant = tenant
            state.pending_producer = producer_id
            return {"auth": "challenge", "challenge": state.challenge,
                    "role": self.role, "primary": self.primary_hint}
        return self._establish(state, tenant, producer_id)

    def _handle_auth(self, state: _ConnState, request: dict) -> dict:
        """Complete the HMAC handshake: ``mac = HMAC-SHA256(secret, challenge)``.

        Any failure is terminal (``AUTH`` + connection close): retrying
        with the same wrong secret cannot succeed, and a client that
        skipped ``hello`` has no challenge to answer.
        """
        if state.challenge is None or state.pending_tenant is None:
            self.counters["auth_failures"] += 1
            raise _RequestError(protocol.ERR_AUTH,
                                "no outstanding challenge (send 'hello' first)",
                                close=True)
        mac = request.get("mac")
        secret = self._secrets[state.pending_tenant]
        expected = hmac_mod.new(
            secret.encode("utf-8"), state.challenge.encode("ascii"), hashlib.sha256
        ).hexdigest()
        if not isinstance(mac, str) or not hmac_mod.compare_digest(expected, mac):
            self.counters["auth_failures"] += 1
            state.challenge = None
            raise _RequestError(protocol.ERR_AUTH,
                                f"bad credentials for tenant "
                                f"{state.pending_tenant!r}", close=True)
        tenant, producer_id = state.pending_tenant, state.pending_producer
        state.challenge = None
        state.pending_tenant = None
        state.pending_producer = None
        return self._establish(state, tenant, producer_id)

    def _establish(self, state: _ConnState, tenant: str,
                   producer_id: Optional[str]) -> dict:
        state.tenant = tenant
        result = {
            "tenant": tenant,
            "role": self.role,
            "primary": self.primary_hint,
            "topics": sorted(self._topics.get(tenant, ())),
            "limits": self.admission.limits(tenant),
            # Largest batch a single frame may carry: a batch bigger than
            # the shard queue can never be admitted atomically, so the
            # client splits to this bound.
            "max_batch_records": (
                self.runtime.queue_capacity if self.runtime is not None else 0
            ),
            "max_frame_bytes": self.config.server_max_frame_bytes,
        }
        if producer_id is not None:
            state.producer_key = qualify_topic(tenant, producer_id)
            # The producer resumes after the acked high-water mark; a
            # reconnecting client replays everything above this.
            result["producer_seq"] = self._producer_marks.get(state.producer_key, 0)
        return result

    def _wire_topic(self, tenant: str, topic: object) -> str:
        if not isinstance(topic, str):
            raise _RequestError(protocol.ERR_BAD_REQUEST, "missing 'topic'")
        try:
            _check_wire_topic(topic)
        except ValueError as exc:
            raise _RequestError(protocol.ERR_BAD_REQUEST, str(exc)) from exc
        if topic not in self._topics.get(tenant, ()):
            raise _RequestError(protocol.ERR_UNKNOWN_TOPIC,
                                f"no topic {topic!r} for tenant {tenant!r}")
        return qualify_topic(tenant, topic)

    async def _handle_batch_ingest(self, state: _ConnState, header: dict,
                                   payload: bytes) -> dict:
        tenant = state.tenant
        try:
            sections = decode_record_batch(payload)
        except Exception as exc:
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                f"undecodable batch payload: {exc}") from exc
        if not sections:
            raise _RequestError(protocol.ERR_BAD_REQUEST, "empty batch frame")
        qualified: List[Tuple[str, BatchSection]] = []
        for section in sections:
            if len(section.raws) != len(section.timestamps):
                raise _RequestError(protocol.ERR_BAD_REQUEST,
                                    "timestamps/records length mismatch")
            qualified.append((self._wire_topic(tenant, section.topic), section))
        n_records = sum(len(s.raws) for _, s in qualified)
        n_bytes = sum(len(raw.encode("utf-8")) for _, s in qualified for raw in s.raws)
        if n_records == 0:
            raise _RequestError(protocol.ERR_BAD_REQUEST, "empty batch frame")
        if state.producer_key is not None:
            return await self._handle_session_batch(
                state, header, qualified, n_records, n_bytes
            )
        if "batch_seq" in header:
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                "batch_seq requires a producer_id session "
                                "(send it in 'hello')")
        self._admit(tenant, n_records, n_bytes)
        try:
            self._submit_sections(qualified)
        except ShardBusy as exc:
            self.admission.refund(tenant, n_records, n_bytes)
            self.counters["backpressure"] += 1
            raise _RequestError(
                protocol.ERR_BACKPRESSURE, str(exc), retry_after=exc.retry_after
            ) from exc
        self.counters["accepted_batches"] += 1
        self.counters["accepted_records"] += n_records
        return {"accepted": n_records}

    async def _handle_session_batch(
        self,
        state: _ConnState,
        header: dict,
        qualified: List[Tuple[str, BatchSection]],
        n_records: int,
        n_bytes: int,
    ) -> dict:
        """Idempotent ingest: dedup by ``batch_seq``, apply atomically.

        The contract that makes exactly-once possible (and that the
        client upholds): a sessioned wire batch is **one topic, one
        monotone ``batch_seq``, one outstanding at a time**.  Single-
        topic means the records and the producer mark land in *one* WAL
        frame, so frame-CRC atomicity makes "mark durable" equivalent to
        "all its records durable" — there is no window where a replay
        could be half-applied or half-deduplicated.  Sequential sending
        means the mark table needs only a high-water mark, not a window.

        A ``batch_seq`` at or below the mark was fully applied by a
        previous delivery (possibly on the node this one was promoted
        from) and is acked as a no-op without touching admission — the
        tenant already paid for it once.  The submit itself runs in the
        executor: on the process backend it blocks on the shard worker's
        durability barrier, which must not stall the event loop.
        """
        tenant = state.tenant
        key = state.producer_key
        batch_seq = header.get("batch_seq")
        if not isinstance(batch_seq, int) or batch_seq < 1:
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                "a producer session batch needs an integer "
                                "batch_seq >= 1")
        if len(qualified) != 1:
            raise _RequestError(
                protocol.ERR_BAD_REQUEST,
                "a producer session batch must carry exactly one topic "
                "section (split per topic client-side)",
            )
        mark = self._producer_marks.get(key, 0)
        if batch_seq <= mark:
            self.counters["deduped_batches"] += 1
            return {"accepted": 0, "deduped": True,
                    "batch_seq": batch_seq, "producer_seq": mark}
        if batch_seq > mark + 1:
            raise _RequestError(
                protocol.ERR_BAD_REQUEST,
                f"batch_seq gap: expected {mark + 1}, got {batch_seq} "
                f"(sessions are sequential with one batch outstanding)",
            )
        topic, section = qualified[0]
        self._admit(tenant, n_records, n_bytes)
        # Exact headroom gate (single-writer: only the loop enqueues).
        shard = self.runtime.shard_of(topic)
        capacity = self.runtime.queue_capacity
        if n_records > capacity:
            self.admission.refund(tenant, n_records, n_bytes)
            raise _RequestError(
                protocol.ERR_BAD_REQUEST,
                f"batch routes {n_records} records to shard {shard}, above "
                f"the queue capacity ({capacity}); split the batch",
            )
        depth = self.runtime.shard_load(shard)
        if depth + n_records > capacity:
            self.admission.refund(tenant, n_records, n_bytes)
            self.counters["backpressure"] += 1
            busy = ShardBusy(shard, depth, capacity, self.runtime.max_batch_delay)
            raise _RequestError(
                protocol.ERR_BACKPRESSURE, str(busy), retry_after=busy.retry_after
            )
        try:
            await self._run_blocking(
                lambda: self.runtime.submit_session_batch(
                    topic,
                    list(section.raws),
                    [float(t) for t in section.timestamps],
                    key,
                    batch_seq,
                    timeout=self.config.server_session_barrier_seconds,
                )
            )
        except ShardBusy as exc:
            self.admission.refund(tenant, n_records, n_bytes)
            self.counters["backpressure"] += 1
            raise _RequestError(
                protocol.ERR_BACKPRESSURE, str(exc), retry_after=exc.retry_after
            ) from exc
        except TimeoutError as exc:
            # Durability unknown (the records may yet land): surface a
            # non-retryable-in-place error; the client's reconnect path
            # replays the batch and dedup resolves the ambiguity.
            raise _RequestError(
                protocol.ERR_INTERNAL,
                f"durability barrier timed out for batch_seq {batch_seq}: {exc}",
            ) from exc
        if batch_seq > self._producer_marks.get(key, 0):
            self._producer_marks[key] = batch_seq
        self.counters["accepted_batches"] += 1
        self.counters["accepted_records"] += n_records
        return {"accepted": n_records, "batch_seq": batch_seq,
                "producer_seq": batch_seq}

    async def _op_ingest(self, tenant: str, request: dict) -> dict:
        """JSON ingest path (small batches; the batch frame is the fast path)."""
        topic = self._wire_topic(tenant, request.get("topic"))
        records = request.get("records")
        if not isinstance(records, list) or not records or not all(
            isinstance(r, str) for r in records
        ):
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                "'records' must be a non-empty list of strings")
        timestamps = request.get("timestamps")
        if timestamps is None:
            timestamp = request.get("timestamp")
            if not isinstance(timestamp, (int, float)):
                raise _RequestError(protocol.ERR_BAD_REQUEST,
                                    "provide 'timestamp' or 'timestamps'")
            timestamps = [float(timestamp)] * len(records)
        elif (
            not isinstance(timestamps, list)
            or len(timestamps) != len(records)
            or not all(isinstance(t, (int, float)) for t in timestamps)
        ):
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                "'timestamps' must be numbers, one per record")
        section = BatchSection(
            topic=topic, first_seq=0,
            timestamps=[float(t) for t in timestamps], raws=list(records),
        )
        n_bytes = sum(len(r.encode("utf-8")) for r in records)
        self._admit(tenant, len(records), n_bytes)
        try:
            self._submit_sections([(topic, section)])
        except ShardBusy as exc:
            self.admission.refund(tenant, len(records), n_bytes)
            self.counters["backpressure"] += 1
            raise _RequestError(
                protocol.ERR_BACKPRESSURE, str(exc), retry_after=exc.retry_after
            ) from exc
        self.counters["accepted_batches"] += 1
        self.counters["accepted_records"] += len(records)
        return {"accepted": len(records)}

    def _admit(self, tenant: str, n_records: int, n_bytes: int) -> None:
        decision = self.admission.admit(tenant, n_records, n_bytes)
        if decision.allowed:
            return
        if decision.reason == "rate":
            self.counters["rate_limited"] += 1
            raise _RequestError(
                protocol.ERR_RATE_LIMITED,
                f"rate limit exceeded for tenant {tenant!r}",
                retry_after=decision.retry_after,
            )
        self.counters["quota_refused"] += 1
        raise _RequestError(
            protocol.ERR_QUOTA_EXCEEDED,
            f"{decision.reason} exhausted for tenant {tenant!r}",
        )

    def _submit_sections(self, qualified: Sequence[Tuple[str, BatchSection]]) -> None:
        """Submit every section or nothing (single-writer headroom check).

        A frame may span topics on different shards; ``try_submit_many``
        alone would leave earlier sections enqueued when a later shard is
        full.  Instead the headroom of *every* involved shard is checked
        up front — exact because only this event-loop thread enqueues and
        shard workers strictly drain — and only then are the sections
        submitted (split into runs of equal timestamps, since the WAL
        frames one timestamp per batch).
        """
        needed: Dict[int, int] = {}
        for topic, section in qualified:
            shard = self.runtime.shard_of(topic)
            needed[shard] = needed.get(shard, 0) + len(section.raws)
        capacity = self.runtime.queue_capacity
        for shard, count in needed.items():
            if count > capacity:
                raise _RequestError(
                    protocol.ERR_BAD_REQUEST,
                    f"batch routes {count} records to shard {shard}, above the "
                    f"queue capacity ({capacity}); split the batch",
                )
            depth = self.runtime.shard_load(shard)
            if depth + count > capacity:
                raise ShardBusy(shard, depth, capacity, self.runtime.max_batch_delay)
        for topic, section in qualified:
            start = 0
            timestamps = section.timestamps
            for i in range(1, len(timestamps) + 1):
                if i == len(timestamps) or timestamps[i] != timestamps[start]:
                    self.runtime.submit_many(
                        topic, section.raws[start:i], timestamps[start]
                    )
                    start = i

    # ------------------------------------------------------------------ #
    # Query / analytics / model ops (blocking → executor)
    # ------------------------------------------------------------------ #

    async def _op_query(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        threshold = request.get("threshold", 1.0)
        text_filter = request.get("text_filter")
        groups = await self._run_blocking(
            lambda: self.service.query_templates(topic, float(threshold), text_filter)
        )
        return {
            "groups": [
                {
                    "display_text": g.display_text,
                    "template_ids": list(g.template_ids),
                    "count": g.count,
                    "saturation": g.saturation,
                }
                for g in groups
            ]
        }

    async def _op_analytics(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        kind = request.get("kind")
        engine = request.get("engine")

        def run():
            if kind == "top_k":
                pairs = self.service.top_k_templates(
                    topic, float(request["start_time"]), float(request["end_time"]),
                    k=int(request.get("k", 10)), engine=engine,
                )
                return {"top_k": [[tid, count] for tid, count in pairs]}
            if kind == "anomaly_score":
                baseline = request.get("baseline_window")
                score = self.service.anomaly_score(
                    topic, tuple(request["window"]),
                    baseline_window=tuple(baseline) if baseline else None,
                    engine=engine,
                )
                return {"score": score}
            if kind == "new_template_bursts":
                bursts = self.service.new_template_bursts(
                    topic, tuple(request["window"]),
                    min_count=request.get("min_count"), engine=engine,
                )
                return {"bursts": [list(b) for b in bursts]}
            if kind == "drill_down":
                records = self.service.drill_down(
                    topic, float(request["start_time"]), float(request["end_time"]),
                    template_id=request.get("template_id"),
                    limit=int(request.get("limit", 100)), engine=engine,
                )
                return {
                    "records": [
                        {
                            "record_id": r.record_id,
                            "timestamp": r.timestamp,
                            "raw": r.raw,
                            "template_id": r.template_id,
                        }
                        for r in records
                    ]
                }
            if kind == "detect_anomalies":
                anomalies = self.service.detect_anomalies(
                    topic, tuple(request["baseline_window"]),
                    tuple(request["current_window"]), engine=engine,
                )
                return {"anomalies": [dataclasses.asdict(a) for a in anomalies]}
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                f"unknown analytics kind {kind!r}")

        try:
            return await self._run_blocking(run)
        except KeyError as exc:
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                f"missing analytics parameter {exc}") from exc

    async def _op_train(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        now = request.get("now")
        if not isinstance(now, (int, float)):
            raise _RequestError(protocol.ERR_BAD_REQUEST, "missing 'now'")
        force_full = bool(request.get("force_full", False))
        await self._run_blocking(
            lambda: self.service.train_now(topic, float(now), force_full=force_full)
        )
        return {"trained": True}

    async def _op_model_versions(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        versions = await self._run_blocking(lambda: self.service.model_versions(topic))
        return {"versions": [v.to_dict() for v in versions]}

    async def _op_rollback_model(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        version = await self._run_blocking(lambda: self.service.rollback_model(topic))
        return {"restored": version.to_dict()}

    async def _op_topic_stats(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        stats = await self._run_blocking(lambda: self.service.topic_stats(topic))
        return {"stats": stats}

    async def _op_stats(self, tenant: str, request: dict) -> dict:
        usage = self.admission.usage(tenant)
        return {
            "tenant": tenant,
            "usage": usage.to_dict(),
            "limits": self.admission.limits(tenant),
            "server": dict(self.counters),
        }

    async def _op_drain(self, tenant: str, request: dict) -> dict:
        await self._run_blocking(self.runtime.drain)
        return {"drained": True}

    async def _op_create_topic(self, tenant: str, request: dict) -> dict:
        topic = request.get("topic")
        if not isinstance(topic, str):
            raise _RequestError(protocol.ERR_BAD_REQUEST, "missing 'topic'")
        try:
            _check_wire_topic(topic)
        except ValueError as exc:
            raise _RequestError(protocol.ERR_BAD_REQUEST, str(exc)) from exc
        if topic not in self._topics.setdefault(tenant, set()):
            # runtime.create_topic registers the topic with the backend
            # itself: on the process backend that is a control roundtrip
            # to every shard worker (blocking → executor), on the thread
            # backend a plain service.create_topic.
            await self._run_blocking(
                lambda: self.runtime.create_topic(qualify_topic(tenant, topic))
            )
            self._topics[tenant].add(topic)
        return {"topics": sorted(self._topics[tenant])}

    async def _op_ping(self, tenant: str, request: dict) -> dict:
        return {"pong": True, "closing": self._closing}

    _OPS = {
        "ingest": _op_ingest,
        "query": _op_query,
        "analytics": _op_analytics,
        "train": _op_train,
        "model_versions": _op_model_versions,
        "rollback_model": _op_rollback_model,
        "topic_stats": _op_topic_stats,
        "stats": _op_stats,
        "drain": _op_drain,
        "create_topic": _op_create_topic,
        "ping": _op_ping,
    }


def run_server_in_thread(server: LogServer):
    """Start ``server`` on a daemon event-loop thread (tests + bench).

    Returns ``(thread, stop)`` where ``stop()`` requests graceful
    shutdown and joins the thread.  The server's port is bound before
    this returns.
    """
    started = threading.Event()
    loop_holder: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder["loop"] = loop

        async def main() -> None:
            await server.start()
            started.set()
            await server.serve_until_stopped()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="frontdoor-server", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("server failed to start within 30s")

    def stop() -> None:
        loop = loop_holder["loop"]
        coro = server.stop()
        try:
            asyncio.run_coroutine_threadsafe(coro, loop).result(timeout=60.0)
        except RuntimeError:
            coro.close()  # loop already gone — the server stopped itself
        thread.join(timeout=60.0)

    return thread, stop
