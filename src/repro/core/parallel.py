"""Parallel execution helpers (paper §3 "Parallel", §5.5.2).

The paper parallelises per-group training and per-log matching across a
small number of cores (1–5 in production).  Here the unit of parallelism is
a thread pool: the heavy inner loops are NumPy kernels that release the GIL,
so threads give a realistic speedup while keeping the in-process service
simple.  ``parallelism == 1`` reproduces *ByteBrain Sequential*.

All helpers share one persistent process-wide :class:`ThreadPoolExecutor`
(:func:`shared_executor`) instead of constructing a fresh pool per call —
thread startup is far from free at the call rates the sharded runtime
(:mod:`repro.service.runtime`) drives, and a single pool keeps the total
thread count bounded across training rounds, matcher shards and runtime
training dispatch.  ``map_parallel`` still caps *its own* concurrency at
the requested ``parallelism`` by submitting that many strided sub-tasks.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "map_parallel",
    "chunk",
    "chunk_ranges",
    "shared_executor",
    "shutdown_shared_executor",
    "reset_after_fork",
]

T = TypeVar("T")
R = TypeVar("R")

_executor_lock = threading.Lock()
_executor: Optional[ThreadPoolExecutor] = None


def _default_pool_size() -> int:
    # Large enough that a handful of off-path training rounds (one per
    # runtime shard) can block on nested map_parallel sub-tasks without
    # starving them of workers.
    return max(8, (os.cpu_count() or 4) + 4)


def shared_executor() -> ThreadPoolExecutor:
    """The process-wide persistent executor (created lazily, reused forever).

    Shared by :func:`map_parallel` (training groups, matcher shards) and the
    sharded runtime's off-path training dispatch.  ``concurrent.futures``
    installs an atexit hook, so the pool never blocks interpreter shutdown.
    """
    global _executor
    with _executor_lock:
        if _executor is None or _executor._shutdown:  # recreate after tests shut it down
            _executor = ThreadPoolExecutor(
                max_workers=_default_pool_size(), thread_name_prefix="repro-shared"
            )
        return _executor


def shutdown_shared_executor(wait: bool = True) -> None:
    """Tear down the shared pool (tests / embedders); recreated on next use."""
    global _executor
    with _executor_lock:
        if _executor is not None:
            _executor.shutdown(wait=wait)
            _executor = None


def reset_after_fork() -> None:
    """Discard inherited executor state in a freshly forked child.

    ``fork`` copies the parent's memory but none of its threads: an
    inherited :class:`ThreadPoolExecutor` has live-looking bookkeeping
    (queues, worker references) with no workers behind it, and its
    internal locks may have been captured mid-acquire by a parent thread
    that does not exist in the child — the first submit would hang
    forever.  Process-backend shard workers
    (:mod:`repro.service.transport`) call this first thing after the
    fork; the next :func:`shared_executor` call then builds a pool of the
    child's own threads.
    """
    global _executor, _executor_lock
    _executor_lock = threading.Lock()
    _executor = None


def map_parallel(
    fn: Callable[[T], R],
    items: Sequence[T],
    parallelism: int = 1,
    executor: Optional[ThreadPoolExecutor] = None,
) -> List[R]:
    """Apply ``fn`` to every item, optionally across the shared thread pool.

    Results are returned in input order regardless of completion order.
    Concurrency is capped at ``parallelism`` by splitting the items into
    that many strided sub-sequences (``items[i::parallelism]``) and running
    each as one task — striding load-balances skewed inputs (e.g. training
    groups of very different sizes) better than contiguous chunks.  Pass
    ``executor`` to run on a caller-owned pool instead of the shared one.
    """
    if parallelism <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if executor is None and threading.current_thread().name.startswith("repro-shared"):
        # Nested call from a shared-pool worker (e.g. an off-path training
        # round's own map_parallel): run inline instead of submitting to
        # the same pool — a pool saturated with blocked parents would
        # deadlock waiting on its own children.
        return [fn(item) for item in items]
    n_tasks = min(parallelism, len(items))
    pool = executor if executor is not None else shared_executor()

    def run_stride(offset: int) -> List[R]:
        return [fn(item) for item in items[offset::n_tasks]]

    stride_results = list(pool.map(run_stride, range(n_tasks)))
    results: List[Optional[R]] = [None] * len(items)
    for offset, values in enumerate(stride_results):
        results[offset::n_tasks] = values
    return results  # type: ignore[return-value]


def chunk(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-equal parts.

    Empty input yields ``[]`` (no chunks), never a phantom empty shard.
    """
    return [list(items[start:end]) for start, end in chunk_ranges(len(items), n_chunks)]


def chunk_ranges(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """``[start, end)`` bounds splitting ``n_items`` into near-equal shards.

    The range-based twin of :func:`chunk` for sharding array-shaped work
    (e.g. packed hash matrices) without materialising per-shard item lists —
    each worker slices its block directly.
    """
    if n_items <= 0:
        return []
    if n_chunks <= 1 or n_items == 1:
        return [(0, n_items)]
    n_chunks = min(n_chunks, n_items)
    size, remainder = divmod(n_items, n_chunks)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(n_chunks):
        end = start + size + (1 if index < remainder else 0)
        ranges.append((start, end))
        start = end
    return ranges
