"""Parallelism must not change results (paper §3 "Parallel", §5.5.2).

The trainer seeds one RNG per initial group from a process-stable hash of
the group key, and matching shards are pure functions of the model, so
``parallelism=1`` and ``parallelism=4`` must produce byte-identical models
and template assignments.  Nothing verified this claim before.
"""

from repro.core.config import ByteBrainConfig
from repro.core.matcher import OnlineMatcher
from repro.core.trainer import OfflineTrainer
from repro.datasets.catalog import SYSTEM_SPECS
from repro.datasets.synthetic import SyntheticLogGenerator


def _corpus(n_logs=3000):
    generator = SyntheticLogGenerator(SYSTEM_SPECS["HDFS"])
    return generator.generate(n_logs=n_logs, variant="loghub2").lines


def _model_fingerprint(model):
    return [
        (t.template_id, t.tokens, t.saturation, t.parent_id, t.depth, t.weight)
        for t in model.templates()
    ]


class TestTrainingDeterminism:
    def test_parallel_training_is_byte_identical_to_sequential(self):
        lines = _corpus()
        sequential = OfflineTrainer(ByteBrainConfig(parallelism=1)).train(lines)
        parallel = OfflineTrainer(ByteBrainConfig(parallelism=4)).train(lines)
        assert sequential.model.to_json() == parallel.model.to_json()
        assert _model_fingerprint(sequential.model) == _model_fingerprint(parallel.model)
        assert sequential.training_assignments == parallel.training_assignments

    def test_repeated_training_is_deterministic(self):
        lines = _corpus(1500)
        first = OfflineTrainer(ByteBrainConfig(parallelism=4)).train(lines)
        second = OfflineTrainer(ByteBrainConfig(parallelism=4)).train(lines)
        assert first.model.to_json() == second.model.to_json()


class TestMatchingDeterminism:
    def test_parallel_matching_ids_and_saturations_identical(self):
        lines = _corpus()
        training = OfflineTrainer(ByteBrainConfig(parallelism=1)).train(lines)
        model_json = training.model.to_json()

        outcomes = {}
        for parallelism in (1, 4):
            from repro.core.model import ParserModel

            trainer = OfflineTrainer(ByteBrainConfig(parallelism=parallelism))
            matcher = OnlineMatcher(
                ParserModel.from_json(model_json),
                config=ByteBrainConfig(parallelism=parallelism),
                preprocessor=trainer.preprocessor,
            )
            results = matcher.match_many(lines)
            outcomes[parallelism] = [(r.template_id, r.saturation) for r in results]
        assert outcomes[1] == outcomes[4]
