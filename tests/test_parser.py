"""Integration tests for the ByteBrainParser façade."""

import pytest

from repro.core.parser import ByteBrainParser
from repro.evaluation.metrics import grouping_accuracy


class TestTrainingAndMatching:
    def test_requires_training_before_matching(self):
        parser = ByteBrainParser()
        with pytest.raises(RuntimeError):
            parser.match("some log line 42")

    def test_parse_corpus_end_to_end(self, hdfs_dataset):
        parser = ByteBrainParser()
        result = parser.parse_corpus(hdfs_dataset.lines)
        assert len(result.results) == hdfs_dataset.n_logs
        assert result.total_seconds > 0
        assert result.throughput > 0
        assert parser.is_trained

    def test_parse_corpus_rejects_empty_input(self):
        with pytest.raises(ValueError):
            ByteBrainParser().parse_corpus([])

    def test_grouping_accuracy_is_high_on_hdfs(self, hdfs_dataset):
        parser = ByteBrainParser()
        result = parser.parse_corpus(hdfs_dataset.lines)
        resolved = [
            parser.template_at(r.template_id, threshold=0.6).template_id for r in result.results
        ]
        assert grouping_accuracy(resolved, hdfs_dataset.ground_truth) >= 0.9

    def test_match_is_consistent_for_duplicates(self, trained_hdfs_parser, hdfs_dataset):
        line = hdfs_dataset.lines[0]
        first = trained_hdfs_parser.match(line)
        second = trained_hdfs_parser.match(line)
        assert first.template_id == second.template_id

    def test_match_many_matches_single_calls(self, trained_hdfs_parser, hdfs_dataset):
        lines = hdfs_dataset.lines[:50]
        batch = [r.template_id for r in trained_hdfs_parser.match_many(lines)]
        single = [trained_hdfs_parser.match(line).template_id for line in lines]
        assert batch == single

    def test_model_size_reported(self, trained_hdfs_parser):
        assert trained_hdfs_parser.model_size_bytes() > 0

    def test_templates_listing(self, trained_hdfs_parser):
        all_templates = trained_hdfs_parser.templates()
        visible = trained_hdfs_parser.templates(threshold=0.6)
        assert 0 < len(visible) <= len(all_templates)


class TestPrecisionAdjustment:
    def test_lower_threshold_never_increases_template_count(self, hdfs_dataset):
        parser = ByteBrainParser()
        result = parser.parse_corpus(hdfs_dataset.lines)
        counts = []
        for threshold in (0.9, 0.6, 0.3):
            groups = parser.group_results(result.results, threshold)
            counts.append(len(groups))
        assert counts[0] >= counts[1] >= counts[2]

    def test_group_results_cover_all_records(self, hdfs_dataset):
        parser = ByteBrainParser()
        result = parser.parse_corpus(hdfs_dataset.lines)
        groups = parser.group_results(result.results, threshold=0.6)
        assert sum(group.count for group in groups) == len(result.results)

    def test_template_at_returns_ancestor_or_self(self, hdfs_dataset):
        parser = ByteBrainParser()
        result = parser.parse_corpus(hdfs_dataset.lines)
        sample = result.results[0]
        coarse = parser.template_at(sample.template_id, threshold=0.2)
        assert coarse.saturation <= parser.model.get(sample.template_id).saturation + 1e-9


class TestIncrementalTraining:
    def test_second_training_round_merges_into_model(self):
        parser = ByteBrainParser()
        batch_one = [f"disk usage at {i} percent on volume data{i % 3}" for i in range(200)]
        parser.train(batch_one)
        size_after_first = len(parser.model)
        batch_two = [f"disk usage at {i} percent on volume data{i % 3}" for i in range(200, 400)]
        batch_two += [f"network link eth{i % 4} flapped {i} times" for i in range(100)]
        parser.train(batch_two)
        assert len(parser.model) >= size_after_first
        matched = parser.match("network link eth2 flapped 17 times")
        assert "network link" in matched.template_text

    def test_unmatched_online_log_learned_in_next_round(self):
        parser = ByteBrainParser()
        parser.train([f"cache hit ratio {i} percent" for i in range(100)])
        outcome = parser.match("unexpected fatal error in shard 7 replica 2")
        assert outcome.saturation == 1.0
        # Retraining with the new pattern present keeps it matchable.
        parser.train([f"unexpected fatal error in shard {i} replica {i % 3}" for i in range(50)])
        matched = parser.match("unexpected fatal error in shard 9 replica 1")
        assert "unexpected fatal error in shard" in matched.template_text
