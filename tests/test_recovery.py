"""Tests for crash recovery (service/recovery.py) and the WAL low-water
mark / truncation / rollback protocol in the sharded runtime."""

from repro.core.config import ByteBrainConfig
from repro.service.recovery import RecoveredRuntime
from repro.service.runtime import ShardedRuntime
from repro.service.scheduler import SchedulerPolicy
from repro.service.service import LogParsingService
from repro.service.wal import WriteAheadLog

TOPIC = "checkout"


def make_service(tmp_path, config=None, volume_threshold=10**9, initial=10**9):
    return LogParsingService(
        config=config or ByteBrainConfig(),
        scheduler_policy=SchedulerPolicy(
            volume_threshold=volume_threshold,
            time_interval_seconds=10**9,
            initial_volume_threshold=initial,
        ),
        store_root=tmp_path / "store",
    )


def phase_line(phase, i):
    # Structurally distinct per phase so every phase's round clusters new
    # templates (model_changed=True -> a persisted store version).
    shapes = {
        1: f"alpha request {i} served for user {i % 7}",
        2: f"beta disk error {i} on volume {i % 5} retrying",
        3: f"gamma cache miss {i} for key {i % 11} backend {i % 3}",
    }
    return shapes[phase]


class TestRecoveredRuntimeOpen:
    def test_replay_without_any_snapshot(self, tmp_path):
        service = make_service(tmp_path)
        service.create_topic(TOPIC)
        with ShardedRuntime(service, n_shards=2, wal_dir=tmp_path / "wal") as runtime:
            for i in range(150):
                runtime.submit(TOPIC, phase_line(1, i), timestamp=float(i))
            runtime.drain()
        recovered = RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=ByteBrainConfig(),
            start_runtime=False,
        )
        entry = recovered.report.topics[0]
        assert entry.model_version is None
        assert entry.captured_seq == 0
        assert entry.replayed_records == 150
        records = recovered.service.topic(TOPIC).topic.records()
        assert [r.raw for r in records] == [phase_line(1, i) for i in range(150)]
        assert [r.timestamp for r in records] == [float(i) for i in range(150)]

    def test_replay_skips_snapshot_captured_records(self, tmp_path):
        service = make_service(tmp_path, volume_threshold=10**9, initial=100)
        service.create_topic(TOPIC)
        with ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal") as runtime:
            for i in range(300):
                runtime.submit(TOPIC, phase_line(1, i), timestamp=float(i))
            runtime.drain()
        versions = service.topic(TOPIC).model_versions()
        assert versions, "workload should have persisted at least one version"
        wal_seq = int(versions[-1].metadata["wal_seq"])
        assert wal_seq > 0

        recovered = RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=ByteBrainConfig(),
            start_runtime=False,
        )
        entry = recovered.report.topics[0]
        assert entry.captured_seq == int(
            service.topic(TOPIC).store.current_version().metadata["wal_seq"]
        )
        engine = recovered.service.topic(TOPIC)
        assert len(engine.topic) == 300 - entry.captured_seq
        # The restored model answers reads immediately.
        assert engine.parser.is_trained
        assert engine.match(phase_line(1, 3)).template_id >= 0
        # Replayed records are the pending delta for the next round.
        assert engine.trained_watermark == 0
        assert engine.pending_records == len(engine.topic)

    def test_empty_directories_recover_to_empty_service(self, tmp_path):
        recovered = RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", start_runtime=False
        )
        assert recovered.report.topics == []
        assert recovered.service.topic_names() == []

    def test_topics_only_in_wal_are_recreated(self, tmp_path):
        service = make_service(tmp_path)
        service.create_topic("never-trained")
        with ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal") as runtime:
            runtime.submit("never-trained", "one lonely record", timestamp=0.0)
            runtime.drain()
        recovered = RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", start_runtime=False
        )
        assert recovered.service.topic_names() == ["never-trained"]
        assert len(recovered.service.topic("never-trained").topic) == 1

    def test_recovered_runtime_continues_sequences(self, tmp_path):
        service = make_service(tmp_path, initial=60)
        service.create_topic(TOPIC)
        with ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal") as runtime:
            for i in range(100):
                runtime.submit(TOPIC, phase_line(1, i), timestamp=float(i))
            runtime.drain()
        with RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=ByteBrainConfig(),
            n_shards=1,
        ) as recovered:
            base, next_seq = recovered.runtime._wal_positions[TOPIC]
            assert next_seq == 101  # continues after the crashed run's last seq
            recovered.runtime.submit(TOPIC, phase_line(1, 100), timestamp=100.0)
            recovered.runtime.drain()
        # A second recovery sees the continued sequence, no duplicates.
        second = RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=ByteBrainConfig(),
            start_runtime=False,
        )
        entry = second.report.topics[0]
        assert entry.last_seq == 101
        assert second.report.warnings == []


class TestRollbackTruncationInteraction:
    def run_three_phases(self, tmp_path, config):
        """Three bursts with drains: each persists one model version."""
        service = make_service(tmp_path, config=config, volume_threshold=150, initial=100)
        service.create_topic(TOPIC)
        runtime = ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal")
        n = 0
        for phase in (1, 2, 3):
            for i in range(150):
                runtime.submit(TOPIC, phase_line(phase, i), timestamp=float(n))
                n += 1
            runtime.drain()
        return service, runtime, n

    def test_truncation_retains_rollback_window(self, tmp_path):
        config = ByteBrainConfig(wal_segment_bytes=4096, wal_retain_versions=2)
        service, runtime, total = self.run_three_phases(tmp_path, config)
        store = service.topic(TOPIC).store
        versions = store.versions()
        assert len(versions) >= 2
        current = store.current_version()
        previous = max(v.version for v in versions if v.version < current.version)
        previous_seq = int(store.version(previous).metadata["wal_seq"])
        current_seq = int(current.metadata["wal_seq"])
        assert previous_seq < current_seq

        # Truncation ran (drain barrier), but every record past the
        # *previous* version's watermark must still be in the log: that
        # version is a retained rollback target.
        by_topic, _ = WriteAheadLog(tmp_path / "wal").replay_records()
        remaining = {r.seq for r in by_topic[TOPIC]}
        needed = set(range(previous_seq + 1, total + 1))
        assert needed.issubset(remaining), "rollback window was truncated away"

        runtime.shutdown()

    def test_rollback_then_crash_recovers_past_target_watermark(self, tmp_path):
        config = ByteBrainConfig(wal_segment_bytes=4096, wal_retain_versions=2)
        service, runtime, total = self.run_three_phases(tmp_path, config)
        store = service.topic(TOPIC).store
        restored = runtime.rollback_model(TOPIC)
        rolled_back_seq = int(restored.metadata["wal_seq"])
        # The low-water mark rewound with the pointer.
        assert runtime.wal.captured()[TOPIC] == rolled_back_seq
        runtime.shutdown(drain=False)  # simulate dying right after rollback

        recovered = RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=config, start_runtime=False
        )
        entry = recovered.report.topics[0]
        assert entry.model_version == restored.version
        assert entry.captured_seq == rolled_back_seq
        # Every record the rolled-back-away version had captured is
        # replayed — nothing fell into the gap between rollback and crash.
        assert len(recovered.service.topic(TOPIC).topic) == total - rolled_back_seq
        assert recovered.report.warnings == []

    def test_rollback_waits_for_in_flight_round(self, tmp_path):
        # A round persisting mid-rollback would advance the low-water mark
        # past the version the rollback lands on; rollback must exclude it.
        import time as time_module

        config = ByteBrainConfig(wal_retain_versions=2)
        service = make_service(tmp_path, config=config, volume_threshold=150, initial=100)
        service.create_topic(TOPIC)
        runtime = ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal")
        for i in range(150):
            runtime.submit(TOPIC, phase_line(1, i), timestamp=float(i))
        runtime.drain()  # version 1
        engine = service.topic(TOPIC)
        original_execute = engine.execute_round

        def slow_execute(plan):
            time_module.sleep(0.3)
            return original_execute(plan)

        engine.execute_round = slow_execute
        for i in range(150):
            runtime.submit(TOPIC, phase_line(2, i), timestamp=float(200 + i))
        # Wait until the phase-2 round is actually executing off-path (the
        # slow execute_round holds it in flight for ~0.3 s).
        deadline = time_module.monotonic() + 10.0
        while TOPIC not in runtime._rounds_in_flight:
            assert time_module.monotonic() < deadline, "round never dispatched"
            time_module.sleep(0.005)
        restored = runtime.rollback_model(TOPIC)
        engine.execute_round = original_execute
        store = engine.store
        current = store.current_version()
        assert current.version == restored.version
        # The low-water mark matches the version rollback landed on — the
        # racing round either committed before the rollback (and was the
        # one rolled back) or after it; it never left the mark past the
        # current version's coverage.
        assert runtime.wal.captured()[TOPIC] <= int(current.metadata.get("wal_seq", 0))
        runtime.shutdown(drain=False)

    def test_rollback_after_recovery_rebases_trained_watermark(self, tmp_path):
        # metadata["trained_watermark"] is a record id of the epoch that
        # persisted it; after recovery record ids restart at 0 and the raw
        # value would exclude live records from training forever.
        config = ByteBrainConfig(wal_retain_versions=3)
        service = make_service(tmp_path, config=config, volume_threshold=150, initial=100)
        service.create_topic(TOPIC)
        with ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal") as runtime:
            for i in range(150):
                runtime.submit(TOPIC, phase_line(1, i), timestamp=float(i))
            runtime.drain()  # version 1 persists (old epoch)
        with RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=config, n_shards=1,
        ) as recovered:
            engine = recovered.service.topic(TOPIC)
            for i in range(150):
                recovered.runtime.submit(TOPIC, phase_line(2, i), timestamp=float(300 + i))
            recovered.runtime.drain()  # version 2 persists (new epoch)
            assert len(engine.model_versions()) >= 2
            restored = recovered.runtime.rollback_model(TOPIC)
            # Rebased into the live epoch: within storage bounds, and the
            # records version N never saw are pending again.
            assert 0 <= engine.trained_watermark <= engine.topic.high_watermark
            base, _ = recovered.runtime._wal_positions[TOPIC]
            expected = max(0, int(restored.metadata["wal_seq"]) - base)
            assert engine.trained_watermark == min(expected, engine.topic.high_watermark)
            assert engine.pending_records >= 0
            # And training still covers the live delta.
            engine.train_now(now=10**6)
            assert engine.trained_watermark == engine.topic.high_watermark

    def test_rollback_past_recovery_point_clamps_low_water_mark(self, tmp_path):
        # After a crash recovery, seqs at or below the recovery base have
        # no records in live storage.  Rolling back to a version older
        # than the recovery point must NOT rewind the low-water mark
        # below the base: the next round's snapshot would then claim
        # coverage of records it never saw, and a second crash would skip
        # replaying them.
        config = ByteBrainConfig(wal_segment_bytes=4096, wal_retain_versions=4)
        service, runtime, total = self.run_three_phases(tmp_path, config)
        runtime.shutdown()
        with RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=config, n_shards=1,
        ) as recovered:
            engine = recovered.service.topic(TOPIC)
            base, _ = recovered.runtime._wal_positions[TOPIC]
            restored = recovered.runtime.rollback_model(TOPIC)
            assert int(restored.metadata["wal_seq"]) < base  # past the recovery point
            # Clamped: never below the base of the live epoch.
            assert recovered.runtime.wal.captured()[TOPIC] == base
            # The live records (all past the base) are pending again.
            assert engine.trained_watermark == 0
            assert engine.pending_records == len(engine.topic)
            # Ingest + round + clean shutdown: accounting stays exact.
            for i in range(150):
                recovered.runtime.submit(TOPIC, phase_line(2, i), timestamp=float(900 + i))
            recovered.runtime.drain()
        second = RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=config, start_runtime=False
        )
        entry = second.report.topics[0]
        assert second.report.warnings == []
        assert entry.captured_seq + entry.replayed_records == entry.last_seq
        raws = [r.raw for r in second.service.topic(TOPIC).topic.records()]
        assert len(raws) == len(set(raws))

    def test_retain_one_floors_at_current_version(self, tmp_path):
        # With wal_retain_versions=1 the floor tracks the newest snapshot:
        # aggressive truncation, documented rollback replayability loss.
        config = ByteBrainConfig(wal_segment_bytes=4096, wal_retain_versions=1)
        service, runtime, _ = self.run_three_phases(tmp_path, config)
        store = service.topic(TOPIC).store
        current_seq = int(store.current_version().metadata["wal_seq"])
        assert runtime._wal_floors()[TOPIC] == current_seq
        runtime.shutdown()

    def test_bootstrap_records_before_wal_are_not_claimed_captured(self, tmp_path):
        # Training through the facade *before* attaching the durable
        # runtime is supported: those records are never-logged, so the
        # seq base goes negative and snapshot coverage converts exactly —
        # a crash must replay every logged record the snapshot did not
        # actually cover.
        config = ByteBrainConfig()
        service = make_service(tmp_path, config=config, volume_threshold=150, initial=10**9)
        service.create_topic(TOPIC)
        service.ingest_batch(TOPIC, [phase_line(1, i) for i in range(100)], now=0.0)
        service.train_now(TOPIC, now=0.0)  # bootstrap model (no wal_seq metadata)
        runtime = ShardedRuntime(service, n_shards=1, wal_dir=tmp_path / "wal")
        assert runtime._wal_positions[TOPIC] == (-100, 1)
        # A watermark entirely inside the bootstrap records captures
        # nothing from the log's point of view.
        assert runtime._seq_of_watermark(TOPIC, 100) == 0
        for i in range(200):
            runtime.submit(TOPIC, phase_line(2, i), timestamp=float(i))
        runtime.drain()  # a round fires and persists with a wal_seq
        store = service.topic(TOPIC).store
        current = store.current_version()
        logged_covered = int(current.metadata["wal_seq"])
        # Coverage counts only logged records: watermark - bootstrap.
        assert 0 < logged_covered <= 200
        assert logged_covered == int(current.metadata["trained_watermark"]) - 100
        runtime.shutdown(drain=False)  # crash

        recovered = RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=config, start_runtime=False
        )
        entry = recovered.report.topics[0]
        assert entry.captured_seq == logged_covered
        # Every logged record the snapshot did not cover is replayed.
        assert entry.replayed_records == 200 - logged_covered
        assert recovered.report.warnings == []

    def test_retain_two_floors_at_previous_version(self, tmp_path):
        config = ByteBrainConfig(wal_segment_bytes=4096, wal_retain_versions=2)
        service, runtime, _ = self.run_three_phases(tmp_path, config)
        store = service.topic(TOPIC).store
        versions = store.versions()
        current = store.current_version()
        window = [
            int(v.metadata.get("wal_seq", 0))
            for v in versions
            if current.version - 2 < v.version <= current.version
        ]
        assert runtime._wal_floors()[TOPIC] == min(window)
        runtime.shutdown()
