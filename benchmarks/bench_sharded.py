"""Sharded-runtime ingest benchmark (machine-readable).

Measures the PR's service-stack split end to end: a multi-topic synthetic
workload (one LogHub-2.0-style system per topic, ~all raw lines distinct)
is pre-trained identically per mode, then the same interleaved record
stream — with training rounds triggering mid-stream — is driven through

* ``sync_per_record`` — the synchronous ``LogParsingService`` façade, one
  ``ingest`` call per record, training rounds inline (the pre-PR caller
  experience), and
* ``sharded_N`` — the :class:`~repro.service.runtime.ShardedRuntime` at
  N ∈ ``--shards``: per-record ``submit`` into bounded shard queues,
  micro-batches through the vectorised match engine, training rounds
  off-path on the shared executor.

Reported per mode (median of ``--repetitions``): end-to-end throughput
(wall clock until every record is stored and every round committed) and
producer-side acceptance rate.  A second, *paced* phase offers records at
a sustainable rate below capacity and measures the worst single-call
producer stall — the sync façade freezes its caller for whole inline
training rounds, the runtime's submit hands the record to a queue with
headroom and returns.

Being a single in-process Python service, ingest preprocessing (masking
regexes) holds the GIL, so shard scaling of wall-clock throughput is
modest — the wins come from micro-batched matching, purer per-topic
batches at higher shard counts, off-path rounds overlapping ingest via
their GIL-releasing NumPy kernels, and much smaller producer stalls
under paced load (typically 10-25x; the paced phase runs at a 1 ms
interpreter switch interval so the measurement captures the runtime, not
GIL convoying, and the assertion bound stays a conservative 1.5x).  The
benchmark asserts: the
best sharded mode beats the sync façade, no sharded mode is materially
slower than it, the highest shard count does not fall below the lowest
(the measured scaling ratio — a few percent, noise-bounded run to run —
is recorded in the summary), and the paced worst stall shrinks by
>= 1.5x.  Run from the repo root::

Both shard transports are on the axis: ``sharded_N`` drives the thread
backend, ``process_N`` the worker-process backend
(:mod:`repro.service.transport`), which escapes the GIL entirely — its
gates are CPU-aware (see :func:`process_floor_ratio`): >= 2x the thread
backend at the top shard count when >= 4 CPUs host the workers, a
bounded IPC tax on a single CPU, and monotone 1 -> 2 -> 4 scaling
within a per-step tolerance.  ``--smoke --check-floor
BENCH_sharded.json`` is the CI gate form.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_sharded.py [--records 8000]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.service.bench import run_serve_bench

DEFAULT_TOPICS = 4
DEFAULT_RECORDS = 8_000
DEFAULT_TRAIN_RECORDS = 2_000
#: Per-topic volume trigger during the measured phase: with 8k records per
#: topic this fires one mid-stream round per topic, so both modes pay for
#: (re)training — inline for the façade, off-path for the runtime.
DEFAULT_VOLUME_THRESHOLD = 4_000
#: Micro-batch size used by the runtime modes: large enough that a shard
#: hosting several interleaved topics still hands each topic substantial
#: per-topic batches to the broadcast match engine.
DEFAULT_MICRO_BATCH = 1_024
#: Offered rate of the paced latency phase — comfortably below the ~20k+
#: logs/s single-process capacity so stalls measure rounds, not saturation.
DEFAULT_PACED_RATE = 10_000.0

#: Both shard transports are measured: ``sharded_N`` (threads, the
#: differential baseline) and ``process_N`` (worker processes).
DEFAULT_BACKENDS = ("thread", "process")
#: Corpus size for ``--smoke`` (CI PR gate): small per-topic stream, one
#: repetition, runs in well under a minute.
SMOKE_RECORDS = 2_000
SMOKE_TRAIN_RECORDS = 500
SMOKE_VOLUME_THRESHOLD = 1_500


def process_floor_ratio(n_cpus: int) -> float:
    """CPU-aware floor for ``process_max / sharded_max`` throughput.

    The process backend exists to escape the GIL, so its win scales with
    the cores available to host workers.  With >= 4 CPUs the tentpole
    target applies: the process backend must at least double the thread
    backend on the matching-bound workload.  With 2-3 CPUs a real but
    smaller win is required.  On a single CPU there is no parallelism to
    buy — the gate bounds the IPC tax instead (the process backend must
    keep >= 45% of thread throughput), and the artifact records
    ``cpu_count`` so the ratio is read in context.
    """
    if n_cpus >= 4:
        return 2.0
    if n_cpus >= 2:
        return 1.1
    return 0.45


def monotone_step_tolerance(n_cpus: int) -> float:
    """Per-step tolerance for monotone 1 -> 2 -> 4 process scaling.

    With enough cores each step must not lose more than 5%; with fewer
    cores than shards the curve is flat within noise, so the tolerance
    loosens to 10% per step.  Monotone scaling is a multi-core property
    — on a single CPU every extra worker process is pure IPC and
    context-switch overhead, the curve necessarily declines, and the
    criterion is recorded but not enforced (see ``run``).
    """
    return 0.95 if n_cpus >= 4 else 0.90


def run(
    n_topics: int = DEFAULT_TOPICS,
    records_per_topic: int = DEFAULT_RECORDS,
    train_records_per_topic: int = DEFAULT_TRAIN_RECORDS,
    shard_counts: Sequence[int] = (1, 2, 4),
    volume_threshold: int = DEFAULT_VOLUME_THRESHOLD,
    micro_batch_size: int = DEFAULT_MICRO_BATCH,
    paced_rate: float = DEFAULT_PACED_RATE,
    repetitions: int = 3,
    output: Optional[Path] = None,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    enforce: bool = True,
) -> Dict[str, object]:
    report = run_serve_bench(
        n_topics=n_topics,
        records_per_topic=records_per_topic,
        train_records_per_topic=train_records_per_topic,
        shard_counts=shard_counts,
        micro_batch_size=micro_batch_size,
        volume_threshold=volume_threshold,
        repetitions=repetitions,
        paced_rate=paced_rate,
        backends=backends,
    )
    report["benchmark"] = "bench_sharded"
    modes = {mode["mode"]: mode for mode in report["modes"]}
    sync = modes["sync_per_record"]
    low = modes[f"sharded_{min(shard_counts)}"]
    high = modes[f"sharded_{max(shard_counts)}"]
    thread_modes = [
        mode for mode in report["modes"] if mode["mode"].startswith("sharded_")
    ]
    best = max(thread_modes, key=lambda mode: mode["throughput"])
    stalls = report["paced_latency"]["max_stall_ms"]
    stall_reduction = (
        stalls["sync_per_record"] / stalls[high["mode"]]
        if stalls[high["mode"]] > 0
        else float("inf")
    )
    report["summary"] = {
        "sync_throughput": sync["throughput"],
        "best_sharded_mode": best["mode"],
        "best_sharded_speedup_vs_sync": best["speedup_vs_sync"],
        "shard_scaling_low_to_high": round(high["throughput"] / low["throughput"], 3),
        "paced_producer_stall_reduction": round(stall_reduction, 1),
        "meets_best_sharded_beats_sync": best["throughput"] > sync["throughput"],
        # Thread modes only: the process backend answers to its own
        # CPU-aware floor below (on a single CPU it trades throughput
        # for multicore headroom it cannot demonstrate there).
        "meets_no_sharded_mode_materially_slower": all(
            mode["throughput"] >= 0.95 * sync["throughput"]
            for mode in thread_modes
        ),
        # The scaling effect (purer per-topic micro-batches + GIL overlap
        # of off-path rounds) is a few percent on a GIL-bound process, so
        # the hard gate is non-degradation; the measured ratio is recorded
        # above for the artifact.
        "meets_scaling_high_not_below_low": high["throughput"] >= 0.97 * low["throughput"],
        "meets_paced_stall_reduction_1_5x": stall_reduction >= 1.5,
    }
    criteria = [
        "meets_best_sharded_beats_sync",
        "meets_no_sharded_mode_materially_slower",
        "meets_scaling_high_not_below_low",
        "meets_paced_stall_reduction_1_5x",
    ]
    if "process" in backends:
        n_cpus = os.cpu_count() or 1
        ordered = sorted(shard_counts)
        curve = {n: modes[f"process_{n}"]["throughput"] for n in ordered}
        tolerance = monotone_step_tolerance(n_cpus)
        process_high = curve[ordered[-1]]
        floor = process_floor_ratio(n_cpus)
        ratio = round(process_high / high["throughput"], 3)
        report["summary"].update(
            {
                "cpu_count": n_cpus,
                "process_vs_thread_at_max_shards": ratio,
                "process_floor_ratio": floor,
                "process_scaling_curve": {str(n): curve[n] for n in ordered},
                "meets_process_floor_vs_thread": process_high >= floor * high["throughput"],
                "meets_process_monotone_scaling": all(
                    curve[b] >= tolerance * curve[a]
                    for a, b in zip(ordered, ordered[1:])
                ),
            }
        )
        criteria.append("meets_process_floor_vs_thread")
        if n_cpus >= 2:
            # One core cannot demonstrate scaling: the curve declines by
            # construction there, so only the floor gate is enforced and
            # the curve is recorded for inspection.
            criteria.append("meets_process_monotone_scaling")
    # Smoke runs (--smoke) record the summary but skip the hard gates:
    # the thread-mode advantages only amortise on the full workload, and
    # the CI smoke gate is check_floor's process-vs-thread ratio.
    if enforce:
        for criterion in criteria:
            if not report["summary"][criterion]:
                raise AssertionError(f"{criterion} failed: {report['summary']}")
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
    return report


#: ``--check-floor``: the measured process-vs-thread ratio must keep this
#: fraction of the checked-in reference run's ratio (CI runners are noisy
#: and differently provisioned), and must always clear the CPU-aware
#: absolute floor of :func:`process_floor_ratio`.
FLOOR_FRACTION = 0.5


def check_floor(report: Dict[str, object], reference_path: Path) -> int:
    """Gate the process backend against the checked-in reference artifact.

    Returns a process exit code: 0 when this run's
    ``process_vs_thread_at_max_shards`` clears both the CPU-aware
    absolute floor and ``FLOOR_FRACTION`` of the reference ratio.
    """
    summary = report["summary"]
    if "process_vs_thread_at_max_shards" not in summary:
        print("FAIL: run did not measure the process backend", file=sys.stderr)
        return 1
    reference = json.loads(reference_path.read_text())
    reference_ratio = float(
        reference["summary"].get("process_vs_thread_at_max_shards", 0.0)
    )
    measured = float(summary["process_vs_thread_at_max_shards"])
    floor = max(process_floor_ratio(os.cpu_count() or 1), reference_ratio * FLOOR_FRACTION)
    print(
        f"floor check: measured process/thread {measured:.2f}x, reference "
        f"{reference_ratio:.2f}x, floor {floor:.2f}x "
        f"(= max(cpu floor, {FLOOR_FRACTION} * reference), cpus={os.cpu_count()})"
    )
    if measured < floor:
        print(
            f"FAIL: process backend at {measured:.2f}x of thread fell below "
            f"the floor {floor:.2f}x — the process transport regressed",
            file=sys.stderr,
        )
        return 1
    print("floor check passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topics", type=int, default=DEFAULT_TOPICS)
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument("--train-records", type=int, default=None)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--volume-threshold", type=int, default=None)
    parser.add_argument("--micro-batch-size", type=int, default=DEFAULT_MICRO_BATCH)
    parser.add_argument("--paced-rate", type=float, default=DEFAULT_PACED_RATE)
    parser.add_argument("--repetitions", type=int, default=None)
    parser.add_argument(
        "--backends", nargs="+", choices=["thread", "process"],
        default=list(DEFAULT_BACKENDS),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI smoke mode: {SMOKE_RECORDS} records/topic, one repetition, "
             "no artifact written unless --output is given explicitly",
    )
    parser.add_argument(
        "--check-floor",
        type=Path,
        metavar="REFERENCE_JSON",
        help="compare the process-vs-thread ratio against a checked-in "
             "BENCH_sharded.json and exit 1 below the conservative floor",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args()
    records = args.records if args.records is not None else (
        SMOKE_RECORDS if args.smoke else DEFAULT_RECORDS
    )
    train_records = args.train_records if args.train_records is not None else (
        SMOKE_TRAIN_RECORDS if args.smoke else DEFAULT_TRAIN_RECORDS
    )
    volume_threshold = args.volume_threshold if args.volume_threshold is not None else (
        SMOKE_VOLUME_THRESHOLD if args.smoke else DEFAULT_VOLUME_THRESHOLD
    )
    repetitions = args.repetitions if args.repetitions is not None else (
        1 if args.smoke else 3
    )
    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parent / "BENCH_sharded.json"
    if args.smoke and (os.cpu_count() or 1) < 4:
        print(
            f"notice: only {os.cpu_count() or 1} CPU(s) visible — process-backend "
            "speedups are not representative; check_floor applies its reduced "
            "low-core floor (see process_floor_ratio)."
        )
    report = run(
        n_topics=args.topics,
        records_per_topic=records,
        train_records_per_topic=train_records,
        shard_counts=args.shards,
        volume_threshold=volume_threshold,
        micro_batch_size=args.micro_batch_size,
        paced_rate=args.paced_rate,
        repetitions=repetitions,
        output=output,
        backends=args.backends,
        enforce=not args.smoke,
    )
    for mode in report["modes"]:
        print(
            f"{mode['mode']:>16}: {mode['throughput']:>9,.1f} logs/s "
            f"(x{mode['speedup_vs_sync']:.3f} vs sync, "
            f"{mode['training_rounds']} rounds)"
        )
    paced = report["paced_latency"]
    print(f"paced @ {paced['rate']:,.0f} rec/s, worst stall: {paced['max_stall_ms']}")
    print(f"summary: {report['summary']}")
    if output is not None:
        print(f"written: {output}")
    if args.check_floor is not None:
        return check_floor(report, args.check_floor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
