"""Tenant-facing log parsing service (paper §3 system design, §6 deployment).

:class:`LogParsingService` is a thin, backwards-compatible synchronous
façade over per-topic :class:`~repro.service.engine.TopicEngine` instances.
All topic logic — ingest through the indexing pipeline, scheduler-triggered
incremental training rounds, zero-downtime hot swap, precision-slider
queries, model versioning/rollback, the template library — lives in the
engine; the façade adds:

* the topic registry (create / drop / lookup),
* a real per-topic ``threading.Lock`` installed as each engine's
  ``swap_guard`` so model swaps stay atomic against concurrent readers,
* the service-wide analytics of §6 (anomaly detection, period comparison,
  failure-scenario matching) which read across engines, and
* synchronous scheduler checks around ``ingest`` / ``ingest_batch``.

For high-throughput multi-topic ingestion use
:class:`~repro.service.runtime.ShardedRuntime` (or the
:meth:`LogParsingService.sharded_runtime` convenience), which partitions
the same engines across shard workers and micro-batches every producer's
records through the vectorised match engine.

Time is always passed in explicitly so the service is deterministic in
tests and benchmarks; production would pass wall-clock time.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ByteBrainConfig
from repro.core.incremental import DriftPolicy
from repro.core.matcher import MatchResult
from repro.core.model import Template
from repro.core.modelstore import ModelVersion
from repro.core.query import TemplateGroup
from repro.service.analytics import (
    FailureScenarioLibrary,
    TemplateAnomaly,
    TemplateAnomalyDetector,
    compare_template_distributions,
)
from repro.service.engine import TopicEngine
from repro.service.indexer import IngestionOutcome
from repro.service.scheduler import SchedulerPolicy

__all__ = ["TopicState", "LogParsingService", "IngestionOutcomeWithTraining"]

#: Backwards-compatible alias: what the service keeps per topic *is* the
#: engine now (``service.topic(name)`` exposes the same attributes the old
#: ``TopicState`` dataclass had: ``topic``, ``parser``, ``scheduler``,
#: ``pipeline``, ``internal_topic``, ``trainer``, ``store``,
#: ``template_library``, ``trained_watermark``, ``last_round``).
TopicState = TopicEngine


class LogParsingService:
    """Multi-topic, multi-tenant log parsing service (in-process simulation)."""

    def __init__(
        self,
        config: Optional[ByteBrainConfig] = None,
        scheduler_policy: Optional[SchedulerPolicy] = None,
        drift_policy: Optional[DriftPolicy] = None,
        store_root: Optional[os.PathLike] = None,
    ) -> None:
        self.config = config or ByteBrainConfig()
        self.scheduler_policy = scheduler_policy or SchedulerPolicy()
        self.drift_policy = drift_policy or DriftPolicy()
        #: Directory under which each topic gets a versioned model store
        #: (``<store_root>/<topic>``); ``None`` disables persistence.
        self.store_root = Path(store_root) if store_root is not None else None
        self._topics: Dict[str, TopicEngine] = {}
        self.failure_library = FailureScenarioLibrary()
        self.anomaly_detector = TemplateAnomalyDetector()

    # ------------------------------------------------------------------ #
    # topic lifecycle
    # ------------------------------------------------------------------ #
    def create_topic(
        self,
        name: str,
        config: Optional[ByteBrainConfig] = None,
        scheduler_policy: Optional[SchedulerPolicy] = None,
    ) -> TopicEngine:
        """Create a log topic (errors if it already exists).

        The training schedule resolves per topic: an explicit
        ``scheduler_policy`` wins, else the topic config's ``train_*``
        overrides applied on top of the service-wide default policy.
        """
        if name in self._topics:
            raise ValueError(f"topic {name!r} already exists")
        topic_config = config or self.config
        policy = scheduler_policy or SchedulerPolicy.from_config(
            topic_config, default=self.scheduler_policy
        )
        engine = TopicEngine(
            name,
            config=topic_config,
            scheduler_policy=SchedulerPolicy(**vars(policy)),
            drift_policy=DriftPolicy(**vars(self.drift_policy)),
            store_dir=self.store_root / name if self.store_root is not None else None,
            #: Serialises model swaps against readers that snapshot the
            #: parser.  Rounds compute the next model + matcher entirely
            #: outside this lock; only the pointer swap holds it, so
            #: queries never wait on training.
            swap_guard=threading.Lock(),
        )
        self._topics[name] = engine
        return engine

    def topic_names(self) -> List[str]:
        """Names of all existing topics."""
        return list(self._topics)

    def topic(self, name: str) -> TopicEngine:
        """Fetch a topic's engine (KeyError if unknown)."""
        return self._topics[name]

    def drop_topic(self, name: str) -> None:
        """Delete a topic and everything associated with it."""
        del self._topics[name]

    def sharded_runtime(self, backend: Optional[str] = None, **kwargs):
        """Build a sharded runtime over this service.

        ``backend`` selects the shard transport (``"thread"`` /
        ``"process"``); when ``None``, :func:`~repro.service.runtime.create_runtime`
        resolves it from ``REPRO_SHARD_BACKEND`` and the config's
        ``shard_backend`` knob.  Keyword arguments override the config's
        runtime knobs."""
        from repro.service.runtime import create_runtime

        return create_runtime(self, backend=backend, **kwargs)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, topic_name: str, raw: str, now: float) -> "IngestionOutcomeWithTraining":
        """Ingest one record; runs a training round first if the scheduler says so."""
        engine = self._topics[topic_name]
        trained = engine.maybe_train(now)
        outcome = engine.ingest(raw, now)
        return IngestionOutcomeWithTraining(outcome=outcome, trained=trained)

    def ingest_batch(self, topic_name: str, raws: Sequence[str], now: float) -> int:
        """Ingest a batch of records at one timestamp; returns count stored.

        The whole batch flows through the pipeline's batched match engine
        (one deduplicated, length-bucketed broadcast match call) instead of
        per-record ingestion.  Scheduler triggers are checked before and
        after the batch, so volume thresholds crossed mid-batch still fire
        at batch granularity — the same behaviour the paper's ingestion
        buffers exhibit.
        """
        if not raws:
            return 0
        engine = self._topics[topic_name]
        engine.maybe_train(now)
        engine.ingest_batch(raws, now)
        engine.maybe_train(now)
        return len(raws)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def maybe_train(self, topic_name: str, now: float) -> bool:
        """Run a training round if the scheduler's trigger condition holds."""
        return self._topics[topic_name].maybe_train(now)

    def train_now(self, topic_name: str, now: float, force_full: bool = False) -> None:
        """Run one training round on the records ingested since the last one.

        The first round clusters everything accumulated; later rounds run
        incrementally (novelty filter + residual clustering + weighted
        merge, escalating to a full retrain per the drift policy).  See
        :meth:`TopicEngine.train_now` — the round computes a *new* model
        and matcher off to the side, then swaps both in atomically under
        the topic's swap guard (zero-downtime).
        """
        self._topics[topic_name].train_now(now, force_full=force_full)

    # ------------------------------------------------------------------ #
    # model versioning
    # ------------------------------------------------------------------ #
    def model_versions(self, topic_name: str) -> List[ModelVersion]:
        """Version history of the topic's persisted models (oldest first)."""
        return self._topics[topic_name].model_versions()

    def rollback_model(self, topic_name: str) -> ModelVersion:
        """Hot-swap the topic back to the previous persisted model version."""
        return self._topics[topic_name].rollback()

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def match(self, topic_name: str, raw: str) -> MatchResult:
        """Match one record against the topic's live model without storing it."""
        return self._topics[topic_name].match(raw)

    # ------------------------------------------------------------------ #
    # query
    # ------------------------------------------------------------------ #
    def query_templates(
        self,
        topic_name: str,
        threshold: float,
        text_filter: Optional[str] = None,
        merge_wildcards: bool = True,
    ) -> List[TemplateGroup]:
        """Group the topic's records by template at a precision threshold.

        This is the paper's query path: records already carry the most
        precise template id, the threshold walks ancestors upward, and
        consecutive wildcards are merged for presentation.
        """
        return self._topics[topic_name].query_templates(
            threshold, text_filter=text_filter, merge_wildcards=merge_wildcards
        )

    def template_count(self, topic_name: str, threshold: float) -> int:
        """Number of distinct templates visible at a precision threshold."""
        return self._topics[topic_name].template_count(threshold)

    # ------------------------------------------------------------------ #
    # template library and alerting
    # ------------------------------------------------------------------ #
    def save_template_to_library(self, topic_name: str, label: str, template_id: int) -> None:
        """Save a template under a user-chosen label (§6 template library)."""
        self._topics[topic_name].save_template_to_library(label, template_id)

    def library_counts(self, topic_name: str) -> Dict[str, int]:
        """Record counts of every library template (alerting input)."""
        return self._topics[topic_name].library_counts()

    # ------------------------------------------------------------------ #
    # analytics (§6)
    # ------------------------------------------------------------------ #
    def detect_anomalies(
        self,
        topic_name: str,
        baseline_window: Tuple[float, float],
        current_window: Tuple[float, float],
    ) -> List[TemplateAnomaly]:
        """Template-count anomaly detection between two time windows."""
        engine = self._topics[topic_name]
        baseline_ids = [
            r.template_id
            for r in engine.topic.records_between(*baseline_window)
            if r.template_id is not None
        ]
        current_ids = [
            r.template_id
            for r in engine.topic.records_between(*current_window)
            if r.template_id is not None
        ]
        return self.anomaly_detector.detect(baseline_ids, current_ids)

    def compare_periods(
        self,
        topic_name: str,
        period_a: Tuple[float, float],
        period_b: Tuple[float, float],
    ):
        """Template-distribution comparison across two time periods."""
        engine = self._topics[topic_name]
        ids_a = [
            r.template_id
            for r in engine.topic.records_between(*period_a)
            if r.template_id is not None
        ]
        ids_b = [
            r.template_id
            for r in engine.topic.records_between(*period_b)
            if r.template_id is not None
        ]
        return compare_template_distributions(ids_a, ids_b)

    def match_failure_scenarios(self, topic_name: str, window: Tuple[float, float]):
        """Match the window's templates against the known-failure library."""
        engine = self._topics[topic_name]
        template_ids = {
            r.template_id
            for r in engine.topic.records_between(*window)
            if r.template_id is not None
        }
        templates: List[Template] = [
            engine.parser.model.get(tid) for tid in template_ids if tid in engine.parser.model
        ]
        return self.failure_library.match(templates)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def topic_stats(self, topic_name: str) -> Dict[str, float]:
        """Operational statistics for one topic (Table 5-style reporting)."""
        return self._topics[topic_name].stats()


@dataclass
class IngestionOutcomeWithTraining:
    """Ingestion outcome plus whether a training round was triggered."""

    outcome: IngestionOutcome
    trained: bool
