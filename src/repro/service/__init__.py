"""In-process simulation of the cloud log service (paper §3 and §6).

The paper deploys ByteBrain inside Volcano Engine's Torch Log Service (TLS).
This package reproduces the service surface the algorithm interacts with:

- :mod:`repro.service.topic` — append-only log topics with per-record
  template ids and a simple inverted text index,
- :mod:`repro.service.internal_topic` — the internal topic storing template
  metadata (text, saturation, parent links),
- :mod:`repro.service.scheduler` — volume/time-triggered periodic training,
- :mod:`repro.service.indexer` — the indexing pipeline online matching is
  embedded in,
- :mod:`repro.service.analytics` — template-based anomaly detection,
  period-over-period comparison and known-failure matching,
- :mod:`repro.service.engine` — the pure per-topic
  :class:`~repro.service.engine.TopicEngine` (ingest / train-round / swap /
  query logic, no threading),
- :mod:`repro.service.runtime` — the shard-partitioned async
  :class:`~repro.service.runtime.ShardedRuntime` (bounded queues,
  micro-batching, off-path training),
- :mod:`repro.service.service` — the tenant-facing :class:`LogParsingService`
  façade,
- :mod:`repro.service.wal` — per-shard write-ahead log (durable ingest),
- :mod:`repro.service.recovery` — crash recovery from snapshots + WAL replay,
- :mod:`repro.service.replication` — WAL segment shipping to a warm standby
  (:class:`~repro.service.replication.WalShipper` /
  :class:`~repro.service.replication.StandbyRuntime`) and promotion.
"""

from repro.service.engine import TopicEngine
from repro.service.replication import StandbyRuntime, WalShipper
from repro.service.runtime import ShardedRuntime
from repro.service.service import LogParsingService
from repro.service.topic import LogRecord, LogTopic
from repro.service.scheduler import SchedulerPolicy, TrainingScheduler

__all__ = [
    "LogParsingService",
    "LogRecord",
    "LogTopic",
    "SchedulerPolicy",
    "ShardedRuntime",
    "StandbyRuntime",
    "TopicEngine",
    "TrainingScheduler",
    "WalShipper",
]
