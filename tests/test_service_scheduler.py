"""Unit tests for the training scheduler (volume / time triggers, §3)."""

import pytest

from repro.service.scheduler import SchedulerPolicy, TrainingScheduler


class TestInitialTraining:
    def test_no_training_before_initial_volume(self):
        scheduler = TrainingScheduler(SchedulerPolicy(initial_volume_threshold=100))
        scheduler.record_ingested(99)
        assert not scheduler.should_train(now=0.0)

    def test_initial_volume_triggers_first_round(self):
        scheduler = TrainingScheduler(SchedulerPolicy(initial_volume_threshold=100))
        scheduler.record_ingested(100)
        assert scheduler.should_train(now=0.0)


class TestSteadyState:
    @pytest.fixture()
    def scheduler(self):
        scheduler = TrainingScheduler(
            SchedulerPolicy(volume_threshold=1000, time_interval_seconds=300, initial_volume_threshold=10)
        )
        scheduler.record_ingested(10)
        assert scheduler.should_train(0.0)
        scheduler.training_completed(now=0.0)
        return scheduler

    def test_volume_trigger(self, scheduler):
        scheduler.record_ingested(999)
        assert not scheduler.should_train(now=10.0)
        scheduler.record_ingested(1)
        assert scheduler.should_train(now=10.0)

    def test_time_trigger_requires_new_records(self, scheduler):
        assert not scheduler.should_train(now=10_000.0)
        scheduler.record_ingested(1)
        assert scheduler.should_train(now=10_000.0)

    def test_time_trigger_requires_elapsed_interval(self, scheduler):
        scheduler.record_ingested(5)
        assert not scheduler.should_train(now=100.0)
        assert scheduler.should_train(now=400.0)

    def test_training_completed_resets_counters(self, scheduler):
        scheduler.record_ingested(5000)
        scheduler.training_completed(now=50.0)
        assert scheduler.pending_records == 0
        assert scheduler.last_training_time == 50.0
        assert scheduler.training_rounds == 2
        assert not scheduler.should_train(now=60.0)

    def test_negative_ingest_count_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.record_ingested(-1)


class TestPolicyFromConfig:
    def test_no_overrides_reproduces_default(self):
        from repro.core.config import ByteBrainConfig

        policy = SchedulerPolicy.from_config(ByteBrainConfig())
        assert vars(policy) == vars(SchedulerPolicy())

    def test_overrides_apply_on_top_of_service_default(self):
        from repro.core.config import ByteBrainConfig

        default = SchedulerPolicy(
            volume_threshold=777, time_interval_seconds=60.0, initial_volume_threshold=11
        )
        config = ByteBrainConfig(train_volume_threshold=42)
        policy = SchedulerPolicy.from_config(config, default=default)
        assert policy.volume_threshold == 42
        assert policy.time_interval_seconds == 60.0
        assert policy.initial_volume_threshold == 11


class TestAsyncCompletion:
    def test_training_completed_keeps_pending_uncovered_records(self):
        scheduler = TrainingScheduler(
            SchedulerPolicy(volume_threshold=100, initial_volume_threshold=10)
        )
        scheduler.record_ingested(150)
        # An off-path round planned at watermark covers only 120 of them.
        scheduler.training_completed(now=5.0, mode="incremental", pending=30)
        assert scheduler.pending_records == 30

    def test_negative_pending_rejected(self):
        scheduler = TrainingScheduler()
        with pytest.raises(ValueError):
            scheduler.training_completed(now=1.0, pending=-1)
