"""LogMine: hierarchical clustering with iterative pattern merging.

Re-implementation of Hamooni et al., *LogMine: Fast Pattern Recognition for
Log Analytics* (CIKM 2016), reduced to its core loop: greedy clustering of
logs under a positional distance threshold, followed by pattern generation
(positional alignment) and a second, looser clustering level over the
generated patterns — the paper's "iterative clustering and merging".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import WILDCARD, BaselineParser

__all__ = ["LogMineParser"]


class LogMineParser(BaselineParser):
    """Greedy distance clustering with pattern merging (LogMine)."""

    name = "LogMine"

    def __init__(self, max_distance: float = 0.3, levels: int = 2, level_relaxation: float = 1.5) -> None:
        self.max_distance = max_distance
        self.levels = levels
        self.level_relaxation = level_relaxation

    def parse(self, lines: Sequence[str]) -> List[int]:
        token_lists = self.preprocess_many(lines)
        token_lists = [tokens if tokens else ["<empty>"] for tokens in token_lists]

        # Deduplicate exact token sequences to keep the O(n * clusters)
        # greedy loop tractable (the original batches identical messages too).
        unique: List[List[str]] = []
        counts: List[int] = []
        inverse: List[int] = []
        index_of: Dict[Tuple[str, ...], int] = {}
        for tokens in token_lists:
            key = tuple(tokens)
            idx = index_of.get(key)
            if idx is None:
                idx = len(unique)
                index_of[key] = idx
                unique.append(list(tokens))
                counts.append(0)
            counts[idx] += 1
            inverse.append(idx)

        assignment = list(range(len(unique)))
        patterns = [list(tokens) for tokens in unique]
        max_distance = self.max_distance
        for _ in range(self.levels):
            assignment, patterns = self._cluster_level(unique, assignment, patterns, max_distance)
            max_distance *= self.level_relaxation

        return [assignment[index_of[tuple(token_lists[i])]] for i in range(len(token_lists))]

    def _cluster_level(
        self,
        unique: List[List[str]],
        assignment: List[int],
        patterns: List[List[str]],
        max_distance: float,
    ) -> Tuple[List[int], List[List[str]]]:
        cluster_patterns: List[List[str]] = []
        remap: Dict[int, int] = {}
        for old_cluster in sorted(set(assignment)):
            pattern = patterns[old_cluster]
            target: Optional[int] = None
            for cluster_id, existing in enumerate(cluster_patterns):
                if len(existing) != len(pattern):
                    continue
                if self._distance(existing, pattern) <= max_distance:
                    target = cluster_id
                    break
            if target is None:
                cluster_patterns.append(list(pattern))
                target = len(cluster_patterns) - 1
            else:
                cluster_patterns[target] = self._merge(cluster_patterns[target], pattern)
            remap[old_cluster] = target
        new_assignment = [remap[cluster] for cluster in assignment]
        return new_assignment, cluster_patterns

    @staticmethod
    def _distance(a: Sequence[str], b: Sequence[str]) -> float:
        if not a:
            return 0.0
        same = sum(
            1 for token_a, token_b in zip(a, b) if token_a == token_b or WILDCARD in (token_a, token_b)
        )
        return 1.0 - same / len(a)

    @staticmethod
    def _merge(a: Sequence[str], b: Sequence[str]) -> List[str]:
        return [
            token_a if token_a == token_b else WILDCARD
            for token_a, token_b in zip(a, b)
        ]
