"""Benchmark: client-observed failover blackout under a primary kill.

PR 10 gave the front door an HA story: a warm standby tails the
primary's WAL over the shipper, a heartbeat watchdog promotes it when
the primary goes silent, and sessioned clients fail over and replay
idempotently.  This benchmark measures what that costs the caller: a
closed-loop sessioned producer streams batches against a real
``cli serve`` primary (a subprocess, so it can be SIGKILLed mid-stream)
while a warm auto-promote standby watches; the primary is killed and
three intervals are clocked per trial:

* **promotion_seconds** — kill to the standby answering ``role=primary``
  (failure detection + WAL catch-up + runtime construction),
* **blackout_seconds** — kill to the client's first post-kill ack (the
  window writes actually stall),
* the exactly-once audit — every acked record stored exactly once on
  the survivor, replays deduplicated, nothing lost or invented.

``--smoke --check-floor BENCH_failover.json`` is the CI gate form: the
hard criteria are correctness (zero loss, zero duplicates, a failover
actually observed); blackout is gated only against a conservative
ceiling — shared CI boxes make wall-clock a lousy tight gate.  Run
from the repo root::

    PYTHONPATH=src python benchmarks/bench_failover.py
"""

from __future__ import annotations

import argparse
import collections
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.service.client import IngestReport, ServiceClient

SRC = Path(__file__).resolve().parent.parent / "src"

DEFAULT_TRIALS = 5
SMOKE_TRIALS = 3
RECORDS_PER_BATCH = 50
PRE_KILL_BATCHES = 4  # acked batches banked before the kill
POST_KILL_BATCHES = 8  # batches that must land on the survivor
HEARTBEAT_INTERVAL = 0.1
HEARTBEAT_MISSES = 3

#: ``check_floor`` passes when the measured p50 blackout stays under
#: ``max(FLOOR_CEILING_SECONDS, FLOOR_MULTIPLE * reference p50)``.
FLOOR_CEILING_SECONDS = 10.0
FLOOR_MULTIPLE = 4.0

_BOOTS = iter(range(10**6))


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (seconds)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def _stats(samples: List[float]) -> Dict[str, float]:
    return {
        "count": len(samples),
        "mean_s": round(sum(samples) / len(samples), 3) if samples else 0.0,
        "p50_s": round(percentile(samples, 0.50), 3),
        "max_s": round(max(samples), 3) if samples else 0.0,
    }


def _spawn(tmp_path: Path, *argv: str):
    """Boot one ``cli serve`` flavour as a subprocess; (proc, port)."""
    ready = tmp_path / f"ready-{next(_BOOTS)}.txt"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}{env.get('PYTHONPATH', '')}".rstrip(
        os.pathsep
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--ready-file", str(ready), *argv],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 90.0
    while time.time() < deadline:
        if ready.exists() and ready.read_text().strip():
            return proc, int(ready.read_text().split()[1])
        if proc.poll() is not None:
            raise RuntimeError(f"server died during boot:\n{proc.stdout.read()}")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("server never wrote the ready file")


def _watch_promotion(port: int, out: dict) -> None:
    """Poll the standby until it answers ``role=primary``; record when."""
    deadline = time.time() + 120.0
    while time.time() < deadline:
        try:
            with ServiceClient("127.0.0.1", port, "bench") as probe:
                if probe.hello.get("role") == "primary":
                    out["promoted_at"] = time.perf_counter()
                    return
        except (ConnectionError, OSError):
            pass
        time.sleep(0.02)


def run_trial(backend: Optional[str], post_kill_batches: int) -> Dict[str, object]:
    with tempfile.TemporaryDirectory(prefix="bench-failover-") as tmp:
        root = Path(tmp)
        tenants_file = root / "tenants.json"
        tenants_file.write_text(
            json.dumps([{"name": "bench", "topics": ["app"]}]), encoding="utf-8"
        )
        primary_wal = root / "primary" / "wal"
        backend_args = ("--backend", backend) if backend else ()
        primary, primary_port = _spawn(
            root,
            "--store", str(root / "primary" / "store"),
            "--wal-dir", str(primary_wal),
            "--tenants", str(tenants_file), *backend_args,
        )
        standby, standby_port = _spawn(
            root,
            "--standby-of", str(primary_wal),
            "--standby-dir", str(root / "standby"),
            "--tenants", str(tenants_file), *backend_args,
            "--primary-addr", f"127.0.0.1:{primary_port}",
            "--auto-promote",
            "--heartbeat-interval", str(HEARTBEAT_INTERVAL),
            "--heartbeat-misses", str(HEARTBEAT_MISSES),
        )
        try:
            client = ServiceClient(
                "127.0.0.1", primary_port, "bench",
                endpoints=[("127.0.0.1", primary_port),
                           ("127.0.0.1", standby_port)],
                producer_id="bench-producer", reconnect_attempts=60,
                reconnect_backoff=0.02, reconnect_backoff_max=0.5, seed=7,
            )
            report = IngestReport()
            acked: List[str] = []
            total_batches = PRE_KILL_BATCHES + post_kill_batches
            for batch in range(PRE_KILL_BATCHES):
                raws = [f"bench batch {batch} record {i}"
                        for i in range(RECORDS_PER_BATCH)]
                client.ingest("app", raws, timestamp=float(batch), report=report)
                acked.extend(raws)

            promo: dict = {}
            watcher = threading.Thread(
                target=_watch_promotion, args=(standby_port, promo),
                daemon=True,
            )
            primary.send_signal(signal.SIGKILL)
            killed = time.perf_counter()
            primary.wait(timeout=30.0)
            watcher.start()

            first_post_kill_ack: Optional[float] = None
            for batch in range(PRE_KILL_BATCHES, total_batches):
                raws = [f"bench batch {batch} record {i}"
                        for i in range(RECORDS_PER_BATCH)]
                client.ingest("app", raws, timestamp=float(batch), report=report)
                if first_post_kill_ack is None:
                    first_post_kill_ack = time.perf_counter()
                acked.extend(raws)
            watcher.join(timeout=120.0)

            # Exactly-once audit on the survivor.
            client.drain()
            stored = int(client.topic_stats("app")["n_records"])
            fetched = client.call(
                "analytics", topic="app", kind="drill_down",
                start_time=-1.0, end_time=1e9, limit=len(acked) * 2,
            )["records"]
            counts = collections.Counter(r["raw"] for r in fetched)
            duplicates = sum(n - 1 for n in counts.values() if n > 1)
            missing = sum(1 for raw in acked if raw not in counts)
            client.close()
            return {
                "blackout_seconds": (first_post_kill_ack or killed) - killed,
                "promotion_seconds": (
                    promo["promoted_at"] - killed if "promoted_at" in promo
                    else None
                ),
                "acked": report.accepted,
                "stored": stored,
                "duplicates": duplicates,
                "missing": missing,
                "failovers": report.failovers,
                "replayed": report.replayed,
                "deduped": report.deduped,
            }
        finally:
            for proc in (primary, standby):
                if proc.poll() is None:
                    proc.terminate()
                    try:
                        proc.wait(timeout=60.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait(timeout=30.0)


def run_phase(trials: int, backend: Optional[str],
              post_kill_batches: int) -> Dict[str, object]:
    results = []
    for trial in range(trials):
        result = run_trial(backend, post_kill_batches)
        print(
            f"  trial {trial + 1}/{trials}: blackout "
            f"{result['blackout_seconds']:.3f}s, promotion "
            f"{result['promotion_seconds']:.3f}s, "
            f"{result['stored']}/{result['acked']} stored, "
            f"{result['duplicates']} dups, {result['missing']} missing",
            flush=True,
        )
        results.append(result)
    return {
        "trials": trials,
        "blackout": _stats([r["blackout_seconds"] for r in results]),
        "promotion": _stats(
            [r["promotion_seconds"] for r in results
             if r["promotion_seconds"] is not None]
        ),
        "failovers_observed": sum(1 for r in results if r["failovers"] >= 1),
        "total_acked": sum(r["acked"] for r in results),
        "total_stored": sum(r["stored"] for r in results),
        "total_duplicates": sum(r["duplicates"] for r in results),
        "total_missing": sum(r["missing"] for r in results),
    }


def check_floor(report: Dict[str, object], reference_path: Path) -> int:
    """CI gate: correctness criteria + a conservative blackout ceiling."""
    reference = json.loads(reference_path.read_text())
    reference_p50 = float(reference["failover"]["blackout"]["p50_s"])
    ceiling = max(FLOOR_CEILING_SECONDS, reference_p50 * FLOOR_MULTIPLE)
    measured = float(report["failover"]["blackout"]["p50_s"])
    print(
        f"failover floor check: measured p50 blackout {measured:.3f}s vs "
        f"ceiling {ceiling:.1f}s (= max({FLOOR_CEILING_SECONDS:.0f}, "
        f"{FLOOR_MULTIPLE} * reference {reference_p50:.3f}))"
    )
    failed = False
    if measured > ceiling:
        print("FAIL: failover blackout regressed above the ceiling")
        failed = True
    for criterion in ("every_trial_failed_over", "no_acked_loss",
                      "no_duplicates"):
        if not report["summary"].get(criterion, False):
            print(f"FAIL: criterion {criterion} not met")
            failed = True
    if failed:
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=None)
    parser.add_argument("--post-kill-batches", type=int,
                        default=POST_KILL_BATCHES)
    parser.add_argument("--backend", choices=["thread", "process"], default=None,
                        help="shard backend (default: REPRO_SHARD_BACKEND or thread)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer trials)")
    parser.add_argument("--check-floor", type=Path, default=None,
                        metavar="REFERENCE_JSON",
                        help="gate against a reference BENCH_failover.json")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the report JSON here")
    args = parser.parse_args()
    trials = args.trials or (SMOKE_TRIALS if args.smoke else DEFAULT_TRIALS)

    print(
        f"failover bench: {trials} kill-the-primary trials, heartbeat "
        f"{HEARTBEAT_INTERVAL}s x {HEARTBEAT_MISSES} misses, backend "
        f"{args.backend or 'thread'}",
        flush=True,
    )
    failover = run_phase(trials, args.backend, args.post_kill_batches)
    print(
        f"  blackout p50/max: {failover['blackout']['p50_s']}/"
        f"{failover['blackout']['max_s']} s, promotion p50: "
        f"{failover['promotion']['p50_s']} s",
        flush=True,
    )

    report = {
        "benchmark": "failover",
        "smoke": bool(args.smoke),
        "backend": args.backend or "thread",
        "records_per_batch": RECORDS_PER_BATCH,
        "pre_kill_batches": PRE_KILL_BATCHES,
        "post_kill_batches": args.post_kill_batches,
        "heartbeat_interval": HEARTBEAT_INTERVAL,
        "heartbeat_misses": HEARTBEAT_MISSES,
        "failover": failover,
        "summary": {
            "every_trial_failed_over":
                failover["failovers_observed"] == failover["trials"],
            "no_acked_loss": failover["total_missing"] == 0
            and failover["total_stored"] == failover["total_acked"],
            "no_duplicates": failover["total_duplicates"] == 0,
            "blackout_p50_s": failover["blackout"]["p50_s"],
        },
    }
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=1) + "\n")
        print(f"wrote {args.output}")
    if args.check_floor is not None:
        return check_floor(report, args.check_floor)
    if not all(
        report["summary"][k]
        for k in ("every_trial_failed_over", "no_acked_loss", "no_duplicates")
    ):
        print("FAIL: correctness criteria not met")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
