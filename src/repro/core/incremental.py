"""Incremental training: maintain the model under updates instead of
recomputing it (paper §3, §6 production story).

The offline round of the paper re-clusters the whole corpus; under heavy
ingest that makes training cost O(corpus) per round.  The
:class:`IncrementalTrainer` instead runs each round over only the records
ingested *since the last round*:

1. **novelty filter** — the delta is deduplicated and matched against a
   clone of the live model with the vectorised
   :class:`~repro.core.matcher.TemplateMatchIndex`; records the model
   already explains just bump the weight of their template (no clustering),
2. **residual clustering** — only the unexplained residue goes through the
   full :class:`~repro.core.trainer.OfflineTrainer` pipeline,
3. **saturation-weighted merge** — the residue's templates are folded into
   the clone via :meth:`ParserModel.merge_from` (weighted saturation, tree
   re-linking, stable ids),
4. **drift policy** — when merge quality degrades (too many residue
   templates insert instead of merging, or the model ballooned since the
   last full round) the round escalates to a full retrain over the whole
   corpus, still merged into the clone so template ids stay stable.

Every round returns a *new* :class:`ParserModel`; the live model is never
mutated, which is what lets the service hot-swap the result atomically
while queries keep hitting the old version (zero-downtime rounds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import ByteBrainConfig
from repro.core.dedup import deduplicate_raw
from repro.core.matcher import TemplateMatchIndex
from repro.core.model import ParserModel
from repro.core.trainer import OfflineTrainer, Preprocessor, TrainingResult

__all__ = ["DriftPolicy", "IncrementalRound", "IncrementalTrainer"]

#: A provider of the full raw corpus, called only when a round escalates to
#: a full retrain (so the caller never materialises the corpus otherwise).
CorpusProvider = Callable[[], Sequence[str]]


@dataclass
class DriftPolicy:
    """When an incremental round must escalate to a full retrain."""

    #: Escalate when more than this fraction of the residue's templates
    #: insert as new instead of merging into existing ones (the merge is no
    #: longer absorbing drift).
    max_insert_ratio: float = 0.75
    #: Escalate when the model holds more than ``max_growth_factor`` times
    #: the templates it had after the last full round.  Note the escalated
    #: round merges the retrain into the live model (stable ids), so it
    #: re-consolidates structure but never evicts templates — the check
    #: re-baselines at the post-round count; actual eviction of dead
    #: templates would require re-mapping stored records and is future work.
    max_growth_factor: float = 4.0
    #: Force a full retrain every N incremental rounds (0 disables the
    #: periodic escalation).
    full_retrain_every: int = 0
    #: Residue templates below this count never trigger the insert-ratio
    #: escalation (tiny residues are statistically meaningless).
    min_residue_templates: int = 8
    #: A delta record only counts as *explained* when its matched template's
    #: saturation reaches this value.  Coarse wildcard-heavy internal nodes
    #: absorb genuinely novel lines of the same token count; records they
    #: caught are re-clustered so the round actually learns the new
    #: structure (leaves sit near saturation 1.0, absorbing internal nodes
    #: well below it).
    min_reuse_saturation: float = 0.9


@dataclass
class IncrementalRound:
    """Outcome of one training round (incremental or escalated)."""

    #: The new model — a merged clone; the previous live model is untouched.
    model: ParserModel
    #: ``"initial"`` (first round), ``"incremental"`` or ``"full"``.
    mode: str
    #: Why the round ran in this mode (e.g. ``"drift: insert ratio 0.82"``).
    reason: str
    n_delta_records: int
    #: Delta records the live model already explained (novelty filter hits).
    n_reused: int
    #: Delta records that went through clustering.
    n_clustered: int
    n_templates_merged: int
    n_templates_inserted: int
    #: Mapping from the round-local template ids to ids in ``model``.
    id_map: Dict[int, int] = field(default_factory=dict)
    #: Token tuple -> template id in ``model`` for newly clustered records
    #: (delta additions to the parser's training assignments).
    training_assignments: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    duration_seconds: float = 0.0
    #: The underlying offline training result (residue or full corpus);
    #: ``None`` when the whole delta was explained by the live model.
    training: Optional[TrainingResult] = None


class IncrementalTrainer:
    """Maintains a :class:`ParserModel` under a stream of new records."""

    def __init__(
        self,
        config: Optional[ByteBrainConfig] = None,
        drift_policy: Optional[DriftPolicy] = None,
    ) -> None:
        self.config = config or ByteBrainConfig()
        self.drift_policy = drift_policy or DriftPolicy()
        self.preprocessor = Preprocessor(self.config)
        self._rounds_since_full = 0
        self._templates_at_last_full = 0

    # ------------------------------------------------------------------ #
    # the round
    # ------------------------------------------------------------------ #
    def round(
        self,
        live_model: Optional[ParserModel],
        delta_logs: Sequence[str],
        delta_template_ids: Optional[Sequence[Optional[int]]] = None,
        full_corpus: Optional[CorpusProvider] = None,
        force_full: bool = False,
    ) -> IncrementalRound:
        """Run one training round and return the new model.

        Parameters
        ----------
        live_model:
            The currently served model, or ``None``/empty before the first
            round.  Never mutated.
        delta_logs:
            Raw records ingested since the last round.
        delta_template_ids:
            Per-delta-record template id assigned at ingestion time, when
            the caller (the indexing pipeline) already matched each record
            on the ingest path.  Records resolved to a trained template are
            reused without touching them again; only records that were
            unmatched (``None``) or fell back to a temporary template form
            the clustering residue.  Without it the round matches the delta
            itself through the vectorised index.
        full_corpus:
            Callable returning the whole corpus; required for drift
            escalation and forced full rounds (falls back to the delta when
            absent).
        force_full:
            Skip the incremental path entirely (caller-driven escalation,
            e.g. a scheduler's periodic full round).
        """
        start = time.perf_counter()
        if live_model is None or len(live_model) == 0:
            return self._full_round(live_model, delta_logs, full_corpus, start, mode="initial", reason="first round")
        if force_full:
            return self._full_round(live_model, delta_logs, full_corpus, start, mode="full", reason="forced by caller")
        if (
            self.drift_policy.full_retrain_every > 0
            and self._rounds_since_full >= self.drift_policy.full_retrain_every
        ):
            return self._full_round(
                live_model, delta_logs, full_corpus, start,
                mode="full", reason=f"periodic: every {self.drift_policy.full_retrain_every} rounds",
            )

        model = live_model.clone()
        reused_raws, residue_raws = self._split_by_novelty(
            model, delta_logs, delta_template_ids
        )

        if not residue_raws:
            self._rounds_since_full += 1
            return IncrementalRound(
                model=model,
                mode="incremental",
                reason="delta fully explained by live model",
                n_delta_records=len(delta_logs),
                n_reused=len(reused_raws),
                n_clustered=0,
                n_templates_merged=0,
                n_templates_inserted=0,
                duration_seconds=time.perf_counter() - start,
            )

        result = OfflineTrainer(self.config).train(residue_raws)
        id_map, merged, inserted, assignments = self._merge_training_result(model, result)
        insert_ratio = inserted / max(1, len(result.model))

        escalation = self._drift_reason(model, result, insert_ratio)
        if escalation is not None:
            if full_corpus is not None:
                return self._full_round(
                    live_model, delta_logs, full_corpus, start, mode="full", reason=escalation
                )
            # No corpus provider: the incremental result stands, but the
            # round must report the detected drift, not claim health.
            reason = f"{escalation} — no corpus provider, staying incremental"
        else:
            reason = "merge quality within drift policy"

        self._rounds_since_full += 1
        return IncrementalRound(
            model=model,
            mode="incremental",
            reason=reason,
            n_delta_records=len(delta_logs),
            n_reused=len(reused_raws),
            n_clustered=len(residue_raws),
            n_templates_merged=merged,
            n_templates_inserted=inserted,
            id_map=id_map,
            training_assignments=assignments,
            duration_seconds=time.perf_counter() - start,
            training=result,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _split_by_novelty(
        self,
        model: ParserModel,
        delta_logs: Sequence[str],
        delta_template_ids: Optional[Sequence[Optional[int]]] = None,
    ) -> Tuple[List[str], List[str]]:
        """Partition the delta into (explained, residue) raw records.

        Explained records bump their matched template's weight on ``model``
        (the clone), which feeds the saturation-weighted merge.  With
        ingest-time assignments the split is a pure id lookup — the round
        never re-preprocesses records the pipeline already matched, which
        is where the O(delta-novelty) round cost comes from.
        """
        min_saturation = self.drift_policy.min_reuse_saturation
        if delta_template_ids is not None:
            reused: List[str] = []
            residue: List[str] = []
            for raw, template_id in zip(delta_logs, delta_template_ids):
                if template_id is not None and template_id in model:
                    template = model.get(template_id)
                    if not template.is_temporary and template.saturation >= min_saturation:
                        template.weight += 1
                        reused.append(raw)
                        continue
                residue.append(raw)
            return reused, residue

        unique_raw, counts, _ = deduplicate_raw(delta_logs)
        tuples = [
            tokens if tokens else ("<empty>",)
            for tokens in self.preprocessor.process_many(unique_raw)
        ]
        index = TemplateMatchIndex(model)
        ids = index.match_batch(
            tuples,
            block_bytes=self.config.match_block_bytes,
            prune=self.config.candidate_pruning_enabled,
        )

        reused = []
        residue = []
        for raw, count, template_id in zip(unique_raw, counts, ids):
            template = model.get(template_id) if template_id is not None else None
            if template is None or template.is_temporary or template.saturation < min_saturation:
                residue.extend([raw] * count)
            else:
                template.weight += count
                reused.extend([raw] * count)
        return reused, residue

    def _merge_training_result(
        self, model: ParserModel, result: TrainingResult
    ) -> Tuple[Dict[int, int], int, int, Dict[Tuple[str, ...], int]]:
        """Fold a training result into ``model`` (saturation-weighted).

        Returns ``(id_map, n_merged, n_inserted, remapped_assignments)`` —
        the one place the merge bookkeeping lives, shared by the
        incremental and full round paths.
        """
        before = len(model)
        id_map = model.merge_from(
            result.model, self.config.model_merge_similarity, weighted_saturation=True
        )
        inserted = len(model) - before
        merged = len(result.model) - inserted
        assignments = {
            tokens: id_map[tid] for tokens, tid in result.training_assignments.items()
        }
        return id_map, merged, inserted, assignments

    def _drift_reason(
        self, model: ParserModel, result: TrainingResult, insert_ratio: float
    ) -> Optional[str]:
        policy = self.drift_policy
        if (
            len(result.model) >= policy.min_residue_templates
            and insert_ratio > policy.max_insert_ratio
        ):
            return f"drift: insert ratio {insert_ratio:.2f} > {policy.max_insert_ratio}"
        if (
            self._templates_at_last_full > 0
            and len(model) > policy.max_growth_factor * self._templates_at_last_full
        ):
            return (
                f"drift: model grew to {len(model)} templates "
                f"(> {policy.max_growth_factor}x the last full round)"
            )
        return None

    def _full_round(
        self,
        live_model: Optional[ParserModel],
        delta_logs: Sequence[str],
        full_corpus: Optional[CorpusProvider],
        start: float,
        mode: str,
        reason: str,
    ) -> IncrementalRound:
        """Cluster the whole corpus; merge into a clone so ids stay stable."""
        corpus = list(full_corpus()) if full_corpus is not None else list(delta_logs)
        if not corpus:
            corpus = list(delta_logs)
        result = OfflineTrainer(self.config).train(corpus)
        if live_model is None or len(live_model) == 0:
            model = result.model
            id_map = {t.template_id: t.template_id for t in model.templates()}
            merged, inserted = 0, len(model)
            assignments = dict(result.training_assignments)
        else:
            model = live_model.clone()
            id_map, merged, inserted, assignments = self._merge_training_result(model, result)
        self._rounds_since_full = 0
        self._templates_at_last_full = len(model)
        return IncrementalRound(
            model=model,
            mode=mode,
            reason=reason,
            n_delta_records=len(delta_logs),
            n_reused=0,
            n_clustered=len(corpus),
            n_templates_merged=merged,
            n_templates_inserted=inserted,
            id_map=id_map,
            training_assignments=assignments,
            duration_seconds=time.perf_counter() - start,
            training=result,
        )
