"""Tenant-facing log parsing service (paper §3 system design, §6 deployment).

:class:`LogParsingService` ties everything together per topic:

* an append-only :class:`~repro.service.topic.LogTopic` holding records and
  their template ids,
* a :class:`~repro.core.parser.ByteBrainParser` trained periodically by a
  :class:`~repro.service.scheduler.TrainingScheduler`,
* an :class:`~repro.service.internal_topic.InternalTemplateTopic` recording
  template metadata after every round,
* query-time precision adjustment (the web UI's "precision slider"),
* a per-topic template library usable for alerting, and
* the analytics features of §6 (anomaly detection, period comparison,
  failure-scenario matching).

Time is always passed in explicitly so the service is deterministic in tests
and benchmarks; production would pass wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ByteBrainConfig
from repro.core.parser import ByteBrainParser
from repro.core.query import TemplateGroup
from repro.core.model import Template
from repro.service.analytics import (
    FailureScenarioLibrary,
    TemplateAnomaly,
    TemplateAnomalyDetector,
    compare_template_distributions,
)
from repro.service.indexer import IndexingPipeline, IngestionOutcome
from repro.service.internal_topic import InternalTemplateTopic
from repro.service.scheduler import SchedulerPolicy, TrainingScheduler
from repro.service.topic import LogTopic

__all__ = ["TopicState", "LogParsingService"]


@dataclass
class TopicState:
    """Everything the service keeps per log topic."""

    topic: LogTopic
    parser: ByteBrainParser
    scheduler: TrainingScheduler
    pipeline: IndexingPipeline
    internal_topic: InternalTemplateTopic
    template_library: Dict[str, int] = field(default_factory=dict)
    pending_training: List[str] = field(default_factory=list)


class LogParsingService:
    """Multi-topic, multi-tenant log parsing service (in-process simulation)."""

    def __init__(
        self,
        config: Optional[ByteBrainConfig] = None,
        scheduler_policy: Optional[SchedulerPolicy] = None,
    ) -> None:
        self.config = config or ByteBrainConfig()
        self.scheduler_policy = scheduler_policy or SchedulerPolicy()
        self._topics: Dict[str, TopicState] = {}
        self.failure_library = FailureScenarioLibrary()
        self.anomaly_detector = TemplateAnomalyDetector()

    # ------------------------------------------------------------------ #
    # topic lifecycle
    # ------------------------------------------------------------------ #
    def create_topic(self, name: str, config: Optional[ByteBrainConfig] = None) -> TopicState:
        """Create a log topic (errors if it already exists)."""
        if name in self._topics:
            raise ValueError(f"topic {name!r} already exists")
        topic = LogTopic(name)
        parser = ByteBrainParser(config or self.config)
        scheduler = TrainingScheduler(SchedulerPolicy(**vars(self.scheduler_policy)))
        pipeline = IndexingPipeline(topic, scheduler)
        state = TopicState(
            topic=topic,
            parser=parser,
            scheduler=scheduler,
            pipeline=pipeline,
            internal_topic=InternalTemplateTopic(name),
        )
        self._topics[name] = state
        return state

    def topic_names(self) -> List[str]:
        """Names of all existing topics."""
        return list(self._topics)

    def topic(self, name: str) -> TopicState:
        """Fetch a topic's state (KeyError if unknown)."""
        return self._topics[name]

    def drop_topic(self, name: str) -> None:
        """Delete a topic and everything associated with it."""
        del self._topics[name]

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, topic_name: str, raw: str, now: float) -> IngestionOutcomeWithTraining:
        """Ingest one record; runs a training round first if the scheduler says so."""
        state = self._topics[topic_name]
        trained = self.maybe_train(topic_name, now)
        outcome = state.pipeline.ingest(raw, timestamp=now)
        state.pending_training.append(raw)
        if outcome.is_new_template and outcome.template_id is not None:
            state.internal_topic.publish_template(state.parser.model.get(outcome.template_id))
        return IngestionOutcomeWithTraining(outcome=outcome, trained=trained)

    def ingest_batch(self, topic_name: str, raws: Sequence[str], now: float) -> int:
        """Ingest a batch of records at one timestamp; returns count stored.

        The whole batch flows through the pipeline's batched match engine
        (one deduplicated, length-bucketed broadcast match call) instead of
        per-record ingestion.  Scheduler triggers are checked before and
        after the batch, so volume thresholds crossed mid-batch still fire
        at batch granularity — the same behaviour the paper's ingestion
        buffers exhibit.
        """
        if not raws:
            return 0
        state = self._topics[topic_name]
        self.maybe_train(topic_name, now)
        outcomes = state.pipeline.ingest_batch(raws, timestamp=now)
        state.pending_training.extend(raws)
        for outcome in outcomes:
            if outcome.is_new_template and outcome.template_id is not None:
                state.internal_topic.publish_template(state.parser.model.get(outcome.template_id))
        self.maybe_train(topic_name, now)
        return len(raws)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def maybe_train(self, topic_name: str, now: float) -> bool:
        """Run a training round if the scheduler's trigger condition holds."""
        state = self._topics[topic_name]
        if not state.scheduler.should_train(now):
            return False
        self.train_now(topic_name, now)
        return True

    def train_now(self, topic_name: str, now: float) -> None:
        """Force a training round on whatever has accumulated."""
        state = self._topics[topic_name]
        batch = state.pending_training or [record.raw for record in state.topic.records()]
        if not batch:
            return
        state.parser.train(batch)
        state.pending_training = []
        state.scheduler.training_completed(now)
        state.internal_topic.publish_model(state.parser.model)
        state.pipeline.attach_matcher(state.parser.matcher)
        state.pipeline.backfill_templates(state.parser.matcher)

    # ------------------------------------------------------------------ #
    # query
    # ------------------------------------------------------------------ #
    def query_templates(
        self,
        topic_name: str,
        threshold: float,
        text_filter: Optional[str] = None,
        merge_wildcards: bool = True,
    ) -> List[TemplateGroup]:
        """Group the topic's records by template at a precision threshold.

        This is the paper's query path: records already carry the most
        precise template id, the threshold walks ancestors upward, and
        consecutive wildcards are merged for presentation.
        """
        state = self._topics[topic_name]
        if text_filter:
            records = state.topic.search_text(text_filter)
        else:
            records = state.topic.records()
        template_ids = [r.template_id for r in records if r.template_id is not None]
        return state.parser.query_engine.group_records(
            template_ids, threshold, merge_wildcards=merge_wildcards
        )

    def template_count(self, topic_name: str, threshold: float) -> int:
        """Number of distinct templates visible at a precision threshold."""
        state = self._topics[topic_name]
        return len(state.parser.model.templates_at_threshold(threshold))

    # ------------------------------------------------------------------ #
    # template library and alerting
    # ------------------------------------------------------------------ #
    def save_template_to_library(self, topic_name: str, label: str, template_id: int) -> None:
        """Save a template under a user-chosen label (§6 template library)."""
        state = self._topics[topic_name]
        if template_id not in state.parser.model:
            raise KeyError(f"template {template_id} does not exist in topic {topic_name!r}")
        state.template_library[label] = template_id

    def library_counts(self, topic_name: str) -> Dict[str, int]:
        """Record counts of every library template (alerting input)."""
        state = self._topics[topic_name]
        counts = state.topic.template_counts()
        result: Dict[str, int] = {}
        for label, template_id in state.template_library.items():
            total = counts.get(template_id, 0)
            for descendant in state.parser.model.descendants(template_id):
                total += counts.get(descendant.template_id, 0)
            result[label] = total
        return result

    # ------------------------------------------------------------------ #
    # analytics (§6)
    # ------------------------------------------------------------------ #
    def detect_anomalies(
        self,
        topic_name: str,
        baseline_window: Tuple[float, float],
        current_window: Tuple[float, float],
    ) -> List[TemplateAnomaly]:
        """Template-count anomaly detection between two time windows."""
        state = self._topics[topic_name]
        baseline_ids = [
            r.template_id
            for r in state.topic.records_between(*baseline_window)
            if r.template_id is not None
        ]
        current_ids = [
            r.template_id
            for r in state.topic.records_between(*current_window)
            if r.template_id is not None
        ]
        return self.anomaly_detector.detect(baseline_ids, current_ids)

    def compare_periods(
        self,
        topic_name: str,
        period_a: Tuple[float, float],
        period_b: Tuple[float, float],
    ):
        """Template-distribution comparison across two time periods."""
        state = self._topics[topic_name]
        ids_a = [
            r.template_id
            for r in state.topic.records_between(*period_a)
            if r.template_id is not None
        ]
        ids_b = [
            r.template_id
            for r in state.topic.records_between(*period_b)
            if r.template_id is not None
        ]
        return compare_template_distributions(ids_a, ids_b)

    def match_failure_scenarios(self, topic_name: str, window: Tuple[float, float]):
        """Match the window's templates against the known-failure library."""
        state = self._topics[topic_name]
        template_ids = {
            r.template_id
            for r in state.topic.records_between(*window)
            if r.template_id is not None
        }
        templates: List[Template] = [
            state.parser.model.get(tid) for tid in template_ids if tid in state.parser.model
        ]
        return self.failure_library.match(templates)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def topic_stats(self, topic_name: str) -> Dict[str, float]:
        """Operational statistics for one topic (Table 5-style reporting)."""
        state = self._topics[topic_name]
        model_stats = state.parser.model.stats()
        return {
            "n_records": float(len(state.topic)),
            "raw_bytes": float(state.topic.size_bytes()),
            "n_templates": float(model_stats["n_templates"]),
            "model_size_bytes": float(model_stats["size_bytes"]),
            "training_rounds": float(state.scheduler.training_rounds),
        }


@dataclass
class IngestionOutcomeWithTraining:
    """Ingestion outcome plus whether a training round was triggered."""

    outcome: IngestionOutcome
    trained: bool
