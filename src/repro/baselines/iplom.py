"""IPLoM: Iterative Partitioning Log Mining.

Re-implementation of Makanju et al., *Clustering Event Logs Using Iterative
Partitioning* (KDD 2009).  Three partitioning steps are applied in sequence:

1. partition by token count,
2. partition by the token at the position with the fewest distinct values,
3. partition by the relationship (bijection or not) between the two most
   variable remaining positions — reduced here to partitioning by the token
   pair at those positions when neither looks like a pure variable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.baselines.base import BaselineParser

__all__ = ["IPLoMParser"]


class IPLoMParser(BaselineParser):
    """Iterative-partitioning parser (IPLoM)."""

    name = "IPLoM"

    def __init__(self, partition_support_threshold: float = 0.05, upper_bound: float = 0.9) -> None:
        self.partition_support_threshold = partition_support_threshold
        self.upper_bound = upper_bound

    def parse(self, lines: Sequence[str]) -> List[int]:
        token_lists = self.preprocess_many(lines)
        token_lists = [tokens if tokens else ["<empty>"] for tokens in token_lists]

        # Step 1: partition by token count.
        partitions: Dict[Tuple, List[int]] = defaultdict(list)
        for index, tokens in enumerate(token_lists):
            partitions[(len(tokens),)].append(index)

        # Step 2: split each partition by the least-variable position.
        partitions = self._split_all(partitions, token_lists, step=2)
        # Step 3: split by the token pair at the two most variable positions
        # when they do not look like free variables.
        partitions = self._split_all(partitions, token_lists, step=3)

        assignment = [0] * len(token_lists)
        for group_id, indices in enumerate(partitions.values()):
            for index in indices:
                assignment[index] = group_id
        return assignment

    def _split_all(
        self,
        partitions: Dict[Tuple, List[int]],
        token_lists: List[List[str]],
        step: int,
    ) -> Dict[Tuple, List[int]]:
        result: Dict[Tuple, List[int]] = {}
        for key, indices in partitions.items():
            if len(indices) <= 1:
                result[key] = indices
                continue
            splits = self._split_partition(indices, token_lists, step)
            for sub_key, sub_indices in splits.items():
                result[key + (step, sub_key)] = sub_indices
        return result

    def _split_partition(
        self, indices: List[int], token_lists: List[List[str]], step: int
    ) -> Dict[object, List[int]]:
        n_positions = len(token_lists[indices[0]])
        if n_positions == 0:
            return {"": indices}
        distinct_per_position = [
            len({token_lists[i][pos] for i in indices}) for pos in range(n_positions)
        ]
        if step == 2:
            # Choose the position with the fewest (but >1 if possible) values.
            candidates = [
                (count, pos) for pos, count in enumerate(distinct_per_position) if count > 1
            ]
            if not candidates:
                return {"": indices}
            count, position = min(candidates)
            if count > max(2, self.partition_support_threshold * len(indices)) and (
                count / len(indices) > self.upper_bound
            ):
                return {"": indices}
            return self._bucket(indices, token_lists, [position])
        # Step 3: the two most variable positions, skipped when either looks
        # like a pure variable (distinct count close to partition size).
        ranked = sorted(range(n_positions), key=lambda pos: -distinct_per_position[pos])
        chosen = [pos for pos in ranked if 1 < distinct_per_position[pos] <= self.upper_bound * len(indices)][:2]
        if len(chosen) < 2:
            return {"": indices}
        return self._bucket(indices, token_lists, chosen)

    @staticmethod
    def _bucket(
        indices: List[int], token_lists: List[List[str]], positions: List[int]
    ) -> Dict[object, List[int]]:
        buckets: Dict[object, List[int]] = defaultdict(list)
        for index in indices:
            key = tuple(token_lists[index][pos] for pos in positions)
            buckets[key].append(index)
        return buckets
