"""Unit tests for the internal template-metadata topic."""

from repro.core.model import ParserModel, Template
from repro.service.internal_topic import InternalTemplateTopic

WILD = "<*>"


def build_model():
    model = ParserModel()
    model.add_template(Template(0, ("job", WILD), 0.5, None, 0))
    model.add_template(Template(1, ("job", "started"), 1.0, 0, 1))
    return model


class TestInternalTemplateTopic:
    def test_publish_model_appends_every_template(self):
        topic = InternalTemplateTopic("jobs")
        round_number = topic.publish_model(build_model())
        assert round_number == 1
        assert len(topic) == 2
        assert topic.training_rounds == 1

    def test_latest_reflects_most_recent_round(self):
        topic = InternalTemplateTopic("jobs")
        model = build_model()
        topic.publish_model(model)
        # Second round: saturation of template 0 changes.
        model.get(0).saturation = 0.6
        topic.publish_model(model)
        latest = topic.latest()
        assert latest[0].saturation == 0.6
        assert latest[0].training_round == 2
        assert len(topic) == 4

    def test_publish_single_template(self):
        topic = InternalTemplateTopic("jobs")
        topic.publish_model(build_model())
        temporary = Template(7, ("brand", "new", "shape"), 1.0, None, 0, is_temporary=True)
        topic.publish_template(temporary)
        assert topic.latest()[7].is_temporary

    def test_lineage_follows_parent_links(self):
        topic = InternalTemplateTopic("jobs")
        topic.publish_model(build_model())
        lineage = topic.lineage(1)
        assert [entry.template_id for entry in lineage] == [0]

    def test_lineage_of_root_is_empty(self):
        topic = InternalTemplateTopic("jobs")
        topic.publish_model(build_model())
        assert topic.lineage(0) == []
