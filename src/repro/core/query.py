"""Query-time precision adjustment and result grouping (paper §3 "Query", §7).

Every stored log carries the id of the *most precise* template it matched at
ingestion time.  At query time the user supplies a saturation threshold (the
"precision slider"); the engine walks each template's ancestor chain upward
to the coarsest template still satisfying the threshold, groups the results
by that template, and optionally collapses consecutive wildcards so
variable-length lists present as a single intuitive template.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.model import ParserModel, Template, merge_consecutive_wildcards

__all__ = ["TemplateGroup", "QueryEngine"]


@dataclass
class TemplateGroup:
    """One group of query results sharing a (threshold-adjusted) template."""

    display_text: str
    template_ids: List[int] = field(default_factory=list)
    record_indices: List[int] = field(default_factory=list)
    saturation: float = 0.0

    @property
    def count(self) -> int:
        """Number of records in the group."""
        return len(self.record_indices)


class QueryEngine:
    """Precision-adjustable grouping over matched template ids."""

    def __init__(self, model: ParserModel) -> None:
        self.model = model

    def resolve(self, template_id: int, threshold: float) -> Template:
        """Coarsest ancestor of ``template_id`` meeting the threshold (§3)."""
        return self.model.resolve_threshold(template_id, threshold)

    def group_records(
        self,
        template_ids: Sequence[int],
        threshold: float,
        merge_wildcards: bool = True,
    ) -> List[TemplateGroup]:
        """Group records (given their matched template ids) at a threshold.

        Parameters
        ----------
        template_ids:
            The per-record template ids recorded at ingestion (most precise).
        threshold:
            Saturation threshold chosen by the user's precision slider.
        merge_wildcards:
            Collapse consecutive wildcards in the displayed template (§7),
            which also merges groups that only differ by variable-length
            list elements.

        Returns
        -------
        list of TemplateGroup
            Groups ordered by descending record count.
        """
        groups: Dict[str, TemplateGroup] = {}
        resolve_cache: Dict[int, Template] = {}
        for record_index, template_id in enumerate(template_ids):
            if template_id not in self.model:
                # Records matched by a newer model version than the one
                # currently serving (e.g. after a rollback) are skipped
                # rather than crashing the whole query.
                continue
            resolved = resolve_cache.get(template_id)
            if resolved is None:
                resolved = self.resolve(template_id, threshold)
                resolve_cache[template_id] = resolved
            if merge_wildcards:
                display = " ".join(merge_consecutive_wildcards(resolved.tokens))
            else:
                display = resolved.text
            group = groups.get(display)
            if group is None:
                group = TemplateGroup(display_text=display, saturation=resolved.saturation)
                groups[display] = group
            if resolved.template_id not in group.template_ids:
                group.template_ids.append(resolved.template_id)
            group.record_indices.append(record_index)
            group.saturation = min(group.saturation, resolved.saturation)
        return sorted(groups.values(), key=lambda g: (-g.count, g.display_text))

    def templates_at(self, threshold: float) -> List[Template]:
        """All templates a user sees at a given precision threshold."""
        return self.model.templates_at_threshold(threshold)

    def template_counts(
        self, template_ids: Sequence[int], threshold: float
    ) -> Dict[str, int]:
        """Convenience: display-text -> record count at the given threshold."""
        return {
            group.display_text: group.count
            for group in self.group_records(template_ids, threshold)
        }
