"""Reproduction of *Adaptive and Efficient Log Parsing as a Cloud Service*.

This package re-implements ByteBrain-LogParser (SIGMOD-Companion 2025) from
scratch, together with the cloud log-service substrate it is deployed in, the
baseline parsers it is evaluated against, LogHub-style benchmark datasets, and
the evaluation harness that regenerates every table and figure of the paper.

The most common entry points are re-exported here:

``ByteBrainParser``
    The core adaptive log parser (offline training + online matching +
    query-time precision adjustment).
``ByteBrainConfig``
    Configuration / ablation switches for the parser.
``LogParsingService``
    In-process simulation of the cloud log service (topics, ingestion,
    scheduled training, precision-slider queries, analytics).
``generate_dataset`` / ``list_datasets``
    Synthetic LogHub-style benchmark corpora with ground-truth templates.
"""

from repro.core.config import ByteBrainConfig
from repro.core.parser import ByteBrainParser, ParseResult
from repro.core.model import ParserModel, Template
from repro.datasets.registry import generate_dataset, list_datasets
from repro.service.service import LogParsingService

__all__ = [
    "ByteBrainParser",
    "ByteBrainConfig",
    "ParseResult",
    "ParserModel",
    "Template",
    "LogParsingService",
    "generate_dataset",
    "list_datasets",
]

__version__ = "1.0.0"
