"""Fig. 12 — throughput vs degree of parallelism.

The paper observes that parallelism helps most on the largest corpora and
plateaus quickly on small ones (production limits itself to 1-5 cores).
Reproduced by running ByteBrain with increasing worker counts on a large and
a small corpus.  Python threads only overlap inside the NumPy kernels, so the
reproduced speed-ups are modest; the assertion checks the paper's qualitative
shape (no large degradation, plateau on small data) rather than a specific
scaling factor.
"""

from __future__ import annotations

from benchmarks.common import run_bytebrain
from repro.core.config import ByteBrainConfig
from repro.evaluation.reporting import banner, format_matrix

PARALLELISM_LEVELS = [1, 2, 4, 8]
FIG12_LARGE = ["Thunderbird", "Spark"]
FIG12_SMALL = ["Proxifier"]


def _run(datasets):
    matrix = {}
    for name in FIG12_LARGE + FIG12_SMALL:
        variant = "loghub2"
        corpus = datasets.get(name, variant)
        row = {}
        for workers in PARALLELISM_LEVELS:
            config = ByteBrainConfig(parallelism=workers)
            run = run_bytebrain(corpus, config=config, name=f"ByteBrain x{workers}")
            row[f"parallelism={workers}"] = round(run.throughput)
        matrix[name] = row
    return matrix


def test_fig12_throughput_vs_parallelism(benchmark, datasets, report):
    matrix = benchmark.pedantic(_run, args=(datasets,), rounds=1, iterations=1)
    text = banner("Fig. 12 — throughput (logs/s) vs parallelism") + "\n"
    text += format_matrix(matrix, row_label="dataset")
    text += (
        "\n\npaper reference: throughput grows with parallelism on large datasets and "
        "plateaus on small ones (Python threads bound the reproducible speed-up here)."
    )
    report("fig12_parallelism", text)

    for name, row in matrix.items():
        single = row["parallelism=1"]
        best = max(row.values())
        worst = min(row.values())
        # Adding workers never collapses throughput (thread overhead stays
        # bounded) and the best configuration is in the same band as a single
        # worker — the paper's speed-ups need true multi-core execution that
        # Python threads cannot provide.
        assert worst >= 0.45 * single, (name, row)
        assert best >= 0.85 * single, (name, row)
