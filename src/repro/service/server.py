"""Asyncio TCP front door over a :class:`~repro.service.runtime.ShardedRuntime`.

This is the first layer where the *wire contract* lives: tenancy,
admission control, and backpressure mapping.  Everything below it
(sharded runtime, WAL, process workers, incremental analytics) stays
unchanged — the server is a protocol adapter plus a policy gate.

Design points
-------------

**Single-writer ingest.**  All ingest submission happens on the event
loop thread, so the headroom check in
``ShardTransport.try_submit_many`` (and the multi-section variant in
:meth:`LogServer._submit_sections`) is exact, not advisory: between the
check and the enqueue nothing else can fill the queue (shard workers
only *drain* it).  A batch is therefore either fully logged + enqueued
or untouched — which is what makes ``BACKPRESSURE`` and
``RATE_LIMITED`` safely retryable verbatim.

**Ack implies durable.**  ``try_submit_many`` returns only after the
WAL append, so by the time the ``ok`` frame is written the records
survive a SIGKILL of the server process.  Graceful shutdown goes
further: the listener keeps accepting (refusing work with
``SHUTTING_DOWN``) while :meth:`~repro.service.runtime.ShardedRuntime.drain`
runs its fsync barrier, and only then are listeners and connections
closed — an acked record is never lost to a clean stop either.

**Tenancy by namespacing.**  Wire topic ``t`` for tenant ``A`` is the
internal topic ``A::t``.  Tenants cannot name each other's topics (the
separator is forbidden in wire names) and every response is computed
against the connection's tenant only.

**Slow clients are bounded.**  Each connection's transport gets a write
high-water mark (``server_write_buffer_bytes``) and every response
write is awaited under ``server_write_timeout_seconds``; a reader that
stalls past that gets its connection aborted instead of pinning server
memory or wedging the loop.

**Blocking ops leave the loop.**  Queries, analytics, training and
drain run in a thread-pool executor; the event loop only ever does
admission arithmetic, WAL appends, and frame IO.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import logging
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import ByteBrainConfig
from .admission import AdmissionController, TenantSpec
from .runtime import ShardBusy
from . import protocol
from .transport import BatchSection, decode_record_batch

__all__ = ["LogServer", "TENANT_SEPARATOR", "qualify_topic", "build_tenant_specs"]

logger = logging.getLogger(__name__)

#: Joins tenant and wire topic into the internal topic name.  Forbidden
#: inside wire topic names so tenants cannot forge cross-tenant paths.
TENANT_SEPARATOR = "::"


def qualify_topic(tenant: str, topic: str) -> str:
    """Map a tenant's wire topic name to the internal topic name."""
    return f"{tenant}{TENANT_SEPARATOR}{topic}"


def build_tenant_specs(data: Sequence[dict]) -> List[Tuple[TenantSpec, List[str]]]:
    """Parse tenant declarations (``cli serve --tenants`` JSON).

    Each entry is a :class:`TenantSpec` dict plus an optional
    ``topics`` list naming the wire topics to pre-create.  Topics are
    declared up front because the process shard backend forks its
    workers with the topic set fixed; the thread backend additionally
    allows the ``create_topic`` op at runtime.
    """
    specs: List[Tuple[TenantSpec, List[str]]] = []
    for entry in data:
        entry = dict(entry)
        topics = entry.pop("topics", [])
        if not isinstance(topics, list) or not all(isinstance(t, str) for t in topics):
            raise ValueError(f"tenant 'topics' must be a list of strings: {entry!r}")
        for topic in topics:
            _check_wire_topic(topic)
        specs.append((TenantSpec.from_dict(entry), list(topics)))
    names = [spec.name for spec, _ in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in spec: {names}")
    return specs


def _check_wire_topic(topic: str) -> None:
    if not topic or TENANT_SEPARATOR in topic:
        raise ValueError(
            f"invalid wire topic name {topic!r}: must be non-empty and must not "
            f"contain {TENANT_SEPARATOR!r}"
        )


class _RequestError(Exception):
    """Internal: abort request handling with a protocol error response."""

    def __init__(self, code: str, message: str, **extra: object) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.extra = extra


class LogServer:
    """The front-door server: one instance per process, many connections.

    ``runtime`` is any :class:`~repro.service.runtime.ShardTransport`
    (thread or process backend) whose service already holds the
    tenants' pre-created topics.  The server owns no storage — stopping
    it leaves service + runtime usable (and :meth:`stop` has already
    drained, so everything acked is on disk).
    """

    def __init__(
        self,
        service,
        runtime,
        tenants: Sequence[Tuple[TenantSpec, List[str]]],
        config: Optional[ByteBrainConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.runtime = runtime
        self.config = config or getattr(service, "config", None) or ByteBrainConfig()
        self.host = host
        self.port = port  # replaced with the bound port after start()
        self.admission = AdmissionController(self.config)
        #: wire topic names per tenant (authorisation set for queries).
        self._topics: Dict[str, set] = {}
        for spec, topics in tenants:
            self.admission.register(spec)
            self._topics[spec.name] = set(topics)
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._closing = False
        self._stopped = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="frontdoor"
        )
        # Ingest counters the bench and smoke harnesses assert on: every
        # refused batch must be *visible* — silent drops are a bug class
        # this layer exists to prevent.
        self.counters = {
            "accepted_batches": 0,
            "accepted_records": 0,
            "backpressure": 0,
            "rate_limited": 0,
            "quota_refused": 0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind and start accepting connections; sets :attr:`port`."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("front door listening on %s:%d", self.host, self.port)

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`stop` (or the ``shutdown`` op) completes."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: refuse new work, drain, then close.

        Order matters (and is tested): the closing flag flips first so
        no new records are admitted, then ``runtime.drain()`` runs its
        fsync barrier *before* listeners and connections close — every
        record acked over the wire is durable by the time the socket
        goes away.
        """
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        try:
            await self._run_blocking(self.runtime.drain)
        except Exception:
            logger.exception("drain during shutdown failed")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        self._executor.shutdown(wait=False)
        self._stopped.set()

    async def _run_blocking(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        writer.transport.set_write_buffer_limits(high=self.config.server_write_buffer_bytes)
        self._connections.add(writer)
        tenant: Optional[str] = None
        try:
            while True:
                try:
                    kind, body = await protocol.read_frame(
                        reader, self.config.server_max_frame_bytes
                    )
                except protocol.FrameError as exc:
                    # The stream position is lost (we did not consume the
                    # oversized/unknown frame), so answer loudly and close.
                    code = (
                        protocol.ERR_FRAME_TOO_LARGE
                        if "exceeds" in str(exc)
                        else protocol.ERR_BAD_REQUEST
                    )
                    await self._send(writer, {"id": None, "ok": False, "error": code,
                                              "message": str(exc)})
                    return
                except asyncio.IncompleteReadError:
                    logger.warning("connection truncated mid-frame (tenant=%s)", tenant)
                    return
                if kind == -1:
                    return  # clean EOF between frames
                response, tenant, close = await self._dispatch(kind, body, tenant)
                if response is not None:
                    await self._send(writer, response)
                if close:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        """Write one JSON response frame, bounding slow readers."""
        writer.write(protocol.encode_json_frame(payload))
        try:
            await asyncio.wait_for(
                writer.drain(), timeout=self.config.server_write_timeout_seconds
            )
        except asyncio.TimeoutError:
            logger.warning("slow client: write stalled > %.1fs, aborting connection",
                           self.config.server_write_timeout_seconds)
            writer.transport.abort()
            raise ConnectionResetError("slow client aborted")

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    async def _dispatch(
        self, kind: int, body: bytes, tenant: Optional[str]
    ) -> Tuple[Optional[dict], Optional[str], bool]:
        """Handle one frame; returns (response, tenant, close_connection)."""
        request_id: object = None
        try:
            if kind == protocol.KIND_BATCH:
                header, payload = protocol.split_batch_body(body)
                request_id = header.get("id")
                if tenant is None:
                    raise _RequestError(protocol.ERR_UNAUTHENTICATED,
                                        "send a 'hello' frame first")
                if self._closing:
                    raise _RequestError(protocol.ERR_SHUTTING_DOWN,
                                        "server is draining")
                result = self._handle_batch_ingest(tenant, payload)
                return {"id": request_id, "ok": True, **result}, tenant, False

            request = protocol.decode_json_body(body)
            request_id = request.get("id")
            op = request.get("op")
            if not isinstance(op, str):
                raise _RequestError(protocol.ERR_BAD_REQUEST, "missing 'op'")
            if op == "hello":
                new_tenant, result = self._handle_hello(request)
                return {"id": request_id, "ok": True, **result}, new_tenant, False
            if tenant is None:
                raise _RequestError(protocol.ERR_UNAUTHENTICATED,
                                    "send a 'hello' frame first")
            if op == "shutdown":
                # Ack first so the client can observe an orderly goodbye,
                # then stop (drain barrier included) in the background.
                asyncio.get_running_loop().create_task(self.stop())
                return {"id": request_id, "ok": True, "stopping": True}, tenant, False
            if self._closing and op not in ("stats", "ping"):
                raise _RequestError(protocol.ERR_SHUTTING_DOWN, "server is draining")
            handler = self._OPS.get(op)
            if handler is None:
                raise _RequestError(protocol.ERR_BAD_REQUEST, f"unknown op {op!r}")
            result = await handler(self, tenant, request)
            return {"id": request_id, "ok": True, **result}, tenant, False
        except protocol.FrameError as exc:
            return (
                {"id": request_id, "ok": False, "error": protocol.ERR_BAD_REQUEST,
                 "message": str(exc)},
                tenant,
                False,
            )
        except _RequestError as exc:
            return (
                {"id": request_id, "ok": False, "error": exc.code,
                 "message": exc.message, **exc.extra},
                tenant,
                False,
            )
        except Exception as exc:  # noqa: BLE001 — protocol boundary
            logger.exception("internal error handling op")
            return (
                {"id": request_id, "ok": False, "error": protocol.ERR_INTERNAL,
                 "message": f"{type(exc).__name__}: {exc}"},
                tenant,
                False,
            )

    # ------------------------------------------------------------------ #
    # Handshake + ingest
    # ------------------------------------------------------------------ #

    def _handle_hello(self, request: dict) -> Tuple[str, dict]:
        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not self.admission.known(tenant):
            raise _RequestError(protocol.ERR_UNAUTHENTICATED,
                                f"unknown tenant {tenant!r}")
        return tenant, {
            "tenant": tenant,
            "topics": sorted(self._topics.get(tenant, ())),
            "limits": self.admission.limits(tenant),
            # Largest batch a single frame may carry: a batch bigger than
            # the shard queue can never be admitted atomically, so the
            # client splits to this bound.
            "max_batch_records": self.runtime.queue_capacity,
            "max_frame_bytes": self.config.server_max_frame_bytes,
        }

    def _wire_topic(self, tenant: str, topic: object) -> str:
        if not isinstance(topic, str):
            raise _RequestError(protocol.ERR_BAD_REQUEST, "missing 'topic'")
        try:
            _check_wire_topic(topic)
        except ValueError as exc:
            raise _RequestError(protocol.ERR_BAD_REQUEST, str(exc)) from exc
        if topic not in self._topics.get(tenant, ()):
            raise _RequestError(protocol.ERR_UNKNOWN_TOPIC,
                                f"no topic {topic!r} for tenant {tenant!r}")
        return qualify_topic(tenant, topic)

    def _handle_batch_ingest(self, tenant: str, payload: bytes) -> dict:
        try:
            sections = decode_record_batch(payload)
        except Exception as exc:
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                f"undecodable batch payload: {exc}") from exc
        if not sections:
            raise _RequestError(protocol.ERR_BAD_REQUEST, "empty batch frame")
        qualified: List[Tuple[str, BatchSection]] = []
        for section in sections:
            if len(section.raws) != len(section.timestamps):
                raise _RequestError(protocol.ERR_BAD_REQUEST,
                                    "timestamps/records length mismatch")
            qualified.append((self._wire_topic(tenant, section.topic), section))
        n_records = sum(len(s.raws) for _, s in qualified)
        n_bytes = sum(len(raw.encode("utf-8")) for _, s in qualified for raw in s.raws)
        if n_records == 0:
            raise _RequestError(protocol.ERR_BAD_REQUEST, "empty batch frame")
        self._admit(tenant, n_records, n_bytes)
        try:
            self._submit_sections(qualified)
        except ShardBusy as exc:
            self.admission.refund(tenant, n_records, n_bytes)
            self.counters["backpressure"] += 1
            raise _RequestError(
                protocol.ERR_BACKPRESSURE, str(exc), retry_after=exc.retry_after
            ) from exc
        self.counters["accepted_batches"] += 1
        self.counters["accepted_records"] += n_records
        return {"accepted": n_records}

    async def _op_ingest(self, tenant: str, request: dict) -> dict:
        """JSON ingest path (small batches; the batch frame is the fast path)."""
        topic = self._wire_topic(tenant, request.get("topic"))
        records = request.get("records")
        if not isinstance(records, list) or not records or not all(
            isinstance(r, str) for r in records
        ):
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                "'records' must be a non-empty list of strings")
        timestamps = request.get("timestamps")
        if timestamps is None:
            timestamp = request.get("timestamp")
            if not isinstance(timestamp, (int, float)):
                raise _RequestError(protocol.ERR_BAD_REQUEST,
                                    "provide 'timestamp' or 'timestamps'")
            timestamps = [float(timestamp)] * len(records)
        elif (
            not isinstance(timestamps, list)
            or len(timestamps) != len(records)
            or not all(isinstance(t, (int, float)) for t in timestamps)
        ):
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                "'timestamps' must be numbers, one per record")
        section = BatchSection(
            topic=topic, first_seq=0,
            timestamps=[float(t) for t in timestamps], raws=list(records),
        )
        n_bytes = sum(len(r.encode("utf-8")) for r in records)
        self._admit(tenant, len(records), n_bytes)
        try:
            self._submit_sections([(topic, section)])
        except ShardBusy as exc:
            self.admission.refund(tenant, len(records), n_bytes)
            self.counters["backpressure"] += 1
            raise _RequestError(
                protocol.ERR_BACKPRESSURE, str(exc), retry_after=exc.retry_after
            ) from exc
        self.counters["accepted_batches"] += 1
        self.counters["accepted_records"] += len(records)
        return {"accepted": len(records)}

    def _admit(self, tenant: str, n_records: int, n_bytes: int) -> None:
        decision = self.admission.admit(tenant, n_records, n_bytes)
        if decision.allowed:
            return
        if decision.reason == "rate":
            self.counters["rate_limited"] += 1
            raise _RequestError(
                protocol.ERR_RATE_LIMITED,
                f"rate limit exceeded for tenant {tenant!r}",
                retry_after=decision.retry_after,
            )
        self.counters["quota_refused"] += 1
        raise _RequestError(
            protocol.ERR_QUOTA_EXCEEDED,
            f"{decision.reason} exhausted for tenant {tenant!r}",
        )

    def _submit_sections(self, qualified: Sequence[Tuple[str, BatchSection]]) -> None:
        """Submit every section or nothing (single-writer headroom check).

        A frame may span topics on different shards; ``try_submit_many``
        alone would leave earlier sections enqueued when a later shard is
        full.  Instead the headroom of *every* involved shard is checked
        up front — exact because only this event-loop thread enqueues and
        shard workers strictly drain — and only then are the sections
        submitted (split into runs of equal timestamps, since the WAL
        frames one timestamp per batch).
        """
        needed: Dict[int, int] = {}
        for topic, section in qualified:
            shard = self.runtime.shard_of(topic)
            needed[shard] = needed.get(shard, 0) + len(section.raws)
        capacity = self.runtime.queue_capacity
        for shard, count in needed.items():
            if count > capacity:
                raise _RequestError(
                    protocol.ERR_BAD_REQUEST,
                    f"batch routes {count} records to shard {shard}, above the "
                    f"queue capacity ({capacity}); split the batch",
                )
            depth = self.runtime.shard_load(shard)
            if depth + count > capacity:
                raise ShardBusy(shard, depth, capacity, self.runtime.max_batch_delay)
        for topic, section in qualified:
            start = 0
            timestamps = section.timestamps
            for i in range(1, len(timestamps) + 1):
                if i == len(timestamps) or timestamps[i] != timestamps[start]:
                    self.runtime.submit_many(
                        topic, section.raws[start:i], timestamps[start]
                    )
                    start = i

    # ------------------------------------------------------------------ #
    # Query / analytics / model ops (blocking → executor)
    # ------------------------------------------------------------------ #

    async def _op_query(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        threshold = request.get("threshold", 1.0)
        text_filter = request.get("text_filter")
        groups = await self._run_blocking(
            lambda: self.service.query_templates(topic, float(threshold), text_filter)
        )
        return {
            "groups": [
                {
                    "display_text": g.display_text,
                    "template_ids": list(g.template_ids),
                    "count": g.count,
                    "saturation": g.saturation,
                }
                for g in groups
            ]
        }

    async def _op_analytics(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        kind = request.get("kind")
        engine = request.get("engine")

        def run():
            if kind == "top_k":
                pairs = self.service.top_k_templates(
                    topic, float(request["start_time"]), float(request["end_time"]),
                    k=int(request.get("k", 10)), engine=engine,
                )
                return {"top_k": [[tid, count] for tid, count in pairs]}
            if kind == "anomaly_score":
                baseline = request.get("baseline_window")
                score = self.service.anomaly_score(
                    topic, tuple(request["window"]),
                    baseline_window=tuple(baseline) if baseline else None,
                    engine=engine,
                )
                return {"score": score}
            if kind == "new_template_bursts":
                bursts = self.service.new_template_bursts(
                    topic, tuple(request["window"]),
                    min_count=request.get("min_count"), engine=engine,
                )
                return {"bursts": [list(b) for b in bursts]}
            if kind == "drill_down":
                records = self.service.drill_down(
                    topic, float(request["start_time"]), float(request["end_time"]),
                    template_id=request.get("template_id"),
                    limit=int(request.get("limit", 100)), engine=engine,
                )
                return {
                    "records": [
                        {
                            "record_id": r.record_id,
                            "timestamp": r.timestamp,
                            "raw": r.raw,
                            "template_id": r.template_id,
                        }
                        for r in records
                    ]
                }
            if kind == "detect_anomalies":
                anomalies = self.service.detect_anomalies(
                    topic, tuple(request["baseline_window"]),
                    tuple(request["current_window"]), engine=engine,
                )
                return {"anomalies": [dataclasses.asdict(a) for a in anomalies]}
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                f"unknown analytics kind {kind!r}")

        try:
            return await self._run_blocking(run)
        except KeyError as exc:
            raise _RequestError(protocol.ERR_BAD_REQUEST,
                                f"missing analytics parameter {exc}") from exc

    async def _op_train(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        now = request.get("now")
        if not isinstance(now, (int, float)):
            raise _RequestError(protocol.ERR_BAD_REQUEST, "missing 'now'")
        force_full = bool(request.get("force_full", False))
        await self._run_blocking(
            lambda: self.service.train_now(topic, float(now), force_full=force_full)
        )
        return {"trained": True}

    async def _op_model_versions(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        versions = await self._run_blocking(lambda: self.service.model_versions(topic))
        return {"versions": [v.to_dict() for v in versions]}

    async def _op_rollback_model(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        version = await self._run_blocking(lambda: self.service.rollback_model(topic))
        return {"restored": version.to_dict()}

    async def _op_topic_stats(self, tenant: str, request: dict) -> dict:
        topic = self._wire_topic(tenant, request.get("topic"))
        stats = await self._run_blocking(lambda: self.service.topic_stats(topic))
        return {"stats": stats}

    async def _op_stats(self, tenant: str, request: dict) -> dict:
        usage = self.admission.usage(tenant)
        return {
            "tenant": tenant,
            "usage": usage.to_dict(),
            "limits": self.admission.limits(tenant),
            "server": dict(self.counters),
        }

    async def _op_drain(self, tenant: str, request: dict) -> dict:
        await self._run_blocking(self.runtime.drain)
        return {"drained": True}

    async def _op_create_topic(self, tenant: str, request: dict) -> dict:
        topic = request.get("topic")
        if not isinstance(topic, str):
            raise _RequestError(protocol.ERR_BAD_REQUEST, "missing 'topic'")
        try:
            _check_wire_topic(topic)
        except ValueError as exc:
            raise _RequestError(protocol.ERR_BAD_REQUEST, str(exc)) from exc
        from .transport import ProcessShardedRuntime

        if isinstance(self.runtime, ProcessShardedRuntime):
            raise _RequestError(
                protocol.ERR_BAD_REQUEST,
                "the process shard backend fixes its topic set at startup; "
                "declare the topic in the tenant spec",
            )
        if topic not in self._topics.setdefault(tenant, set()):
            await self._run_blocking(
                lambda: self.service.create_topic(qualify_topic(tenant, topic))
            )
            self._topics[tenant].add(topic)
        return {"topics": sorted(self._topics[tenant])}

    async def _op_ping(self, tenant: str, request: dict) -> dict:
        return {"pong": True, "closing": self._closing}

    _OPS = {
        "ingest": _op_ingest,
        "query": _op_query,
        "analytics": _op_analytics,
        "train": _op_train,
        "model_versions": _op_model_versions,
        "rollback_model": _op_rollback_model,
        "topic_stats": _op_topic_stats,
        "stats": _op_stats,
        "drain": _op_drain,
        "create_topic": _op_create_topic,
        "ping": _op_ping,
    }


def run_server_in_thread(server: LogServer):
    """Start ``server`` on a daemon event-loop thread (tests + bench).

    Returns ``(thread, stop)`` where ``stop()`` requests graceful
    shutdown and joins the thread.  The server's port is bound before
    this returns.
    """
    started = threading.Event()
    loop_holder: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder["loop"] = loop

        async def main() -> None:
            await server.start()
            started.set()
            await server.serve_until_stopped()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="frontdoor-server", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("server failed to start within 30s")

    def stop() -> None:
        loop = loop_holder["loop"]
        coro = server.stop()
        try:
            asyncio.run_coroutine_threadsafe(coro, loop).result(timeout=60.0)
        except RuntimeError:
            coro.close()  # loop already gone — the server stopped itself
        thread.join(timeout=60.0)

    return thread, stop
