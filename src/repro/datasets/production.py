"""Synthetic production-like log topics for the industrial evaluation (Table 5).

The paper's Table 5 reports log volume, model size and training time for
five production topics on Volcano Engine's Torch Log Service.  Real tenant
logs are obviously unavailable, so each scenario is simulated by a generator
whose template population and message shape mirror the scenario:

* ``text stream processing`` — few, highly repetitive pipeline progress logs;
* ``webserver access log`` — access-log lines with high-cardinality URLs
  (two variants, mirroring the two access-log topics in the table);
* ``Go HTTP API server`` — structured key=value request logs;
* ``Go search server`` — query/ranking logs with many numeric fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.datasets.synthetic import LogDataset, render_template

__all__ = ["ProductionScenario", "PRODUCTION_SCENARIOS", "generate_production_topic"]


@dataclass
class ProductionScenario:
    """One production topic scenario from Table 5."""

    key: str
    description: str
    #: Paper-reported ingest volume, used only for reporting alongside ours.
    paper_volume_mb_per_s: float
    paper_model_size_mb: float
    paper_training_seconds: float
    templates: List[str]
    zipf_alpha: float
    default_logs: int


_TEXT_STREAM_TEMPLATES = [
    "pipeline stage {word} processed {int} records in {duration}",
    "pipeline stage {word} checkpoint {int} committed offset {int}",
    "pipeline stage {word} backpressure detected queue depth {int}",
    "worker {small_int} heartbeat ok lag {int} ms",
    "flushed {int} events to sink {word} in {duration}",
]

_ACCESS_LOG_TEMPLATES = [
    '{ip} - - [{timestamp}] "GET /api/v1/{word}/{int} HTTP/1.1" {int} {int} "{word}" {float}',
    '{ip} - - [{timestamp}] "POST /api/v1/{word} HTTP/1.1" {int} {int} "{word}" {float}',
    '{ip} - - [{timestamp}] "GET /static/{word}.js HTTP/1.1" {int} {int} "-" {float}',
    '{ip} - - [{timestamp}] "GET /health HTTP/1.1" 200 {int} "-" {float}',
    '{ip} - {user} [{timestamp}] "DELETE /api/v1/{word}/{int} HTTP/1.1" {int} {int} "{word}" {float}',
    '{ip} - - [{timestamp}] "PUT /api/v1/{word}/{int}/settings HTTP/1.1" {int} {int} "{word}" {float}',
]

_GO_HTTP_TEMPLATES = [
    "level=info msg=handled_request method=GET path=/v1/{word} status={int} latency={duration} request_id={uuid}",
    "level=info msg=handled_request method=POST path=/v1/{word} status={int} latency={duration} request_id={uuid}",
    "level=warn msg=slow_request method=GET path=/v1/{word} latency={duration} threshold={duration}",
    "level=error msg=upstream_timeout upstream={host} path=/v1/{word} attempt={small_int}",
    "level=info msg=cache_hit key={word}:{int} ttl={duration}",
    "level=info msg=cache_miss key={word}:{int}",
    "level=info msg=token_refresh user={user} expires_in={int}",
]

_GO_SEARCH_TEMPLATES = [
    "query executed qid={uuid} terms={small_int} shards={small_int} hits={int} took={duration}",
    "query rewritten qid={uuid} original_terms={small_int} expanded_terms={small_int}",
    "ranking completed qid={uuid} candidates={int} returned={small_int} model={word} score={float}",
    "shard timeout qid={uuid} shard={small_int} host={host} after={duration}",
    "cache warmup segment={word} docs={int} took={duration}",
    "index merge finished segment={word} size={size} docs={int}",
]


PRODUCTION_SCENARIOS: Dict[str, ProductionScenario] = {
    "text_stream": ProductionScenario(
        key="text_stream",
        description="Text stream processing",
        paper_volume_mb_per_s=189.0,
        paper_model_size_mb=3.0,
        paper_training_seconds=0.91,
        templates=_TEXT_STREAM_TEMPLATES,
        zipf_alpha=1.6,
        default_logs=40_000,
    ),
    "webserver_access_large": ProductionScenario(
        key="webserver_access_large",
        description="Webserver access log",
        paper_volume_mb_per_s=57.8,
        paper_model_size_mb=10.0,
        paper_training_seconds=7.98,
        templates=_ACCESS_LOG_TEMPLATES,
        zipf_alpha=1.2,
        default_logs=30_000,
    ),
    "webserver_access_small": ProductionScenario(
        key="webserver_access_small",
        description="Webserver access log",
        paper_volume_mb_per_s=47.7,
        paper_model_size_mb=3.0,
        paper_training_seconds=1.02,
        templates=_ACCESS_LOG_TEMPLATES[:4],
        zipf_alpha=1.5,
        default_logs=20_000,
    ),
    "go_http_api": ProductionScenario(
        key="go_http_api",
        description="Go HTTP API server",
        paper_volume_mb_per_s=3.51,
        paper_model_size_mb=7.0,
        paper_training_seconds=1.65,
        templates=_GO_HTTP_TEMPLATES,
        zipf_alpha=1.3,
        default_logs=15_000,
    ),
    "go_search": ProductionScenario(
        key="go_search",
        description="Go search server",
        paper_volume_mb_per_s=2.46,
        paper_model_size_mb=7.0,
        paper_training_seconds=4.64,
        templates=_GO_SEARCH_TEMPLATES,
        zipf_alpha=1.25,
        default_logs=15_000,
    ),
}


def generate_production_topic(
    key: str, n_logs: int = 0, seed: int = 31, uniqueness_exponent: float = 0.6
) -> LogDataset:
    """Generate the synthetic corpus for one Table 5 production scenario.

    Like the LogHub-style generator, each template draws its lines from a
    bounded pool of distinct renderings (``~count**uniqueness_exponent``), so
    production streams exhibit the heavy duplication real topics have.
    """
    try:
        scenario = PRODUCTION_SCENARIOS[key]
    except KeyError:
        raise KeyError(
            f"unknown production scenario {key!r}; known: {sorted(PRODUCTION_SCENARIOS)}"
        ) from None
    if n_logs <= 0:
        n_logs = scenario.default_logs
    rng = np.random.default_rng(seed)
    templates = scenario.templates
    ranks = np.arange(1, len(templates) + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, scenario.zipf_alpha)
    weights /= weights.sum()

    choices = rng.choice(len(templates), size=n_logs, p=weights)
    occurrence_counts = np.bincount(choices, minlength=len(templates))
    pool_limits = {
        idx: max(3, int(round(float(count) ** uniqueness_exponent)))
        for idx, count in enumerate(occurrence_counts)
        if count > 0
    }

    lines: List[str] = []
    ground_truth: List[int] = []
    pools: Dict[int, List[str]] = {}
    for template_idx in choices:
        template_idx = int(template_idx)
        pool = pools.setdefault(template_idx, [])
        if len(pool) >= pool_limits[template_idx]:
            line = pool[int(rng.integers(len(pool)))]
        else:
            line = render_template(templates[template_idx], rng)
            pool.append(line)
        lines.append(line)
        ground_truth.append(template_idx)
    return LogDataset(
        name=scenario.description,
        variant="production",
        lines=lines,
        ground_truth=ground_truth,
        templates=list(templates),
        source="synthetic-production",
    )
