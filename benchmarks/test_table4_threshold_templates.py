"""Table 4 — templates obtained at different saturation thresholds.

The paper illustrates adaptivity with Android wakelock logs: at a low
threshold a single highly generalised template covers everything; raising the
threshold progressively separates acquire/release, then the holding service
names.  Reproduced by training on synthetic wakelock logs and listing the
visible templates at the paper's thresholds.
"""

from __future__ import annotations

from repro.core.parser import ByteBrainParser
from repro.datasets.synthetic import generate_android_wakelock
from repro.evaluation.reporting import banner

THRESHOLDS = [0.05, 0.78, 0.9, 0.95]


def _run():
    corpus = generate_android_wakelock(n_logs=4000)
    parser = ByteBrainParser()
    result = parser.parse_corpus(corpus.lines)
    per_threshold = {}
    for threshold in THRESHOLDS:
        groups = parser.group_results(result.results, threshold)
        per_threshold[threshold] = [group.display_text for group in groups]
    return per_threshold


def test_table4_templates_at_varying_thresholds(benchmark, report):
    per_threshold = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [banner("Table 4 — wakelock templates at varying saturation thresholds")]
    for threshold, templates in per_threshold.items():
        lines.append(f"\nsaturation >= {threshold}  ({len(templates)} templates)")
        for template in templates:
            lines.append(f"  {template}")
    report("table4_threshold_templates", "\n".join(lines))

    counts = {threshold: len(templates) for threshold, templates in per_threshold.items()}
    # Precision grows with the threshold: more, finer templates.
    assert counts[0.05] <= counts[0.78] <= counts[0.9] <= counts[0.95]
    # At the coarse end acquire/release are merged into very few templates...
    assert counts[0.05] <= 3
    # ...and at 0.78+ the acquire / release statements are distinguished.
    mid_templates = " | ".join(per_threshold[0.78] + per_threshold[0.9])
    assert "release" in mid_templates and "acquire" in mid_templates
    # At the precise end, service names (systemui / android / audioserver ...)
    # survive as constants in at least some templates.
    fine_templates = " ".join(per_threshold[0.95])
    assert any(name in fine_templates for name in ("systemui", "android", "audioserver", "phone"))
