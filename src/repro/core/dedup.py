"""Deduplication of identical (masked, tokenized) log records (paper §4.1.3).

Log streams are heavily duplicated, and duplication increases further after
common-variable replacement (Fig. 4).  Collapsing duplicates while keeping an
occurrence count is one of the biggest efficiency levers of the whole system
(Fig. 9: removing it costs up to two orders of magnitude of throughput).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["DedupResult", "deduplicate", "deduplicate_raw", "duplication_histogram"]


@dataclass
class DedupResult:
    """Outcome of deduplicating a batch of tokenized logs.

    Attributes
    ----------
    unique_tokens:
        One token tuple per distinct record, in first-seen order.
    counts:
        ``counts[i]`` is how many input records collapsed into
        ``unique_tokens[i]``.
    inverse:
        ``inverse[j]`` is the index into ``unique_tokens`` for input record
        ``j`` (lets callers map results back onto the original stream).
    """

    unique_tokens: List[Tuple[str, ...]]
    counts: List[int]
    inverse: List[int]

    @property
    def total(self) -> int:
        """Number of input records."""
        return len(self.inverse)

    @property
    def n_unique(self) -> int:
        """Number of distinct records."""
        return len(self.unique_tokens)

    @property
    def reduction_ratio(self) -> float:
        """``total / n_unique`` — how much work deduplication saves."""
        if self.n_unique == 0:
            return 1.0
        return self.total / self.n_unique


def deduplicate(
    token_lists: Sequence[Sequence[str]],
    occurrence_counts: Optional[Sequence[int]] = None,
) -> DedupResult:
    """Collapse identical token sequences, keeping counts and an inverse map.

    Parameters
    ----------
    token_lists:
        Token sequences to deduplicate.
    occurrence_counts:
        Optional per-input occurrence counts (used when the inputs were
        already deduplicated at the raw-text level); defaults to one each.
    """
    index_of: Dict[Tuple[str, ...], int] = {}
    unique_tokens: List[Tuple[str, ...]] = []
    counts: List[int] = []
    inverse: List[int] = []
    for position, tokens in enumerate(token_lists):
        key = tuple(tokens)
        idx = index_of.get(key)
        if idx is None:
            idx = len(unique_tokens)
            index_of[key] = idx
            unique_tokens.append(key)
            counts.append(0)
        counts[idx] += 1 if occurrence_counts is None else int(occurrence_counts[position])
        inverse.append(idx)
    return DedupResult(unique_tokens=unique_tokens, counts=counts, inverse=inverse)


def deduplicate_raw(texts: Sequence[str]) -> Tuple[List[str], List[int], List[int]]:
    """Collapse identical raw log lines.

    Returns ``(unique_texts, counts, inverse)``; raw-level deduplication runs
    before preprocessing so duplicate records skip masking and tokenization
    entirely.
    """
    index_of: Dict[str, int] = {}
    unique_texts: List[str] = []
    counts: List[int] = []
    inverse: List[int] = []
    for text in texts:
        idx = index_of.get(text)
        if idx is None:
            idx = len(unique_texts)
            index_of[text] = idx
            unique_texts.append(text)
            counts.append(0)
        counts[idx] += 1
        inverse.append(idx)
    return unique_texts, counts, inverse


def duplication_histogram(token_lists: Sequence[Sequence[str]]) -> List[int]:
    """Occurrence count of every distinct record (input to the Fig. 4 CDF)."""
    return list(deduplicate(token_lists).counts)
