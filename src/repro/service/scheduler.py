"""Training scheduler (paper §3: "Training is triggered upon reaching either
a volume threshold or a time interval after last execution").

The scheduler is deliberately clock-agnostic: callers pass the current
(simulated or real) time, which keeps the service fully deterministic in
tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SchedulerPolicy", "TrainingScheduler"]


@dataclass
class SchedulerPolicy:
    """When to trigger a training round."""

    #: Trigger once this many new records accumulated since the last round.
    volume_threshold: int = 10_000
    #: Trigger once this many seconds elapsed since the last round.
    time_interval_seconds: float = 300.0
    #: Records required before the very first round may run (a tiny first
    #: model is better than none; the paper notes first training finishes
    #: within five minutes of topic creation).
    initial_volume_threshold: int = 100

    @classmethod
    def from_config(
        cls, config, default: Optional["SchedulerPolicy"] = None
    ) -> "SchedulerPolicy":
        """Per-topic policy: the topic config's ``train_*`` overrides applied
        on top of ``default`` (or the dataclass defaults).

        ``config`` is a :class:`~repro.core.config.ByteBrainConfig` (typed
        loosely to keep this module free of a core->service import cycle);
        ``None``-valued overrides defer to the default policy, so a config
        with no ``train_*`` fields set reproduces the service-wide policy.
        """
        base = default if default is not None else cls()
        return cls(
            volume_threshold=(
                config.train_volume_threshold
                if getattr(config, "train_volume_threshold", None) is not None
                else base.volume_threshold
            ),
            time_interval_seconds=(
                config.train_time_interval_seconds
                if getattr(config, "train_time_interval_seconds", None) is not None
                else base.time_interval_seconds
            ),
            initial_volume_threshold=(
                config.train_initial_volume_threshold
                if getattr(config, "train_initial_volume_threshold", None) is not None
                else base.initial_volume_threshold
            ),
        )


class TrainingScheduler:
    """Decides when a topic needs (re)training."""

    def __init__(self, policy: Optional[SchedulerPolicy] = None) -> None:
        self.policy = policy or SchedulerPolicy()
        self._records_since_training = 0
        self._last_training_time: Optional[float] = None
        self._training_rounds = 0
        self._incremental_rounds = 0
        self._full_rounds = 0
        self._last_mode: Optional[str] = None

    # ------------------------------------------------------------------ #
    # event feed
    # ------------------------------------------------------------------ #
    def record_ingested(self, count: int = 1) -> None:
        """Tell the scheduler ``count`` new records arrived."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._records_since_training += count

    def training_completed(self, now: float, mode: str = "full", pending: int = 0) -> None:
        """Tell the scheduler a training round just finished.

        ``mode`` records how the round ran (``"initial"``, ``"incremental"``
        or ``"full"``) so operational stats can report the incremental /
        full split per topic.  ``pending`` is the number of records the
        round did *not* cover — with the sharded runtime's off-path rounds,
        records keep arriving between a round's planning watermark and its
        commit, and resetting the counter to zero would silently delay the
        next volume trigger by exactly that many records.
        """
        if pending < 0:
            raise ValueError("pending must be non-negative")
        self._records_since_training = pending
        self._last_training_time = now
        self._training_rounds += 1
        if mode == "incremental":
            self._incremental_rounds += 1
        else:
            self._full_rounds += 1
        self._last_mode = mode

    # ------------------------------------------------------------------ #
    # decision
    # ------------------------------------------------------------------ #
    def should_train(self, now: float) -> bool:
        """True when a training round should run at time ``now``."""
        if self._training_rounds == 0:
            return self._records_since_training >= self.policy.initial_volume_threshold
        if self._records_since_training >= self.policy.volume_threshold:
            return True
        if (
            self._last_training_time is not None
            and now - self._last_training_time >= self.policy.time_interval_seconds
            and self._records_since_training > 0
        ):
            return True
        return False

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def training_rounds(self) -> int:
        """Number of completed training rounds."""
        return self._training_rounds

    @property
    def incremental_rounds(self) -> int:
        """Number of completed incremental rounds."""
        return self._incremental_rounds

    @property
    def full_rounds(self) -> int:
        """Number of completed full (or initial) rounds."""
        return self._full_rounds

    @property
    def last_mode(self) -> Optional[str]:
        """Mode of the most recent round (None before the first)."""
        return self._last_mode

    @property
    def pending_records(self) -> int:
        """Records ingested since the last training round."""
        return self._records_since_training

    @property
    def last_training_time(self) -> Optional[float]:
        """Timestamp of the last completed round (None before the first)."""
        return self._last_training_time
