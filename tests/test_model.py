"""Unit tests for the template model (templates, matching index, merging)."""

import pytest

from repro.core.config import WILDCARD
from repro.core.model import ParserModel, Template, merge_consecutive_wildcards, template_similarity


def make_template(template_id, tokens, saturation, parent=None, depth=0):
    return Template(
        template_id=template_id,
        tokens=tuple(tokens),
        saturation=saturation,
        parent_id=parent,
        depth=depth,
    )


@pytest.fixture()
def chain_model():
    """root(0, sat 0.3) -> mid(1, sat 0.7) -> leaf(2, sat 1.0)."""
    model = ParserModel()
    model.add_template(make_template(0, ["users", WILDCARD, WILDCARD], 0.3))
    model.add_template(make_template(1, ["users", "added", WILDCARD], 0.7, parent=0, depth=1))
    model.add_template(make_template(2, ["users", "added", "alice"], 1.0, parent=1, depth=2))
    return model


class TestTemplate:
    def test_text_and_counts(self):
        template = make_template(0, ["a", WILDCARD, "c"], 0.5)
        assert template.text == f"a {WILDCARD} c"
        assert template.n_tokens == 3
        assert template.n_wildcards == 1

    def test_matches_exact_and_wildcard(self):
        template = make_template(0, ["get", WILDCARD, "ok"], 1.0)
        assert template.matches(("get", "item42", "ok"))
        assert not template.matches(("put", "item42", "ok"))
        assert not template.matches(("get", "item42", "ok", "extra"))

    def test_round_trip_dict(self):
        template = make_template(3, ["x", WILDCARD], 0.8, parent=1, depth=2)
        assert Template.from_dict(template.to_dict()) == template

    def test_merge_consecutive_wildcards(self):
        merged = merge_consecutive_wildcards(["users", WILDCARD, WILDCARD, WILDCARD, "end"])
        assert merged == ("users", WILDCARD, "end")

    def test_merged_text_property(self):
        template = make_template(0, ["users", WILDCARD, WILDCARD], 0.5)
        assert template.merged_text == f"users {WILDCARD}"


class TestTemplateSimilarity:
    def test_identical_templates(self):
        assert template_similarity(["a", "b"], ["a", "b"]) == 1.0

    def test_different_lengths_are_zero(self):
        assert template_similarity(["a"], ["a", "b"]) == 0.0

    def test_wildcard_counts_half(self):
        assert template_similarity(["a", WILDCARD], ["a", "b"]) == pytest.approx(0.75)

    def test_disjoint_templates(self):
        assert template_similarity(["a", "b"], ["c", "d"]) == 0.0


class TestParserModel:
    def test_add_and_get(self, chain_model):
        assert len(chain_model) == 3
        assert chain_model.get(1).tokens == ("users", "added", WILDCARD)

    def test_duplicate_id_rejected(self, chain_model):
        with pytest.raises(ValueError):
            chain_model.add_template(make_template(0, ["dup"], 1.0))

    def test_match_prefers_most_saturated(self, chain_model):
        matched = chain_model.match_tokens(("users", "added", "alice"))
        assert matched.template_id == 2

    def test_match_falls_back_to_wildcards(self, chain_model):
        matched = chain_model.match_tokens(("users", "added", "bob"))
        assert matched.template_id == 1

    def test_match_none_for_unknown_shape(self, chain_model):
        assert chain_model.match_tokens(("completely", "different", "longer", "line")) is None

    def test_ancestors(self, chain_model):
        ancestors = [t.template_id for t in chain_model.ancestors(2)]
        assert ancestors == [1, 0]

    def test_resolve_threshold_walks_to_coarsest(self, chain_model):
        assert chain_model.resolve_threshold(2, 0.5).template_id == 1
        assert chain_model.resolve_threshold(2, 0.9).template_id == 2
        assert chain_model.resolve_threshold(2, 0.1).template_id == 0

    def test_resolve_threshold_below_node_returns_node(self, chain_model):
        assert chain_model.resolve_threshold(0, 0.99).template_id == 0

    def test_templates_at_threshold(self, chain_model):
        visible = {t.template_id for t in chain_model.templates_at_threshold(0.6)}
        assert visible == {1}
        visible_high = {t.template_id for t in chain_model.templates_at_threshold(0.95)}
        assert visible_high == {2}

    def test_descendants(self, chain_model):
        assert {t.template_id for t in chain_model.descendants(0)} == {1, 2}

    def test_temporary_template_insertion(self, chain_model):
        before = len(chain_model)
        template = chain_model.new_temporary_template(("new", "shape"))
        assert template.is_temporary
        assert len(chain_model) == before + 1
        assert chain_model.match_tokens(("new", "shape")).template_id == template.template_id

    def test_json_round_trip(self, chain_model):
        clone = ParserModel.from_json(chain_model.to_json())
        assert len(clone) == len(chain_model)
        assert clone.get(2).tokens == chain_model.get(2).tokens
        assert clone.resolve_threshold(2, 0.5).template_id == 1

    def test_size_bytes_positive_and_grows(self, chain_model):
        size = chain_model.size_bytes()
        chain_model.new_temporary_template(("extra", "template", "tokens"))
        assert chain_model.size_bytes() > size > 0

    def test_stats(self, chain_model):
        stats = chain_model.stats()
        assert stats["n_templates"] == 3
        assert stats["n_leaves"] == 1
        assert stats["max_depth"] == 2


class TestModelMerging:
    def test_similar_templates_merge(self, chain_model):
        other = ParserModel()
        other.add_template(make_template(0, ["users", "added", WILDCARD], 0.7))
        mapping = chain_model.merge_from(other, similarity_threshold=0.8)
        assert mapping[0] == 1
        assert len(chain_model) == 3

    def test_dissimilar_templates_inserted(self, chain_model):
        other = ParserModel()
        other.add_template(make_template(0, ["disk", "full", "alert"], 1.0))
        before = len(chain_model)
        mapping = chain_model.merge_from(other)
        assert len(chain_model) == before + 1
        assert chain_model.get(mapping[0]).tokens == ("disk", "full", "alert")

    def test_merge_preserves_parent_links_of_inserted_chain(self):
        target = ParserModel()
        other = ParserModel()
        other.add_template(make_template(0, ["a", WILDCARD], 0.4))
        other.add_template(make_template(1, ["a", "b"], 1.0, parent=0, depth=1))
        mapping = target.merge_from(other)
        child = target.get(mapping[1])
        assert child.parent_id == mapping[0]

    def test_merge_accumulates_weight(self):
        target = ParserModel()
        target.add_template(Template(0, ("x", "y"), 1.0, None, 0, weight=5.0))
        other = ParserModel()
        other.add_template(Template(0, ("x", "y"), 1.0, None, 0, weight=3.0))
        target.merge_from(other)
        assert target.get(0).weight == pytest.approx(8.0)

    def test_similarity_is_zero_for_different_lengths_even_when_wildcard_heavy(self):
        # Regression: a zip-based score would rate these 1.0 over the shared
        # prefix; templates of different token counts must never look alike.
        short = (WILDCARD, WILDCARD, "commit")
        long = (WILDCARD, WILDCARD, "commit", WILDCARD, "done")
        assert template_similarity(short, long) == 0.0
        assert template_similarity(long, short) == 0.0

    def test_wildcard_heavy_templates_of_different_lengths_never_merge(self):
        # Regression: even at similarity threshold 0, merge_from must not
        # fold a 5-token wildcard-heavy template into a 3-token one.
        target = ParserModel()
        target.add_template(make_template(0, [WILDCARD, WILDCARD, "commit"], 0.9))
        other = ParserModel()
        other.add_template(
            make_template(0, [WILDCARD, WILDCARD, "commit", WILDCARD, "done"], 0.9)
        )
        mapping = target.merge_from(other, similarity_threshold=0.0)
        assert len(target) == 2
        assert target.get(mapping[0]).n_tokens == 5

    def test_merge_relinks_depth_of_inserted_children(self):
        # An inserted template whose parent merged into an existing deep
        # template is re-linked with its depth recomputed from that parent.
        target = ParserModel()
        target.add_template(make_template(0, ["jobs", WILDCARD], 0.4))
        target.add_template(make_template(1, ["jobs", "queued"], 0.9, parent=0, depth=1))
        other = ParserModel()
        other.add_template(make_template(0, ["jobs", "queued"], 0.9))
        other.add_template(make_template(1, ["jobs", "failed"], 1.0, parent=0, depth=1))
        mapping = target.merge_from(other)
        assert mapping[0] == 1  # parent merged into the existing deep node
        inserted = target.get(mapping[1])
        assert inserted.parent_id == 1
        assert inserted.depth == 2

    def test_clone_is_deep_and_preserves_next_id(self, chain_model):
        clone = chain_model.clone()
        assert clone.to_json() == chain_model.to_json()
        # Same id allocator position, but independent counters afterwards.
        assert clone.allocate_id() == chain_model.allocate_id()
        # Mutating the clone's templates must not touch the original.
        clone.get(0).weight += 99
        assert chain_model.get(0).weight != clone.get(0).weight
        clone.new_temporary_template(("only", "in", "clone"))
        assert len(clone) == len(chain_model) + 1
