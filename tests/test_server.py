"""End-to-end tests for the wire-protocol front door.

Each test boots a real :class:`~repro.service.server.LogServer` on an
event-loop thread and talks to it over TCP with the real client (or a
raw socket for the frame-abuse cases).  The shard backend defaults to
the thread transport; the CI matrix re-runs this module once with
``REPRO_SHARD_BACKEND=process`` to prove the wire path over forked
workers too (``create_runtime`` reads the env var when no explicit
backend is passed).
"""

import socket
import struct
import time

import pytest

from repro.core import failpoints
from repro.core.config import ByteBrainConfig
from repro.service import protocol
from repro.service.client import ServerError, ServiceClient
from repro.service.runtime import create_runtime
from repro.service.server import (
    LogServer,
    build_tenant_specs,
    qualify_topic,
    run_server_in_thread,
)
from repro.service.service import LogParsingService
from repro.service.transport import BatchSection, encode_record_batch


DEFAULT_TENANTS = [{"name": "alpha", "topics": ["app"]},
                   {"name": "beta", "topics": ["app"]}]


class FrontDoor:
    """One running server plus the pieces tests poke at."""

    def __init__(self, tmp_path, tenants_data=None, config=None, **runtime_kwargs):
        self.config = config or ByteBrainConfig(n_shards=2)
        self.service = LogParsingService(config=self.config, store_root=tmp_path / "store")
        self.tenants = build_tenant_specs(tenants_data or DEFAULT_TENANTS)
        for spec, topics in self.tenants:
            for topic in topics:
                self.service.create_topic(qualify_topic(spec.name, topic))
        self.runtime = create_runtime(
            self.service, wal_dir=tmp_path / "wal", **runtime_kwargs
        )
        self.server = LogServer(self.service, self.runtime, self.tenants,
                                config=self.config)
        self._thread, self._stop = run_server_in_thread(self.server)

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, tenant="alpha") -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, tenant)

    def close(self) -> None:
        try:
            self._stop()
        finally:
            self.runtime.shutdown(drain=False)


@pytest.fixture()
def front_door(tmp_path):
    door = FrontDoor(tmp_path)
    yield door
    door.close()


class TestHandshakeAndTenancy:
    def test_hello_advertises_topics_and_limits(self, front_door):
        with front_door.client("alpha") as client:
            assert client.hello["topics"] == ["app"]
            assert client.max_batch_records >= 1
            assert "rate_limit" in client.hello["limits"]

    def test_unknown_tenant_is_rejected(self, front_door):
        with pytest.raises(ServerError) as excinfo:
            ServiceClient("127.0.0.1", front_door.port, "ghost")
        assert excinfo.value.code == protocol.ERR_UNAUTHENTICATED

    def test_ops_before_hello_are_rejected(self, front_door):
        sock = socket.create_connection(("127.0.0.1", front_door.port), timeout=10)
        try:
            rfile = sock.makefile("rb")
            sock.sendall(protocol.encode_json_frame(
                {"id": 0, "op": "query", "topic": "app"}))
            _, body = protocol.read_frame_sync(rfile, 1 << 20)
            response = protocol.decode_json_body(body)
            assert response["error"] == protocol.ERR_UNAUTHENTICATED
        finally:
            sock.close()

    def test_tenants_cannot_see_each_other(self, front_door):
        with front_door.client("alpha") as alpha:
            alpha.ingest("app", [f"alpha event {i}" for i in range(40)], timestamp=10.0)
            alpha.drain()
        with front_door.client("beta") as beta:
            assert int(beta.topic_stats("app")["n_records"]) == 0
            # And the separator cannot be smuggled into a topic name.
            with pytest.raises(ServerError) as excinfo:
                beta.ingest("alpha::app", ["sneaky"], timestamp=1.0)
            assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_unknown_topic(self, front_door):
        with front_door.client() as client:
            with pytest.raises(ServerError) as excinfo:
                client.ingest("nope", ["x"], timestamp=1.0)
            assert excinfo.value.code == protocol.ERR_UNKNOWN_TOPIC


class TestIngestAndQuery:
    def test_binary_batch_roundtrip(self, front_door):
        raws = [f"worker {i % 5} finished job {i} in {i % 17} ms" for i in range(300)]
        with front_door.client() as client:
            report = client.ingest("app", raws, timestamp=50.0)
            assert report.accepted == 300
            client.drain()
            stats = client.topic_stats("app")
            assert int(stats["n_records"]) == 300
            groups = client.query("app", threshold=0.5)
            assert sum(g["count"] for g in groups) == 300

    def test_json_ingest_path(self, front_door):
        with front_door.client() as client:
            response = client.call("ingest", topic="app",
                                   records=["a b c", "a b d"], timestamp=5.0)
            assert response["accepted"] == 2
            client.drain()
            assert int(client.topic_stats("app")["n_records"]) == 2

    def test_per_record_timestamps_survive(self, front_door):
        raws = [f"event {i}" for i in range(10)]
        stamps = [100.0 + i for i in range(10)]
        with front_door.client() as client:
            client.ingest("app", raws, timestamps=stamps)
            client.drain()
            result = client.call("analytics", topic="app", kind="drill_down",
                                 start_time=104.5, end_time=200.0)
            got = sorted(r["timestamp"] for r in result["records"])
            assert got == stamps[5:]

    def test_pipelined_requests_answer_in_order(self, front_door):
        with front_door.client() as client:
            ids = [client.send("ping") for _ in range(20)]
            responses = [client.recv() for _ in range(20)]
            assert [r["id"] for r in responses] == ids

    def test_analytics_and_model_ops(self, front_door):
        raws = [f"worker {i % 3} finished job {i}" for i in range(200)]
        with front_door.client() as client:
            client.ingest("app", raws, timestamp=10.0)
            client.drain()
            # Window spans a whole analytics bucket (60 s): the
            # incremental engine answers over complete buckets.
            top = client.call("analytics", topic="app", kind="top_k",
                              start_time=0.0, end_time=60.0, k=3)["top_k"]
            assert sum(count for _, count in top) == 200
            client.call("train", topic="app", now=20.0)
            versions = client.call("model_versions", topic="app")["versions"]
            assert len(versions) >= 1


class TestAdmissionOverTheWire:
    def test_rate_limited_then_recovers(self, tmp_path):
        door = FrontDoor(tmp_path, tenants_data=[
            {"name": "alpha", "topics": ["app"], "rate_limit": 50.0, "rate_burst": 100.0},
        ])
        try:
            with door.client() as client:
                section = BatchSection(topic="app", first_seq=0,
                                       timestamps=[1.0] * 60, raws=["x"] * 60)
                client.send_batch([section])
                client.recv()  # 60 of 100 burst tokens spent
                client.send_batch([section])
                with pytest.raises(ServerError) as excinfo:
                    client.recv()
                assert excinfo.value.code == protocol.ERR_RATE_LIMITED
                assert excinfo.value.retry_after > 0.0
                assert excinfo.value.retryable
                # The high-level path retries through the refusal.
                report = client.ingest("app", ["y"] * 60, timestamp=2.0)
                assert report.accepted == 60
                assert report.rate_limited >= 0  # retry loop handled it
                client.drain()
                assert int(client.topic_stats("app")["n_records"]) == 120
        finally:
            door.close()

    def test_quota_exhaustion_is_terminal(self, tmp_path):
        door = FrontDoor(tmp_path, tenants_data=[
            {"name": "alpha", "topics": ["app"], "record_quota": 100},
        ])
        try:
            with door.client() as client:
                client.ingest("app", ["x"] * 100, timestamp=1.0)
                with pytest.raises(ServerError) as excinfo:
                    client.ingest("app", ["y"], timestamp=2.0)
                assert excinfo.value.code == protocol.ERR_QUOTA_EXCEEDED
                assert not excinfo.value.retryable
                client.drain()
                assert int(client.topic_stats("app")["n_records"]) == 100
        finally:
            door.close()

    def test_backpressure_surfaces_and_loses_nothing(self, tmp_path):
        # Slow the shard workers so the bounded queues fill, then pour
        # records in: the server must answer BACKPRESSURE (retryable),
        # never block the producer or drop an acked record.
        failpoints.configure_from_spec("worker.batch:delay:seconds=0.05")
        try:
            door = FrontDoor(tmp_path, queue_capacity=32, micro_batch_size=16)
        finally:
            # Armed before runtime construction so process-backend
            # children inherit it; disarm in the parent either way once
            # the workers exist.
            pass
        try:
            with door.client() as client:
                raws = [f"pressure record {i}" for i in range(400)]
                report = client.ingest("app", raws, timestamp=5.0, max_retries=500)
                assert report.accepted == 400
                assert report.backpressure > 0, "queues never filled — not exercised"
                client.drain()
                assert int(client.topic_stats("app")["n_records"]) == 400
                server_counters = client.stats()["server"]
                assert server_counters["backpressure"] == report.backpressure
        finally:
            failpoints.clear_all()
            door.close()

    def test_oversized_batch_is_a_client_error(self, front_door):
        capacity = front_door.runtime.queue_capacity
        section = BatchSection(topic="app", first_seq=0,
                               timestamps=[1.0] * (capacity + 1),
                               raws=["x"] * (capacity + 1))
        with front_door.client() as client:
            client.send_batch([section])
            with pytest.raises(ServerError) as excinfo:
                client.recv()
            assert excinfo.value.code == protocol.ERR_BAD_REQUEST


class TestFrameAbuse:
    def _raw(self, port):
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        return sock, sock.makefile("rb")

    def test_malformed_json_body(self, front_door):
        sock, rfile = self._raw(front_door.port)
        try:
            sock.sendall(protocol.encode_frame(protocol.KIND_JSON, b"{not json"))
            _, body = protocol.read_frame_sync(rfile, 1 << 20)
            assert protocol.decode_json_body(body)["error"] == protocol.ERR_BAD_REQUEST
        finally:
            sock.close()

    def test_oversized_frame_rejected_and_connection_closed(self, front_door):
        sock, rfile = self._raw(front_door.port)
        try:
            huge = front_door.config.server_max_frame_bytes + 1
            sock.sendall(struct.pack("<IB", huge, protocol.KIND_JSON))
            kind, body = protocol.read_frame_sync(rfile, 1 << 20)
            assert protocol.decode_json_body(body)["error"] == protocol.ERR_FRAME_TOO_LARGE
            # The server hangs up: the stream cannot be resynchronised.
            assert protocol.read_frame_sync(rfile, 1 << 20) == (-1, b"")
        finally:
            sock.close()

    def test_unknown_frame_kind_rejected(self, front_door):
        sock, rfile = self._raw(front_door.port)
        try:
            sock.sendall(struct.pack("<IB", 0, 99))
            _, body = protocol.read_frame_sync(rfile, 1 << 20)
            assert protocol.decode_json_body(body)["error"] == protocol.ERR_BAD_REQUEST
        finally:
            sock.close()

    def test_truncated_frame_does_not_wedge_the_server(self, front_door):
        sock, _ = self._raw(front_door.port)
        # Promise 1000 bytes, deliver 3, vanish.
        sock.sendall(struct.pack("<IB", 1000, protocol.KIND_JSON) + b"abc")
        sock.close()
        # The server shrugged it off and still serves real clients.
        with front_door.client() as client:
            assert client.call("ping")["pong"] is True

    def test_garbage_batch_payload(self, front_door):
        with front_door.client() as client:
            frame = protocol.encode_batch_frame({"id": 99}, b"\xff\xfe garbage")
            client._sock.sendall(frame)
            client._in_flight += 1
            with pytest.raises(ServerError) as excinfo:
                client.recv()
            assert excinfo.value.code == protocol.ERR_BAD_REQUEST


class TestDisconnectAndShutdown:
    def test_mid_request_disconnect_loses_no_acked_records(self, front_door):
        batch = 20
        acked = 0
        client = front_door.client()
        try:
            for i in range(5):
                raws = [f"durable record {i}-{j}" for j in range(batch)]
                report = client.ingest("app", raws, timestamp=float(i))
                acked += report.accepted
            # One more batch goes out, but the client dies before
            # reading the ack — the server may or may not have applied
            # it; the five acked batches must all survive.
            section = BatchSection(topic="app", first_seq=0,
                                   timestamps=[9.0] * batch,
                                   raws=[f"unacked {j}" for j in range(batch)])
            client.send_batch([section])
        finally:
            client._sock.close()  # abrupt: no goodbye, response unread
        with front_door.client() as verifier:
            verifier.drain()
            stored = int(verifier.topic_stats("app")["n_records"])
        assert stored >= acked == 100
        assert stored in (acked, acked + batch)

    def test_shutdown_op_drains_then_refuses_connections(self, tmp_path):
        door = FrontDoor(tmp_path)
        try:
            with door.client() as client:
                client.ingest("app", [f"final {i}" for i in range(50)], timestamp=1.0)
                client.shutdown_server()
            deadline = time.time() + 30.0
            while time.time() < deadline and not door.server._stopped.is_set():
                time.sleep(0.05)
            assert door.server._stopped.is_set()
            # Drain-before-close: everything acked is applied.
            topic = qualify_topic("alpha", "app")
            assert door.service.topic(topic).topic.high_watermark == 50
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", door.port), timeout=2)
        finally:
            door.close()

    def test_slow_reader_is_bounded_not_wedging(self, tmp_path):
        config = ByteBrainConfig(
            n_shards=2,
            server_write_buffer_bytes=4096,
            server_write_timeout_seconds=0.5,
        )
        door = FrontDoor(tmp_path, config=config)
        try:
            with door.client() as feeder:
                feeder.ingest(
                    "app",
                    [f"padding record {i} {'x' * 200}" for i in range(2000)],
                    timestamp=1.0,
                )
                feeder.drain()
            stalled = door.client()
            # Pile up large responses without ever reading them.
            for _ in range(200):
                try:
                    stalled.send("analytics", topic="app", kind="drill_down",
                                 start_time=0.0, end_time=10.0, limit=2000)
                except OSError:
                    break  # server aborted us — exactly the point
            time.sleep(1.5)
            # Whatever happened to the stalled reader, the server must
            # still answer everyone else promptly.
            with door.client("beta") as healthy:
                assert healthy.call("ping")["pong"] is True
            stalled._sock.close()
        finally:
            door.close()
