"""Core ByteBrain-LogParser algorithm (the paper's primary contribution).

Sub-modules map one-to-one onto the paper's algorithm sections:

- :mod:`repro.core.tokenizer` — §4.1.1 regex tokenization
- :mod:`repro.core.masking` — §4.1.2 common variable replacement
- :mod:`repro.core.dedup` — §4.1.3 deduplication
- :mod:`repro.core.encoding` — §4.1.4 hash encoding (+ ordinal for ablation)
- :mod:`repro.core.grouping` — §4.2 initial grouping
- :mod:`repro.core.distance` — §4.4 positional similarity distance
- :mod:`repro.core.saturation` — §4.5 saturation score
- :mod:`repro.core.clustering` — §4.4/§4.6/§4.7 single clustering process
- :mod:`repro.core.tree` — §4.3 hierarchical clustering tree
- :mod:`repro.core.trainer` — §3 offline training phase
- :mod:`repro.core.matcher` — §4.8 online matching
- :mod:`repro.core.query` — §3 query-time precision adjustment
- :mod:`repro.core.model` — template model, persistence, merging
- :mod:`repro.core.parser` — the public ``ByteBrainParser`` façade
- :mod:`repro.core.incremental` — §3/§6 incremental rounds (cluster only
  new records, fold into the live model, drift-escalate to full retrain)
- :mod:`repro.core.modelstore` — versioned on-disk model snapshots with
  manifest, ``load_latest`` and rollback
- :mod:`repro.core.retry` — accounted retry policies with jittered backoff
- :mod:`repro.core.failpoints` — deterministic fault-injection harness
"""

from repro.core.config import ByteBrainConfig
from repro.core.incremental import DriftPolicy, IncrementalTrainer
from repro.core.modelstore import ModelStore
from repro.core.parser import ByteBrainParser
from repro.core.retry import RetryPolicy

__all__ = [
    "ByteBrainConfig",
    "ByteBrainParser",
    "DriftPolicy",
    "IncrementalTrainer",
    "ModelStore",
    "RetryPolicy",
]
