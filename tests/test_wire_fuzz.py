"""Wire-frame abuse: byte-level fuzz against a live server socket.

The TCP mirror of ``tests/test_wal_torn_tail.py``: where that suite
truncates and flips bytes in WAL segments and demands recovery either
replays cleanly or raises, this one truncates and flips bytes in
*protocol frames* mid-stream and demands the server (a) answers with a
loud protocol error or hangs up — never applies a half-read frame or
wedges — and (b) keeps serving well-formed clients afterwards.  The
abuse matrix:

* frames torn at **every** byte offset (the sender vanishes mid-frame),
* a batch frame with each byte flipped in turn (header-length prefix,
  JSON header, binary payload),
* length prefixes claiming more than the advertised frame cap,
* every undefined frame-kind byte,
* seeded random garbage streams.

Marked slow: run by the CI chaos job, not the unit step.
"""

import random
import socket
import struct

import pytest

from repro.core.config import ByteBrainConfig
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.runtime import create_runtime
from repro.service.server import LogServer, build_tenant_specs, qualify_topic, run_server_in_thread
from repro.service.service import LogParsingService
from repro.service.transport import BatchSection, encode_record_batch

pytestmark = pytest.mark.slow

_HEADER = struct.Struct("<IB")


@pytest.fixture(scope="module")
def door(tmp_path_factory):
    """One server shared by the whole fuzz matrix (hundreds of connects)."""
    root = tmp_path_factory.mktemp("fuzz")
    config = ByteBrainConfig(n_shards=2)
    service = LogParsingService(config=config, store_root=root / "store")
    tenants = build_tenant_specs([{"name": "alpha", "topics": ["app"]}])
    for spec, topics in tenants:
        for topic in topics:
            service.create_topic(qualify_topic(spec.name, topic))
    runtime = create_runtime(service, wal_dir=root / "wal")
    server = LogServer(service, runtime, tenants, config=config)
    thread, stop = run_server_in_thread(server)
    holder = type("Door", (), {"server": server, "port": server.port,
                               "config": config})()
    yield holder
    stop()
    runtime.shutdown(drain=False)


def _poke(port, payload, timeout=10.0):
    """Send raw bytes; return ("error", code) / ("ok",) / ("closed",).

    "Hangs" surface as socket timeouts and fail the test: whatever the
    server does with garbage, it must do it promptly.
    """
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    try:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)  # sender vanishes after the bytes
        rfile = sock.makefile("rb")
        try:
            kind, body = protocol.read_frame_sync(rfile, 1 << 26)
        except (protocol.FrameError, ConnectionError, OSError, ValueError):
            return ("closed",)
        if kind == -1:
            return ("closed",)
        response = protocol.decode_json_body(body)
        if response.get("ok"):
            return ("ok",)
        return ("error", response.get("error"))
    finally:
        sock.close()


def _assert_healthy(door):
    with ServiceClient("127.0.0.1", door.port, "alpha") as client:
        assert client.call("ping")["pong"] is True


def _batch_frame():
    section = BatchSection(topic="app", first_seq=0,
                           timestamps=[1.0, 2.0], raws=["fuzz a", "fuzz b"])
    return protocol.encode_batch_frame({"id": 7}, encode_record_batch([section]))


class TestTornFrames:
    def test_json_frame_torn_at_every_offset(self, door):
        frame = protocol.encode_json_frame({"id": 1, "op": "ping"})
        for cut in range(1, len(frame)):
            outcome = _poke(door.port, frame[:cut])
            # A torn frame can only end in silence (short read) — the
            # server must never answer a half-frame as if it parsed.
            assert outcome == ("closed",), (
                f"cut at byte {cut}: server answered a torn frame: {outcome}"
            )
        _assert_healthy(door)

    def test_batch_frame_torn_at_sampled_offsets(self, door):
        frame = _batch_frame()
        rng = random.Random(0xF0221)
        cuts = sorted(rng.sample(range(1, len(frame)), min(64, len(frame) - 1)))
        for cut in cuts:
            outcome = _poke(door.port, frame[:cut])
            assert outcome == ("closed",), (
                f"cut at byte {cut}: torn batch frame was answered: {outcome}"
            )
        _assert_healthy(door)
        # Nothing from any torn frame was applied.
        with ServiceClient("127.0.0.1", door.port, "alpha") as client:
            client.drain()
            assert int(client.topic_stats("app")["n_records"]) == 0


class TestFlippedBytes:
    def test_batch_frame_with_each_byte_flipped(self, door):
        """Flip every byte of a batch frame in turn.

        There is deliberately no application-level CRC on the wire (TCP
        already checksums the stream; the WAL adds CRCs where bytes
        *rest*), so a flip inside the float timestamps or the raw text
        may still decode — that is fine.  What must never happen: a
        hang, a server death, or a record count that exceeds what one
        frame could carry.
        """
        frame = bytearray(_batch_frame())
        applied_budget = 0
        for position in range(len(frame)):
            mutated = bytes(frame[:position]) + bytes([frame[position] ^ 0xFF]) \
                + bytes(frame[position + 1:])
            outcome = _poke(door.port, mutated)
            assert outcome[0] in ("ok", "error", "closed"), outcome
            if outcome[0] == "ok":
                applied_budget += 2  # the frame's two records, at most
        _assert_healthy(door)
        with ServiceClient("127.0.0.1", door.port, "alpha") as client:
            client.drain()
            stored = int(client.topic_stats("app")["n_records"])
            assert stored <= applied_budget, (
                f"{stored} records stored but only {applied_budget} were acked"
            )

    def test_flipped_kind_byte_is_rejected(self, door):
        frame = protocol.encode_json_frame({"id": 1, "op": "ping"})
        for kind in (2, 3, 17, 128, 255):
            mutated = frame[:4] + bytes([kind]) + frame[5:]
            outcome = _poke(door.port, mutated)
            assert outcome[0] in ("error", "closed"), (
                f"kind {kind}: {outcome}"
            )
        _assert_healthy(door)


class TestHostileLengths:
    def test_oversized_length_prefix_is_refused_loudly(self, door):
        cap = door.config.server_max_frame_bytes
        for length in (cap + 1, cap * 2, 0xFFFFFFFF):
            outcome = _poke(door.port, _HEADER.pack(length, protocol.KIND_JSON))
            assert outcome in (("error", protocol.ERR_FRAME_TOO_LARGE),
                               ("closed",)), f"length {length}: {outcome}"
        _assert_healthy(door)

    def test_batch_header_length_beyond_body_is_bad_request(self, door):
        # The inner header_len prefix promises more bytes than the body has.
        body = struct.pack("<I", 1 << 20) + b"{}"
        outcome = _poke(door.port, protocol.encode_frame(protocol.KIND_BATCH, body))
        assert outcome[0] in ("error", "closed")
        _assert_healthy(door)

    def test_empty_and_tiny_bodies(self, door):
        for body in (b"", b"\x00", b"{}"):
            for kind in (protocol.KIND_JSON, protocol.KIND_BATCH):
                outcome = _poke(door.port, protocol.encode_frame(kind, body))
                assert outcome[0] in ("error", "closed"), (kind, body, outcome)
        _assert_healthy(door)


class TestGarbageStreams:
    def test_seeded_random_garbage_never_wedges(self, door):
        rng = random.Random(0xBAD5EED)
        for trial in range(32):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 512)))
            outcome = _poke(door.port, blob)
            assert outcome[0] in ("error", "closed"), (
                f"trial {trial}: garbage was acknowledged: {outcome}"
            )
        _assert_healthy(door)

    def test_good_frame_after_garbage_connection(self, door):
        # Abuse and real traffic interleaved: each garbage connection is
        # isolated — the next clean connection sees a pristine server.
        frame = protocol.encode_json_frame({"id": 1, "op": "ping"})
        _poke(door.port, b"\xde\xad\xbe\xef" * 8)
        assert _poke(door.port, frame) == ("ok",)
        _poke(door.port, frame[: len(frame) // 2])
        assert _poke(door.port, frame) == ("ok",)
