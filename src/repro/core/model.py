"""Template model: the artefact produced by offline training (paper §3, §4.8).

The model stores, for every clustering-tree node, only what online matching
and query-time precision adjustment need: the template text, the saturation
score and the parent link.  Token-level statistics are deliberately *not*
stored (that is the storage saving of §4.8), so the model is a few megabytes
even for very large topics (Table 5).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import WILDCARD

__all__ = ["Template", "ParserModel", "template_similarity", "merge_consecutive_wildcards"]


def merge_consecutive_wildcards(tokens: Sequence[str], wildcard: str = WILDCARD) -> Tuple[str, ...]:
    """Collapse runs of consecutive wildcards into a single wildcard (§7).

    Used at the query-result layer so templates produced by variable-length
    list arguments (``users * * *``) present as one intuitive template
    (``users *``) without complicating online matching.
    """
    merged: List[str] = []
    for token in tokens:
        if token == wildcard and merged and merged[-1] == wildcard:
            continue
        merged.append(token)
    return tuple(merged)


def template_similarity(a: Sequence[str], b: Sequence[str], wildcard: str = WILDCARD) -> float:
    """Positional similarity between two templates, used for model merging.

    Two templates of different lengths are never merged (similarity 0).  For
    equal lengths, a position contributes 1 when the tokens are identical and
    0.5 when exactly one side is a wildcard (the wildcard *could* stand for
    the other token); the score is the mean contribution.
    """
    if len(a) != len(b):
        return 0.0
    if len(a) == 0:
        return 1.0
    score = 0.0
    for token_a, token_b in zip(a, b):
        if token_a == token_b:
            score += 1.0
        elif token_a == wildcard or token_b == wildcard:
            score += 0.5
    return score / len(a)


@dataclass
class Template:
    """One log template (== one clustering-tree node) held by the model."""

    template_id: int
    tokens: Tuple[str, ...]
    saturation: float
    parent_id: Optional[int]
    depth: int
    weight: float = 0.0
    is_temporary: bool = False

    @property
    def text(self) -> str:
        """Space-joined template text (the user-facing representation)."""
        return " ".join(self.tokens)

    @property
    def merged_text(self) -> str:
        """Template text with consecutive wildcards collapsed (§7)."""
        return " ".join(merge_consecutive_wildcards(self.tokens))

    @property
    def n_tokens(self) -> int:
        """Number of token positions."""
        return len(self.tokens)

    @property
    def n_wildcards(self) -> int:
        """Number of variable positions."""
        return sum(1 for token in self.tokens if token == WILDCARD)

    def matches(self, tokens: Sequence[str]) -> bool:
        """Position-based match (§4.8): exact token or wildcard at each slot."""
        if len(tokens) != len(self.tokens):
            return False
        for template_token, token in zip(self.tokens, tokens):
            if template_token != WILDCARD and template_token != token:
                return False
        return True

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "template_id": self.template_id,
            "tokens": list(self.tokens),
            "saturation": self.saturation,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "weight": self.weight,
            "is_temporary": self.is_temporary,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Template":
        """Inverse of :meth:`to_dict`."""
        return cls(
            template_id=int(data["template_id"]),
            tokens=tuple(data["tokens"]),
            saturation=float(data["saturation"]),
            parent_id=None if data["parent_id"] is None else int(data["parent_id"]),
            depth=int(data["depth"]),
            weight=float(data.get("weight", 0.0)),
            is_temporary=bool(data.get("is_temporary", False)),
        )


class ParserModel:
    """The collection of templates produced by training, plus match indexes.

    The model maintains an index from token count to the template ids of that
    length, ordered by descending saturation — exactly the order in which
    online matching probes templates (§4.8: most precise first).
    """

    def __init__(self, templates: Optional[Iterable[Template]] = None) -> None:
        self._templates: Dict[int, Template] = {}
        self._by_length: Dict[int, List[int]] = {}
        self._next_id: int = 0
        self.dictionary_bytes: int = 0
        if templates:
            for template in templates:
                self.add_template(template)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def allocate_id(self) -> int:
        """Reserve the next free template id."""
        allocated = self._next_id
        self._next_id += 1
        return allocated

    @property
    def next_template_id(self) -> int:
        """The id the next :meth:`allocate_id` call would return."""
        return self._next_id

    def reserve_ids(self, next_id: int) -> None:
        """Raise the id allocator so ids below ``next_id`` are never minted.

        Used when an older model snapshot is restored (rollback): ids the
        newer, rolled-back-away versions handed out are still referenced by
        stored records, so the restored model must not reallocate them to
        unrelated templates.
        """
        self._next_id = max(self._next_id, next_id)

    def add_template(self, template: Template) -> Template:
        """Insert a template (id must be unique) and index it for matching."""
        if template.template_id in self._templates:
            raise ValueError(f"duplicate template id {template.template_id}")
        self._templates[template.template_id] = template
        self._next_id = max(self._next_id, template.template_id + 1)
        bucket = self._by_length.setdefault(template.n_tokens, [])
        bucket.append(template.template_id)
        bucket.sort(key=lambda tid: (-self._templates[tid].saturation, tid))
        return template

    def new_temporary_template(self, tokens: Sequence[str]) -> Template:
        """Create and insert a temporary template for an unmatched online log.

        Unmatched logs become their own (fully saturated) template so queries
        can reference them immediately; the next training cycle re-learns
        them properly (§3 online matching).
        """
        template = Template(
            template_id=self.allocate_id(),
            tokens=tuple(tokens),
            saturation=1.0,
            parent_id=None,
            depth=0,
            weight=1.0,
            is_temporary=True,
        )
        return self.add_template(template)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._templates)

    def __contains__(self, template_id: int) -> bool:
        return template_id in self._templates

    def get(self, template_id: int) -> Template:
        """Fetch a template by id (KeyError if unknown)."""
        return self._templates[template_id]

    def templates(self) -> List[Template]:
        """All templates, ordered by id."""
        return [self._templates[tid] for tid in sorted(self._templates)]

    def templates_of_length(self, n_tokens: int) -> List[Template]:
        """Templates with the given token count, most saturated first."""
        return [self._templates[tid] for tid in self._by_length.get(n_tokens, [])]

    def match_tokens(self, tokens: Sequence[str]) -> Optional[Template]:
        """Position-based online matching (§4.8).

        Probes templates of the same token count in descending saturation
        order and returns the first match, or ``None``.
        """
        for template_id in self._by_length.get(len(tokens), []):
            template = self._templates[template_id]
            if template.matches(tokens):
                return template
        return None

    def ancestors(self, template_id: int) -> List[Template]:
        """Parent chain of a template, nearest parent first."""
        chain: List[Template] = []
        current = self._templates[template_id]
        seen = {template_id}
        while current.parent_id is not None and current.parent_id in self._templates:
            if current.parent_id in seen:  # defensive: break on cycles
                break
            current = self._templates[current.parent_id]
            seen.add(current.template_id)
            chain.append(current)
        return chain

    def resolve_threshold(self, template_id: int, threshold: float) -> Template:
        """Coarsest template on the ancestor path with saturation >= threshold.

        This is the query-time precision adjustment of §3: starting from the
        precise template recorded at ingestion, walk upward and return the
        shallowest ancestor that still satisfies the user's threshold.  If
        even the starting template falls below the threshold it is returned
        unchanged (it is the most precise information available).
        """
        start = self._templates[template_id]
        candidates = [start] + self.ancestors(template_id)
        chosen = start
        for template in candidates:
            if template.saturation >= threshold - 1e-12:
                chosen = template
            else:
                break
        return chosen

    def descendants(self, template_id: int) -> List[Template]:
        """All templates whose ancestor chain contains ``template_id``."""
        result = []
        for template in self._templates.values():
            if template.template_id == template_id:
                continue
            if any(anc.template_id == template_id for anc in self.ancestors(template.template_id)):
                result.append(template)
        return result

    def templates_at_threshold(self, threshold: float) -> List[Template]:
        """The set of coarsest templates satisfying ``threshold``.

        These are the templates a user sees when setting the precision slider
        to ``threshold``: templates whose saturation meets the threshold but
        whose parent's does not (or that have no parent).
        """
        selected = []
        for template in self._templates.values():
            if template.saturation < threshold - 1e-12:
                continue
            parent_ok = (
                template.parent_id is not None
                and template.parent_id in self._templates
                and self._templates[template.parent_id].saturation >= threshold - 1e-12
            )
            if not parent_ok:
                selected.append(template)
        return sorted(selected, key=lambda t: t.template_id)

    # ------------------------------------------------------------------ #
    # merging (§3: the newly trained model is merged with the previous one)
    # ------------------------------------------------------------------ #
    def merge_from(
        self,
        other: "ParserModel",
        similarity_threshold: float = 0.8,
        weighted_saturation: bool = False,
    ) -> Dict[int, int]:
        """Merge another model's templates into this one.

        Templates of ``other`` that are sufficiently similar to an existing
        template are folded into it (their weight accumulates); dissimilar
        ones are inserted with fresh ids, re-linked into this model's tree:
        an inserted template whose parent merged into an existing template
        becomes a child of that template, and its depth is recomputed from
        the mapped parent so ancestor walks stay consistent.  Existing
        template ids are never reassigned (stable ids — stored records keep
        referring to the same templates across rounds).

        Parameters
        ----------
        similarity_threshold:
            Minimum :func:`template_similarity` for folding a template into
            an existing one.  Templates of different token counts are never
            merged regardless of threshold.
        weighted_saturation:
            When true, a merged target's saturation becomes the
            weight-weighted mean of both sides (used by incremental rounds,
            where weights are occurrence counts); by default the target's
            saturation is kept unchanged.

        Returns
        -------
        dict
            Mapping from ``other``'s template ids to ids in this model.
        """
        id_map: Dict[int, int] = {}
        resort_lengths: set = set()
        # First pass: decide merge-vs-insert per template (parents first so
        # the parent links of inserted templates can be remapped).
        for template in sorted(other.templates(), key=lambda t: t.depth):
            target = self._find_similar(template, similarity_threshold)
            if target is not None:
                if weighted_saturation:
                    total = target.weight + template.weight
                    if total > 0:
                        target.saturation = (
                            target.saturation * target.weight
                            + template.saturation * template.weight
                        ) / total
                        resort_lengths.add(target.n_tokens)
                target.weight += template.weight
                # A properly-trained template folding into a temporary one
                # confirms it: promote the target so later rounds treat the
                # structure as learned rather than a stopgap.
                target.is_temporary = target.is_temporary and template.is_temporary
                id_map[template.template_id] = target.template_id
                continue
            new_id = self.allocate_id()
            parent_id = template.parent_id
            mapped_parent = id_map.get(parent_id) if parent_id is not None else None
            depth = (
                self._templates[mapped_parent].depth + 1
                if mapped_parent is not None
                else template.depth
            )
            clone = Template(
                template_id=new_id,
                tokens=template.tokens,
                saturation=template.saturation,
                parent_id=mapped_parent,
                depth=depth,
                weight=template.weight,
                is_temporary=template.is_temporary,
            )
            self.add_template(clone)
            id_map[template.template_id] = new_id
        for length in resort_lengths:
            self._by_length[length].sort(
                key=lambda tid: (-self._templates[tid].saturation, tid)
            )
        return id_map

    def _find_similar(self, template: Template, threshold: float) -> Optional[Template]:
        best: Optional[Template] = None
        best_score = threshold
        # Candidates come from the same-length bucket and template_similarity
        # scores length mismatches 0.0, so templates of different token
        # counts can never merge, however wildcard-heavy.
        for candidate_id in self._by_length.get(template.n_tokens, []):
            candidate = self._templates[candidate_id]
            score = template_similarity(candidate.tokens, template.tokens)
            if score >= best_score and abs(candidate.saturation - template.saturation) <= 0.25:
                if best is None or score > best_score:
                    best = candidate
                    best_score = score
        return best

    def clone(self) -> "ParserModel":
        """Deep copy of the model (templates are value objects, so a field
        copy per template suffices).

        Incremental rounds merge into a clone and hot-swap it in, so readers
        of the live model never observe a half-merged state.
        """
        copy = ParserModel(
            Template(
                template_id=t.template_id,
                tokens=t.tokens,
                saturation=t.saturation,
                parent_id=t.parent_id,
                depth=t.depth,
                weight=t.weight,
                is_temporary=t.is_temporary,
            )
            for t in self.templates()
        )
        copy._next_id = self._next_id
        copy.dictionary_bytes = self.dictionary_bytes
        return copy

    # ------------------------------------------------------------------ #
    # persistence and accounting
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Serialise the full model to JSON."""
        payload = {
            "templates": [template.to_dict() for template in self.templates()],
            "dictionary_bytes": self.dictionary_bytes,
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, payload: str) -> "ParserModel":
        """Deserialise a model produced by :meth:`to_json`."""
        data = json.loads(payload)
        model = cls(Template.from_dict(item) for item in data["templates"])
        model.dictionary_bytes = int(data.get("dictionary_bytes", 0))
        return model

    def size_bytes(self) -> int:
        """Approximate persisted size of the model (templates + dictionary).

        This is the quantity reported as "Model Size" in Table 5; hash
        encoding keeps ``dictionary_bytes`` at zero, ordinal encoding pays
        for the token dictionary (Fig. 10).
        """
        return len(self.to_json().encode("utf-8")) + self.dictionary_bytes

    def stats(self) -> Dict[str, float]:
        """Summary statistics used by the service and the benchmarks."""
        templates = self.templates()
        if not templates:
            return {
                "n_templates": 0,
                "n_leaves": 0,
                "max_depth": 0,
                "size_bytes": self.size_bytes(),
            }
        parent_ids = {t.parent_id for t in templates if t.parent_id is not None}
        n_leaves = sum(1 for t in templates if t.template_id not in parent_ids)
        return {
            "n_templates": len(templates),
            "n_leaves": n_leaves,
            "max_depth": max(t.depth for t in templates),
            "size_bytes": self.size_bytes(),
        }
