"""AEL: Abstracting Execution Logs.

Re-implementation of Jiang et al., *Abstracting Execution Logs to Execution
Events for Enterprise Applications* (QSIC 2008).  AEL first anonymises
obvious dynamic fields, bins logs by (token count, number of anonymised
tokens), and then "categorises" each bin by merging logs whose constant
tokens are identical.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.baselines.base import WILDCARD, BaselineParser

__all__ = ["AELParser"]


class AELParser(BaselineParser):
    """Bin-and-categorise parser (AEL)."""

    name = "AEL"

    def __init__(self, merge_percent: float = 0.5) -> None:
        self.merge_percent = merge_percent

    def parse(self, lines: Sequence[str]) -> List[int]:
        keys: List[Tuple] = []
        for line in lines:
            tokens = self.preprocess(line)
            if not tokens:
                tokens = ["<empty>"]
            anonymised = [WILDCARD if self._is_dynamic(token) else token for token in tokens]
            n_dynamic = sum(1 for token in anonymised if token == WILDCARD)
            constants = tuple(token for token in anonymised if token != WILDCARD)
            # Bin key: token count + dynamic-token count; category key: the
            # constant-token signature within the bin.
            keys.append((len(anonymised), n_dynamic, constants))
        return self.group_by(keys)

    @staticmethod
    def _is_dynamic(token: str) -> bool:
        if token == WILDCARD:
            return True
        if any(ch.isdigit() for ch in token):
            return True
        return "=" in token
