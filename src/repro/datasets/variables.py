"""Variable-value generators used by the synthetic log templates.

Each *variable kind* mimics one family of dynamic fields found in the LogHub
systems (numeric ids, IP addresses, block ids, paths, durations, ...).  The
generators are deliberately simple but cover the syntactic shapes that the
masking rules (:mod:`repro.core.masking`) and the clustering algorithm have
to cope with.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

__all__ = ["VARIABLE_KINDS", "render_variable", "variable_kinds"]

_BASE_WORDS = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel",
    "india", "juliet", "kilo", "lima", "mike", "november", "oscar", "papa",
    "quebec", "romeo", "sierra", "tango", "uniform", "victor", "whiskey",
    "amber", "basalt", "cedar", "dune", "ember", "fjord", "garnet", "harbor",
    "iris", "jasper", "krypton", "lumen", "maple", "nectar", "onyx", "prism",
    "quartz", "raven", "slate", "topaz", "umber", "vertex", "willow", "zenith",
]

#: Word-like variable values.  The pool is deliberately large so that
#: positions holding these values look like genuine variables (many distinct
#: tokens) rather than template-distinguishing constants.
_WORD_POOL = _BASE_WORDS + [f"{word}{suffix}" for word in _BASE_WORDS[:24] for suffix in ("x", "io")]

_USER_POOL = [
    "root", "admin", "hdfs", "spark", "guest", "operator", "deploy", "backup",
] + [f"svc{index:02d}" for index in range(40)]

_HOST_POOL = [f"{prefix}{index:02d}" for prefix in ("node", "worker", "cache", "edge", "db") for index in range(12)]

_PATH_POOL = [
    "/var/log/syslog", "/usr/local/bin/app", "/data/blocks/segment",
    "/tmp/upload/session", "/etc/hadoop/conf", "/home/user/job/output",
    "/opt/service/cache", "/srv/www/static/index",
]

_SERVICE_POOL = [
    "DataNode", "NameNode", "ResourceManager", "Executor", "TaskScheduler",
    "BlockManager", "SessionManager", "AuthService", "QueryPlanner", "Compactor",
    "LeaseMonitor", "ShardBalancer", "SnapshotWriter", "TokenIssuer", "WalFlusher",
    "GcCoordinator", "QuotaManager", "TraceCollector", "RetryDispatcher", "CacheWarmer",
]


def _pick(pool: List[str], rng: np.random.Generator) -> str:
    return pool[int(rng.integers(len(pool)))]


def _render_int(rng: np.random.Generator) -> str:
    return str(int(rng.integers(0, 1_000_000)))


def _render_small_int(rng: np.random.Generator) -> str:
    return str(int(rng.integers(0, 64)))


def _render_float(rng: np.random.Generator) -> str:
    return f"{rng.random() * 1000:.2f}"


def _render_hex(rng: np.random.Generator) -> str:
    return f"0x{int(rng.integers(0, 2**32)):08x}"


def _render_long_hex(rng: np.random.Generator) -> str:
    return "".join(f"{int(rng.integers(0, 16)):x}" for _ in range(24))


def _render_ip(rng: np.random.Generator) -> str:
    return ".".join(str(int(rng.integers(1, 255))) for _ in range(4))


def _render_ip_port(rng: np.random.Generator) -> str:
    return f"{_render_ip(rng)}:{int(rng.integers(1024, 65535))}"


def _render_uuid(rng: np.random.Generator) -> str:
    chunks = [8, 4, 4, 4, 12]
    return "-".join(
        "".join(f"{int(rng.integers(0, 16)):x}" for _ in range(width)) for width in chunks
    )


def _render_block_id(rng: np.random.Generator) -> str:
    return f"blk_{int(rng.integers(10**9, 10**10))}"


def _render_duration(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(1, 90_000))}ms"


def _render_size(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(1, 4096))}MB"


def _render_timestamp(rng: np.random.Generator) -> str:
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 29))
    hour = int(rng.integers(0, 24))
    minute = int(rng.integers(0, 60))
    second = int(rng.integers(0, 60))
    return f"2024-{month:02d}-{day:02d} {hour:02d}:{minute:02d}:{second:02d}"


def _render_word(rng: np.random.Generator) -> str:
    return _pick(_WORD_POOL, rng)


def _render_user(rng: np.random.Generator) -> str:
    return _pick(_USER_POOL, rng)


def _render_host(rng: np.random.Generator) -> str:
    return _pick(_HOST_POOL, rng)


def _render_path(rng: np.random.Generator) -> str:
    base = _pick(_PATH_POOL, rng)
    return f"{base}/{_pick(_BASE_WORDS, rng)}{int(rng.integers(0, 100)):02d}"


def _render_service(rng: np.random.Generator) -> str:
    return _pick(_SERVICE_POOL, rng)


#: Registry of variable kinds usable in template strings as ``{kind}``.
VARIABLE_KINDS: Dict[str, Callable[[np.random.Generator], str]] = {
    "int": _render_int,
    "small_int": _render_small_int,
    "float": _render_float,
    "hex": _render_hex,
    "long_hex": _render_long_hex,
    "ip": _render_ip,
    "ip_port": _render_ip_port,
    "uuid": _render_uuid,
    "block_id": _render_block_id,
    "duration": _render_duration,
    "size": _render_size,
    "timestamp": _render_timestamp,
    "word": _render_word,
    "user": _render_user,
    "host": _render_host,
    "path": _render_path,
    "service": _render_service,
}


def variable_kinds() -> List[str]:
    """Names of all available variable kinds."""
    return list(VARIABLE_KINDS)


def render_variable(kind: str, rng: np.random.Generator) -> str:
    """Render one concrete value for a variable kind."""
    try:
        renderer = VARIABLE_KINDS[kind]
    except KeyError:
        raise KeyError(f"unknown variable kind {kind!r}; known: {sorted(VARIABLE_KINDS)}") from None
    return renderer(rng)
