"""Table 1 — LogHub / LogHub-2.0 dataset statistics.

Regenerates the per-system statistics (#logs, raw size, #templates) for both
benchmark variants and prints them next to the paper's reported values.  The
synthetic LogHub-2.0 corpora are volume-scaled (see DESIGN.md), so the log
counts differ from the paper by a constant factor while the relative size
ordering and template counts match.
"""

from __future__ import annotations

from repro.datasets.catalog import SYSTEM_SPECS
from repro.datasets.registry import DATASET_NAMES, LOGHUB2_NAMES
from repro.evaluation.reporting import banner, format_table


def _collect(datasets):
    rows = []
    for name in DATASET_NAMES:
        spec = SYSTEM_SPECS[name]
        small = datasets.get(name, "loghub")
        row = {
            "dataset": name,
            "loghub_logs": small.n_logs,
            "loghub_size_kb": round(small.size_bytes / 1024, 1),
            "loghub_templates": small.n_templates,
            "paper_loghub_templates": spec.loghub_templates,
        }
        if name in LOGHUB2_NAMES:
            large = datasets.get(name, "loghub2")
            row.update(
                {
                    "loghub2_logs": large.n_logs,
                    "loghub2_size_mb": round(large.size_bytes / 1024 / 1024, 2),
                    "loghub2_templates": large.n_templates,
                    "paper_loghub2_templates": spec.loghub2_templates,
                    "paper_loghub2_logs": spec.paper_loghub2_logs,
                }
            )
        rows.append(row)
    return rows


def test_table1_dataset_statistics(benchmark, datasets, report):
    rows = benchmark.pedantic(_collect, args=(datasets,), rounds=1, iterations=1)
    text = banner("Table 1 — dataset statistics (synthetic LogHub / LogHub-2.0)") + "\n"
    text += format_table(rows)
    report("table1_dataset_stats", text)

    # Sanity: the reproduction preserves the paper's structure.
    assert len(rows) == 16
    for row in rows:
        assert row["loghub_templates"] == row["paper_loghub_templates"]
    big = {row["dataset"]: row.get("loghub2_logs", 0) for row in rows}
    assert big["Thunderbird"] >= big["Proxifier"]
