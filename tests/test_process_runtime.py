"""Process shard backend: lifecycle, selection, and the crash matrix.

Companion to the parametrized suites (``test_differential_backends``,
``test_supervisor``): everything here is specific to the *process*
transport — backend selection, the fork boundary (picklable config,
failpoint propagation into children), in-test ``SIGKILL`` of worker
processes, and driver death with a child-written WAL.

The durability contract differs from the thread backend in exactly one
place, and these tests pin it down: submit-return is *not* the process
backend's durability point (the WAL append happens inside the child);
the ``drain()`` barrier is.  Crash assertions therefore anchor on drain
barriers (``DRAIN`` markers in the crash-child ack log) rather than on
raw ack counts.
"""

import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import failpoints
from repro.core.config import ByteBrainConfig
from repro.service.recovery import RecoveredRuntime
from repro.service.runtime import BACKEND_ENV_VAR, ShardedRuntime, create_runtime
from repro.service.scheduler import SchedulerPolicy
from repro.service.service import LogParsingService
from repro.service.transport import ProcessShardedRuntime, _ChildSpec

TOPICS = ("checkout", "payments")
CHILD = Path(__file__).resolve().parent / "crash_child.py"
REPO_SRC = Path(__file__).resolve().parents[1] / "src"


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.clear_all()
    yield
    failpoints.clear_all()


def fast_restart_config(**overrides) -> ByteBrainConfig:
    defaults = dict(
        worker_restart_max_attempts=3,
        worker_restart_backoff=0.005,
        worker_restart_backoff_max=0.02,
    )
    defaults.update(overrides)
    return ByteBrainConfig(**defaults)


def build_service(tmp_path, config=None, scheduler_policy=None):
    service = LogParsingService(
        config=config or fast_restart_config(),
        scheduler_policy=scheduler_policy,
        store_root=tmp_path / "store",
    )
    for name in TOPICS:
        service.create_topic(name)
    return service


def raw_line(topic: str, i: int) -> str:
    return f"{topic} request {i} served for user {i % 13} with latency {i % 450}"


def stored_counts(service, topic):
    counts = {}
    for record in service.topic(topic).topic.records():
        counts[record.raw] = counts.get(record.raw, 0) + 1
    return counts


def worker_pids(runtime):
    return [shard["pid"] for shard in runtime.stats()["shards"]]


# --------------------------------------------------------------------- #
# selection and fork-boundary basics (fast lane)
# --------------------------------------------------------------------- #
class TestBackendSelection:
    def test_env_variable_selects_process_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        service = build_service(tmp_path)
        runtime = create_runtime(service, n_shards=1, micro_batch_size=8)
        try:
            assert isinstance(runtime, ProcessShardedRuntime)
            assert runtime.stats()["backend"] == "process"
        finally:
            runtime.shutdown()

    def test_explicit_backend_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        service = build_service(tmp_path)
        runtime = create_runtime(service, backend="thread", n_shards=1)
        try:
            assert isinstance(runtime, ShardedRuntime)
            assert runtime.stats()["backend"] == "thread"
        finally:
            runtime.shutdown()

    def test_config_knob_selects_backend(self, tmp_path):
        service = build_service(tmp_path, config=fast_restart_config(shard_backend="process"))
        runtime = service.sharded_runtime(n_shards=1, micro_batch_size=8)
        try:
            assert isinstance(runtime, ProcessShardedRuntime)
        finally:
            runtime.shutdown()

    def test_unknown_backend_rejected(self, tmp_path):
        service = build_service(tmp_path)
        with pytest.raises(ValueError, match="unknown shard backend"):
            create_runtime(service, backend="fiber")

    def test_config_is_picklable(self):
        # Children arm themselves from forked state; a config (or the
        # failpoint spec strings riding with it) that cannot pickle would
        # break any future spawn-based transport, so pin it now.
        config = fast_restart_config(wal_sync_mode="always", n_shards=4)
        clone = pickle.loads(pickle.dumps(config))
        assert vars(clone) == vars(config)

    def test_failpoint_specs_are_plain_strings(self):
        failpoints.configure("worker.batch", "raise", nth=3, times=2)
        failpoints.configure("wal.sync", "delay", seconds=0.5)
        specs = failpoints.active_specs()
        assert specs == pickle.loads(pickle.dumps(specs))
        assert all(isinstance(spec, str) for spec in specs)


class TestProcessLifecycle:
    def test_ingest_drain_and_stats(self, tmp_path):
        service = build_service(tmp_path)
        runtime = service.sharded_runtime(
            backend="process", n_shards=2, micro_batch_size=16, wal_dir=tmp_path / "wal"
        )
        with runtime:
            for i in range(120):
                for topic in TOPICS:
                    runtime.submit(topic, raw_line(topic, i), float(i))
            runtime.drain()
            stats = runtime.stats()
            assert stats["backend"] == "process"
            assert len(stats["shards"]) == 2
            # Real worker processes, not threads in disguise.
            for pid in worker_pids(runtime):
                assert pid is not None and pid != os.getpid()
            for shard in stats["shards"]:
                assert shard["queue_depth"] == 0
                assert shard["state"] == "running"
            # The parent mirror serves reads after the barrier.
            for topic in TOPICS:
                assert service.topic(topic).topic.high_watermark == 120
                assert service.topic_stats(topic)["n_records"] == 120.0

    def test_topic_created_behind_runtimes_back_is_rejected(self, tmp_path):
        # Creating a topic directly on the parent service does not teach
        # the shard workers about it — only runtime.create_topic does.
        service = build_service(tmp_path)
        runtime = service.sharded_runtime(backend="process", n_shards=1)
        with runtime:
            service.create_topic("latecomer")
            with pytest.raises(KeyError, match="not registered"):
                runtime.submit("latecomer", "too late", 0.0)

    def test_dynamic_topic_via_create_topic(self, tmp_path):
        service = build_service(tmp_path)
        runtime = service.sharded_runtime(backend="process", n_shards=2)
        with runtime:
            runtime.create_topic("latecomer")
            runtime.create_topic("latecomer")  # idempotent
            for i in range(40):
                runtime.submit("latecomer", raw_line("latecomer", i), float(i))
            runtime.drain()
            assert service.topic("latecomer").topic.high_watermark == 40
            assert service.topic_stats("latecomer")["n_records"] == 40.0

    def test_child_spec_carries_incarnation(self, tmp_path):
        # The stale-reply filter hinges on every spawn bumping the
        # incarnation; a regression here silently re-opens the
        # apply-a-dead-child's-sync race.
        assert "incarnation" in _ChildSpec.__dataclass_fields__
        service = build_service(tmp_path)
        runtime = service.sharded_runtime(backend="process", n_shards=1)
        with runtime:
            assert runtime._shards[0].incarnation == 1


# --------------------------------------------------------------------- #
# fault matrix (slow lane)
# --------------------------------------------------------------------- #
@pytest.mark.slow
class TestChildFailpoints:
    def test_worker_batch_failpoint_fires_inside_child(self, tmp_path):
        """Satellite regression: a ``worker.batch`` failpoint armed in the
        parent must fire *inside the forked worker* (propagated via
        ``active_specs``), kill that incarnation, and fold its counters
        back into the parent registry."""
        failpoints.configure("worker.batch", "raise", nth=3, times=1)
        service = build_service(tmp_path)
        runtime = service.sharded_runtime(
            backend="process", n_shards=1, micro_batch_size=8,
            max_batch_delay=0.002, wal_dir=tmp_path / "wal",
        )
        with runtime:
            for i in range(200):
                runtime.submit(TOPICS[0], raw_line(TOPICS[0], i), float(i))
            runtime.drain()
            counts = stored_counts(service, TOPICS[0])
            assert len(counts) == 200
            assert all(n == 1 for n in counts.values())
            assert runtime.stats()["restarts"] >= 1
            # The dead child's counters were absorbed: the bounded fault
            # is spent in the parent registry too.
            assert failpoints.state()["worker.batch"]["fired"] == 1

    def test_mid_fsync_crash_is_survived_exactly_once(self, tmp_path):
        failpoints.configure("wal.sync", "raise", nth=2, times=1)
        service = build_service(tmp_path)
        runtime = service.sharded_runtime(
            backend="process", n_shards=1, micro_batch_size=8,
            max_batch_delay=0.002, wal_dir=tmp_path / "wal",
        )
        with runtime:
            for i in range(300):
                runtime.submit(TOPICS[0], raw_line(TOPICS[0], i), float(i))
            runtime.drain()
            counts = stored_counts(service, TOPICS[0])
            assert len(counts) == 300
            assert all(n == 1 for n in counts.values())
            assert runtime.stats()["restarts"] >= 1


@pytest.mark.slow
class TestSigkillMatrix:
    @pytest.mark.parametrize("kill_after", [64, 256])
    def test_sigkill_mid_stream_is_exactly_once(self, tmp_path, kill_after):
        """SIGKILL a worker mid-stream (auto-rounds running, so the kill
        can land mid-round or mid-write); the restarted incarnation must
        resync and land every record exactly once."""
        service = build_service(
            tmp_path,
            scheduler_policy=SchedulerPolicy(
                volume_threshold=50, time_interval_seconds=10**9,
                initial_volume_threshold=50,
            ),
        )
        runtime = service.sharded_runtime(
            backend="process", n_shards=2, micro_batch_size=16,
            max_batch_delay=0.002, wal_dir=tmp_path / "wal",
        )
        with runtime:
            victims = worker_pids(runtime)
            killed = False
            for i in range(500):
                for topic in TOPICS:
                    runtime.submit(topic, raw_line(topic, i), float(i))
                if not killed and i == kill_after:
                    os.kill(victims[0], signal.SIGKILL)
                    killed = True
            runtime.drain()
            for topic in TOPICS:
                counts = stored_counts(service, topic)
                assert len(counts) == 500, f"records lost in {topic!r}"
                duplicates = {raw: n for raw, n in counts.items() if n > 1}
                assert not duplicates, duplicates
            assert runtime.stats()["restarts"] >= 1
            # Training still works against the restarted incarnation.
            info = runtime.train_topic(TOPICS[0], now=10_000.0)
            assert info is None or "error" not in info

    def test_sigkill_both_workers(self, tmp_path):
        service = build_service(tmp_path)
        runtime = service.sharded_runtime(
            backend="process", n_shards=2, micro_batch_size=16,
            max_batch_delay=0.002, wal_dir=tmp_path / "wal",
        )
        with runtime:
            for i in range(200):
                for topic in TOPICS:
                    runtime.submit(topic, raw_line(topic, i), float(i))
            for pid in worker_pids(runtime):
                os.kill(pid, signal.SIGKILL)
            for i in range(200, 400):
                for topic in TOPICS:
                    runtime.submit(topic, raw_line(topic, i), float(i))
            runtime.drain()
            for topic in TOPICS:
                counts = stored_counts(service, topic)
                assert len(counts) == 400
                assert all(n == 1 for n in counts.values())
            assert runtime.stats()["restarts"] >= 2

    def test_restart_budget_resets_after_healthy_run(self, tmp_path, monkeypatch):
        # _HEALTHY_RESET_SECONDS was imported *by value* into the
        # transport module; patch both homes or the test lies.
        monkeypatch.setattr("repro.service.runtime._HEALTHY_RESET_SECONDS", 0.0)
        monkeypatch.setattr("repro.service.transport._HEALTHY_RESET_SECONDS", 0.0)
        service = build_service(tmp_path)
        runtime = service.sharded_runtime(
            backend="process", n_shards=1, micro_batch_size=8,
            max_batch_delay=0.002, wal_dir=tmp_path / "wal",
        )
        with runtime:
            # 5 kills against a restart budget of 3: only survivable
            # because every healthy incarnation resets the budget.
            for round_index in range(5):
                base = round_index * 40
                for i in range(base, base + 40):
                    runtime.submit(TOPICS[0], raw_line(TOPICS[0], i), float(i))
                runtime.drain()
                os.kill(worker_pids(runtime)[0], signal.SIGKILL)
                deadline = time.monotonic() + 10.0
                while runtime.stats()["restarts"] < round_index + 1:
                    assert time.monotonic() < deadline, "supervisor missed the kill"
                    time.sleep(0.01)
            runtime.drain()
            counts = stored_counts(service, TOPICS[0])
            assert len(counts) == 200
            assert all(n == 1 for n in counts.values())
            assert runtime.stats()["restarts"] == 5
            assert runtime.stats()["degraded_shards"] == []

    def test_drained_records_survive_quarantine(self, tmp_path):
        """Process analog of the thread backend's quarantine-durability
        test, anchored on the drain barrier: records drained before the
        shard is quarantined must be recoverable from the child-written
        WAL."""
        service = build_service(tmp_path)
        runtime = service.sharded_runtime(
            backend="process", n_shards=1, micro_batch_size=8,
            max_batch_delay=0.002, wal_dir=tmp_path / "wal",
        )
        drained = [raw_line(TOPICS[0], i) for i in range(50)]
        for i, raw in enumerate(drained):
            runtime.submit(TOPICS[0], raw, float(i))
        runtime.drain()
        # Kill every incarnation until the budget (3) is spent.
        deadline = time.monotonic() + 30.0
        while runtime.stats()["shards"][0]["state"] != "quarantined":
            assert time.monotonic() < deadline, "shard never quarantined"
            pid = worker_pids(runtime)[0]
            if pid is not None:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            time.sleep(0.02)
        with pytest.raises(RuntimeError, match="closed"):
            runtime.submit(TOPICS[0], "rejected", 99.0)
        with pytest.raises(RuntimeError, match="shard worker died"):
            runtime.shutdown()
        with RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=fast_restart_config()
        ) as recovered:
            counts = {}
            for record in recovered.service.topic(TOPICS[0]).topic.records():
                counts[record.raw] = counts.get(record.raw, 0) + 1
            for raw in drained:
                assert counts.get(raw) == 1, f"drained record lost or duplicated: {raw}"
            assert all(n == 1 for n in counts.values())


# --------------------------------------------------------------------- #
# driver death: the WAL the children wrote must recover (slow lane)
# --------------------------------------------------------------------- #
def run_crash_child(tmp_path, **extra_args):
    store = tmp_path / "store"
    wal_dir = tmp_path / "wal"
    ack_file = tmp_path / "acks.log"
    argv = [
        sys.executable, str(CHILD),
        "--store", str(store),
        "--wal-dir", str(wal_dir),
        "--ack-file", str(ack_file),
        "--backend", "process",
    ]
    for flag, value in extra_args.items():
        argv += [f"--{flag.replace('_', '-')}", str(value)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(argv, capture_output=True, text=True, env=env, timeout=180)
    return store, wal_dir, ack_file, result


def read_ack_log(ack_file):
    """(per-topic acked indices, index count covered by the last DRAIN)."""
    acks = {topic: set() for topic in TOPICS}
    drain_barrier = 0
    payload = ack_file.read_bytes().decode("utf-8", errors="replace")
    for line in payload.split("\n")[:-1]:
        parts = line.split("\t")
        if len(parts) != 2 or not parts[1].isdigit():
            continue
        if parts[0] == "DRAIN":
            drain_barrier = max(drain_barrier, int(parts[1]))
        elif parts[0] in acks:
            acks[parts[0]].add(int(parts[1]))
    return acks, drain_barrier


@pytest.mark.slow
class TestDriverDeath:
    def test_child_written_wal_recovers_past_drain_barrier(self, tmp_path):
        """SIGKILL the *driver* (parent) after a drain barrier: the shard
        WALs live in worker processes, so recovery reads segments the
        parent never touched.  Everything drained must restore exactly
        once; nothing may duplicate."""
        store, wal_dir, ack_file, result = run_crash_child(
            tmp_path, kill_at="after_acks", kill_after=500,
            drain_at=300, records=400,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        acks, drain_barrier = read_ack_log(ack_file)
        assert drain_barrier == 300
        # Orphaned workers see cmd-pipe EOF and exit on their own
        # (closing their WAL segments); give them a moment.
        time.sleep(1.0)
        with RecoveredRuntime.open(
            store, wal_dir, config=ByteBrainConfig(wal_segment_bytes=256 * 1024)
        ) as recovered:
            drained = {
                topic: {i for i in acks[topic] if len(TOPICS) * i < drain_barrier}
                for topic in TOPICS
            }
            for topic in TOPICS:
                recovery = next(t for t in recovered.report.topics if t.topic == topic)
                captured = recovery.captured_seq
                counts = {}
                for record in recovered.service.topic(topic).topic.records():
                    counts[record.raw] = counts.get(record.raw, 0) + 1
                duplicates = {raw: n for raw, n in counts.items() if n > 1}
                assert not duplicates, duplicates
                for i in sorted(drained[topic]):
                    raw = raw_line(topic, i)
                    if i < captured:
                        # Captured by a child-persisted snapshot: its
                        # template knowledge travels in the loaded model;
                        # replaying it too would double-count.
                        assert raw not in counts, (
                            f"captured record {topic}/{i} also replayed"
                        )
                    else:
                        assert counts.get(raw) == 1, (
                            f"drained record lost: {topic}/{i}"
                        )

    def test_recovery_can_reopen_with_process_backend(self, tmp_path):
        store, wal_dir, ack_file, result = run_crash_child(
            tmp_path, kill_at="after_acks", kill_after=400,
            drain_at=200, records=400,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        time.sleep(1.0)
        with RecoveredRuntime.open(
            store, wal_dir,
            config=ByteBrainConfig(wal_segment_bytes=256 * 1024),
            backend="process", n_shards=2, micro_batch_size=32,
            max_batch_delay=0.002,
        ) as recovered:
            runtime = recovered.runtime
            assert runtime.stats()["backend"] == "process"
            before = {
                topic: recovered.service.topic(topic).topic.high_watermark
                for topic in TOPICS
            }
            for i in range(1000, 1100):
                for topic in TOPICS:
                    runtime.submit(topic, raw_line(topic, i), float(i))
            runtime.drain()
            for topic in TOPICS:
                assert (
                    recovered.service.topic(topic).topic.high_watermark
                    == before[topic] + 100
                )
