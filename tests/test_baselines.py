"""Tests covering every baseline parser through the common interface."""

import pytest

from repro.baselines import BASELINE_REGISTRY, make_baseline
from repro.baselines.base import BaselineParser
from repro.evaluation.metrics import grouping_accuracy


#: A tiny corpus with clearly separable structures.
SIMPLE_LINES = (
    ["Accepted password for root from 10.0.0.%d port %d ssh2" % (i, 3000 + i) for i in range(30)]
    + ["Failed password for guest from 10.0.0.%d port %d ssh2" % (i, 4000 + i) for i in range(30)]
    + ["Connection closed by 10.0.0.%d" % i for i in range(30)]
)
SIMPLE_TRUTH = [0] * 30 + [1] * 30 + [2] * 30


class TestRegistry:
    def test_all_paper_baselines_registered(self):
        expected = {
            "AEL", "Drain", "IPLoM", "LenMa", "LFA", "LogCluster", "LogMine", "Logram",
            "LogSig", "MoLFI", "SHISO", "SLCT", "Spell", "UniParser", "LogPPT", "LILAC",
        }
        assert expected == set(BASELINE_REGISTRY)

    def test_make_baseline_unknown_name(self):
        with pytest.raises(KeyError):
            make_baseline("GPT5Parser")

    def test_names_match_registry_keys(self):
        for name in BASELINE_REGISTRY:
            assert make_baseline(name).name == name


@pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
class TestEveryBaseline:
    def test_assigns_a_group_to_every_line(self, name):
        parser = make_baseline(name)
        assignments = parser.parse(SIMPLE_LINES)
        assert len(assignments) == len(SIMPLE_LINES)

    def test_is_deterministic(self, name):
        first = make_baseline(name).parse(SIMPLE_LINES)
        second = make_baseline(name).parse(SIMPLE_LINES)
        assert first == second

    def test_identical_lines_share_a_group(self, name):
        parser = make_baseline(name)
        lines = ["disk full on /dev/sda1"] * 5 + ["disk full on /dev/sdb2"] * 5
        assignments = parser.parse(lines)
        assert assignments[0] == assignments[1] == assignments[4]

    def test_reasonable_accuracy_on_separable_corpus(self, name):
        parser = make_baseline(name)
        assignments = parser.parse(SIMPLE_LINES)
        accuracy = grouping_accuracy(assignments, SIMPLE_TRUTH)
        # Every baseline should at least separate the three obvious structures
        # most of the time; weak baselines (LogSig, MoLFI, ...) get a low bar.
        assert accuracy >= 0.3, f"{name} accuracy {accuracy}"

    def test_handles_empty_and_whitespace_lines(self, name):
        parser = make_baseline(name)
        assignments = parser.parse(["", "   ", "a normal line 42"])
        assert len(assignments) == 3


class TestPreprocessing:
    def test_base_preprocess_masks_numbers_and_ips(self):
        class Dummy(BaselineParser):
            name = "dummy"

            def parse(self, lines):
                return [0] * len(lines)

        tokens = Dummy().preprocess("retry 17 from 10.0.0.1:8080")
        assert tokens[0] == "retry"
        assert tokens[1] == "<*>"
        assert tokens[3] == "<*>"


class TestStrongBaselinesAccuracy:
    @pytest.mark.parametrize("name", ["Drain", "AEL", "Spell", "IPLoM"])
    def test_classic_parsers_do_well_on_hdfs(self, name, hdfs_dataset):
        parser = make_baseline(name)
        assignments = parser.parse(hdfs_dataset.lines)
        assert grouping_accuracy(assignments, hdfs_dataset.ground_truth) >= 0.6

    def test_lilac_proxy_is_accurate_but_slow_per_miss(self, hdfs_dataset):
        from repro.baselines.semantic import LILACProxy

        fast = LILACProxy(llm_call_cost_ms=0.0)
        assignments = fast.parse(hdfs_dataset.lines[:500])
        assert grouping_accuracy(assignments, hdfs_dataset.ground_truth[:500]) >= 0.7

    def test_semantic_proxy_cost_can_be_disabled(self):
        from repro.baselines.semantic import UniParserProxy

        parser = UniParserProxy(per_token_cost_us=0.0)
        assert len(parser.parse(SIMPLE_LINES)) == len(SIMPLE_LINES)
