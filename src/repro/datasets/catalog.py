"""Per-system template catalogues mirroring the 16 LogHub systems (Table 1).

Each :class:`SystemSpec` describes one LogHub system: a set of *curated*
log-statement templates written to resemble that system's real messages, a
target template count for the LogHub (2k-log) and LogHub-2.0 (large) variants
— procedurally generated filler templates top the catalogue up to the target
— plus the log volumes reported in Table 1 of the paper (used for scaling
and for the Table 1 reproduction).

Template strings use ``{kind}`` placeholders that are filled by
:mod:`repro.datasets.variables` at generation time; everything outside the
placeholders is constant text, which is exactly the ground-truth template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["SystemSpec", "SYSTEM_SPECS", "ANDROID_WAKELOCK_TEMPLATES", "system_names"]


@dataclass
class SystemSpec:
    """Catalogue entry for one LogHub system."""

    name: str
    #: Hand-written templates characteristic of the system.
    curated_templates: List[str]
    #: Template count of the 2k-log LogHub variant (paper Table 1).
    loghub_templates: int
    #: Template count of the LogHub-2.0 variant (paper Table 1; 0 if absent).
    loghub2_templates: int
    #: Log count of the LogHub-2.0 variant in the paper (for proportional scaling).
    paper_loghub2_logs: int
    #: Zipf skew of template frequencies (larger -> more duplication).
    zipf_alpha: float = 1.3
    #: Whether the system appears in LogHub-2.0 (Android/Windows do not).
    in_loghub2: bool = True


#: Android wakelock templates used by Table 4 (threshold-adaptivity demo).
ANDROID_WAKELOCK_TEMPLATES: List[str] = [
    'release lock={int} flg=0x0 tag="View Lock" name=systemui ws=null uid={int} pid={int}',
    'release lock={int} flg=0x0 tag="*launch*" name=android ws=WS{{{int}}} uid={int} pid={int}',
    'release lock={int} flg=0x0 tag="WindowManager" name=android ws=WS{{{int}}} uid={int} pid={int}',
    'release lock={int} flg=0x0 tag="AudioMix" name=audioserver ws=null uid={int} pid={int}',
    'acquire lock={int} flags=0x1 tag="View Lock" name=systemui ws=null uid={int} pid={int}',
    'acquire lock={int} flags=0x1 tag="RILJ_ACK_WL" name=phone ws=null uid={int} pid={int}',
    'acquire lock={int} flags=0x1 tag="*job*" name=android ws=WS{{{int}}} uid={int} pid={int}',
    'acquire lock={int} flags=0x1 tag="AudioMix" name=audioserver ws=null uid={int} pid={int}',
]


def _spec(
    name: str,
    curated: List[str],
    loghub_templates: int,
    loghub2_templates: int,
    paper_loghub2_logs: int,
    zipf_alpha: float = 1.3,
    in_loghub2: bool = True,
) -> SystemSpec:
    return SystemSpec(
        name=name,
        curated_templates=curated,
        loghub_templates=loghub_templates,
        loghub2_templates=loghub2_templates,
        paper_loghub2_logs=paper_loghub2_logs,
        zipf_alpha=zipf_alpha,
        in_loghub2=in_loghub2,
    )


SYSTEM_SPECS: Dict[str, SystemSpec] = {
    "HDFS": _spec(
        "HDFS",
        [
            "Receiving block {block_id} src: /{ip_port} dest: /{ip_port}",
            "Received block {block_id} of size {int} from /{ip}",
            "PacketResponder {small_int} for block {block_id} terminating",
            "BLOCK* NameSystem.addStoredBlock: blockMap updated: {ip_port} is added to {block_id} size {int}",
            "BLOCK* NameSystem.allocateBlock: {path} {block_id}",
            "BLOCK* ask {ip_port} to replicate {block_id} to datanode(s) {ip_port}",
            "Verification succeeded for {block_id}",
            "Deleting block {block_id} file {path}",
            "writeBlock {block_id} received exception java.io.IOException: Connection reset by peer",
            "Exception in receiveBlock for block {block_id} java.io.IOException: Broken pipe",
            "Starting thread to transfer block {block_id} to {ip_port}",
            "Unexpected error trying to delete block {block_id} BlockInfo not found in volumeMap",
            "Changing block file offset of block {block_id} from {int} to {int} meta file offset to {int}",
            "Served block {block_id} to /{ip}",
        ],
        loghub_templates=14,
        loghub2_templates=46,
        paper_loghub2_logs=11_167_740,
        zipf_alpha=1.5,
    ),
    "BGL": _spec(
        "BGL",
        [
            "instruction cache parity error corrected",
            "data TLB error interrupt",
            "generating core.{int}",
            "program interrupt: fp unavailable interrupt.............{hex}",
            "ciod: Error reading message prefix after LOGIN_MESSAGE on CioStream socket to {ip_port}",
            "ciod: failed to read message prefix on control stream CioStream socket to {ip_port}",
            "{int} double-hummer alignment exceptions",
            "CE sym {small_int} at {hex} mask {hex}",
            "total of {int} ddr error(s) detected and corrected over {int} seconds",
            "machine check interrupt (bit={small_int}): L2 dcache unit data parity error",
            "ddr: excessive soft failures, consider replacing the ddr memory card",
            "rts: kernel terminated for reason {int} rts: bad message header: invalid cpu {small_int}",
            "NodeCard is not fully functional: {word}",
            "idoproxydb hit ASSERT condition: ASSERT expression={word} source file={path} line={int}",
            "mmcs_db_server: /bgl/BlueLight/ppcfloor/bglsys/bin/mmcs_db_server: lost connection to DB2 server",
        ],
        loghub_templates=120,
        loghub2_templates=320,
        paper_loghub2_logs=4_631_261,
        zipf_alpha=1.4,
    ),
    "Thunderbird": _spec(
        "Thunderbird",
        [
            "session opened for user {user} by (uid={small_int})",
            "session closed for user {user}",
            "connection from {ip} () at {timestamp}",
            "Failed password for {user} from {ip} port {int} ssh2",
            "Accepted publickey for {user} from {ip} port {int} ssh2",
            "check pass; user unknown",
            "authentication failure; logname= uid={small_int} euid={small_int} tty=ssh ruser= rhost={ip}",
            "pam_unix(sshd:auth): authentication failure; logname= uid={small_int} euid={small_int} tty=ssh ruser= rhost={ip} user={user}",
            "kernel: ACPI: Processor [CPU{small_int}] (supports {small_int} throttling states)",
            "kernel: usb {small_int}-{small_int}: new high speed USB device using ehci_hcd and address {small_int}",
            "crond(pam_unix)[{int}]: session opened for user {user} by (uid={small_int})",
            "in.tftpd[{int}]: RRQ from {ip} filename {path}",
            "sendmail[{int}]: {long_hex}: from=<{user}@{host}.cluster>, size={int}, class={small_int}, nrcpts={small_int}",
            "ntpd[{int}]: synchronized to {ip}, stratum {small_int}",
            "snmpd[{int}]: Received TERM or STOP signal...  shutting down...",
            "dhcpd: DHCPDISCOVER from {host} via eth{small_int}",
            "dhcpd: DHCPACK on {ip} to {host} via eth{small_int}",
        ],
        loghub_templates=149,
        loghub2_templates=1241,
        paper_loghub2_logs=16_601_745,
        zipf_alpha=1.35,
    ),
    "Spark": _spec(
        "Spark",
        [
            "Starting task {float} in stage {float} (TID {int}, {host}, executor {small_int}, partition {int}, PROCESS_LOCAL, {int} bytes)",
            "Finished task {float} in stage {float} (TID {int}) in {int} ms on {host} (executor {small_int}) ({int}/{int})",
            "Running task {float} in stage {float} (TID {int})",
            "Block {word}_{int}_{int} stored as values in memory (estimated size {size}, free {size})",
            "Found block {word}_{int}_{int} locally",
            "Removed broadcast_{int}_piece{small_int} on {ip_port} in memory (size: {size}, free: {size})",
            "Asked to send map output locations for shuffle {small_int} to {ip_port}",
            "Got assigned task {int}",
            "Added broadcast_{int}_piece{small_int} in memory on {ip_port} (size: {size}, free: {size})",
            "Registering block manager {ip_port} with {size} RAM, BlockManagerId({small_int}, {host}, {int}, None)",
            "Executor updated: app-{int}-{int}/{small_int} is now RUNNING",
            "Submitting {int} missing tasks from ResultStage {small_int} (MapPartitionsRDD[{int}] at map at {path})",
            "Job {small_int} finished: collect at {path}:{int}, took {float} s",
            "Lost task {float} in stage {float} (TID {int}, {host}, executor {small_int}): ExecutorLostFailure (executor {small_int} exited caused by one of the running tasks) Reason: Container killed by YARN for exceeding memory limits",
        ],
        loghub_templates=36,
        loghub2_templates=236,
        paper_loghub2_logs=16_075_117,
        zipf_alpha=1.45,
    ),
    "Apache": _spec(
        "Apache",
        [
            "jk2_init() Found child {int} in scoreboard slot {small_int}",
            "workerEnv.init() ok {path}",
            "mod_jk child workerEnv in error state {small_int}",
            "[client {ip}] Directory index forbidden by rule: {path}",
            "jk2_init() Can't find child {int} in scoreboard",
            "mod_jk child init {small_int} {small_int}",
        ],
        loghub_templates=6,
        loghub2_templates=29,
        paper_loghub2_logs=51_978,
        zipf_alpha=1.6,
    ),
    "Linux": _spec(
        "Linux",
        [
            "session opened for user {user} by (uid={small_int})",
            "session closed for user {user}",
            "authentication failure; logname= uid={small_int} euid={small_int} tty=NODEVssh ruser= rhost={host}",
            "connection from {ip} ({host}) at {timestamp}",
            "Received disconnect from {ip}: {small_int}: Bye Bye",
            "check pass; user unknown",
            "CUPS: cupsd shutdown succeeded",
            "klogd startup succeeded",
            "Kernel command line: ro root=/dev/VolGroup00/LogVol00 rhgb quiet",
            "audit(:{int}): major={small_int} name_count={small_int}: freeing multiple contexts ({small_int})",
            "Memory: {int}k/{int}k available ({int}k kernel code, {int}k reserved, {int}k data, {int}k init, {int}k highmem)",
            "ACPI: PCI interrupt {hex}[A] -> GSI {small_int} (level, low) -> IRQ {small_int}",
            "pci_hotplug: PCI Hot Plug PCI Core version: {float}",
            "warning: process `{word}' used the removed sysctl system call",
            "FAILED LOGIN {small_int} FROM ({host}) FOR {user}, Authentication failure",
        ],
        loghub_templates=118,
        loghub2_templates=338,
        paper_loghub2_logs=23_921,
        zipf_alpha=1.25,
    ),
    "Mac": _spec(
        "Mac",
        [
            "Wifi: [{timestamp}] lqm-wifi: set frequent RSSI report to on",
            "kernel[0]: ARPT: {float}: wl0: setup_keepalive: interval {int}, retry_interval {int}, retry_count {small_int}",
            "kernel[0]: AppleCamIn::systemWakeCall - messageType = {hex}",
            "com.apple.CDScheduler: Thermal pressure state: {small_int} Memory pressure state: {small_int}",
            "WindowServer: send_datagram_available_ping: pid {int} failed to act on a ping it dequeued before timing out",
            "sharingd[{int}]: {timestamp} Scanning started",
            "sandboxd[{int}] ([{int}]): {word}({int}) deny network-outbound /private/var/run/mDNSResponder",
            "corecaptured[{int}]: CCFile::captureLogRun Skipping current file Dir file [{timestamp}] Current File [{timestamp}]",
            "QQ[{int}]: button report: {small_int}",
            "Bluetooth: hci_le_meta_event: subevent {hex} not handled",
            "mDNSResponder[{int}]: mDNS_DeregisterInterface: Frequent transitions for interface en{small_int} ({ip})",
            "loginwindow[{int}]: CoreAnimation: timed out fence {hex}",
            "hidd[{int}]: MultitouchHID: device bootloaded",
            "GoogleSoftwareUpdateAgent[{int}]: {timestamp} Agent running as user {user}",
        ],
        loghub_templates=341,
        loghub2_templates=626,
        paper_loghub2_logs=100_314,
        zipf_alpha=1.15,
    ),
    "Hadoop": _spec(
        "Hadoop",
        [
            "Address change detected. Old: {host}/{ip_port} New: {host}/{ip_port}",
            "TaskAttempt: [attempt_{int}_{int}_m_{int}_{small_int}] using containerId: [container_{int}_{int}_{int}_{int}] on NM: [{host}:{int}]",
            "attempt_{int}_{int}_m_{int}_{small_int} TaskAttempt Transitioned from RUNNING to SUCCESS_CONTAINER_CLEANUP",
            "Progress of TaskAttempt attempt_{int}_{int}_m_{int}_{small_int} is : {float}",
            "Task succeeded with attempt attempt_{int}_{int}_m_{int}_{small_int}",
            "Num completed Tasks: {int}",
            "Reduce slow start threshold not met. completedMapsForReduceSlowstart {int}",
            "Event Writer setup for JobId: job_{int}_{int}, File: {path}",
            "Error communicating with RM: {host} java.net.ConnectException: Connection refused",
            "Container container_{int}_{int}_{int}_{int} transitioned from RUNNING to COMPLETE",
            "Assigned container container_{int}_{int}_{int}_{int} of capacity <memory:{int}, vCores:{small_int}> on host {host}:{int}",
            "Releasing unassigned and invalid container Container: [ContainerId: container_{int}_{int}_{int}_{int}, NodeId: {host}:{int}]",
        ],
        loghub_templates=114,
        loghub2_templates=236,
        paper_loghub2_logs=179_993,
        zipf_alpha=1.3,
    ),
    "HealthApp": _spec(
        "HealthApp",
        [
            "Step_LSC|onStandStepChanged {int}",
            "Step_LSC|onExtend:{int} {int} {int} {int}",
            "Step_SPUtils|setTodayTotalDetailSteps={int}##{int}##{int}##{int}##{int}##{int}",
            "Step_StandReportReceiver|onReceive action:android.intent.action.SCREEN_ON",
            "Step_ExtSDM|calculateCaloriesWithCache totalCalories={int}",
            "Step_ExtSDM|calculateAltitudeWithCache totalAltitude={int}",
            "Step_StandStepCounter|flush sensor data",
            "Step_SPUtils|getTodayTotalDetailSteps = {int}##{int}##{int}##{int}##{int}##{int}",
            "HiH_HiHealthDataInsertStore|insertHiHealthData() enter,type:{int}",
            "HiSyncUtil|isPhoneSupportHiSync:true",
            "ui_PluginHealth|onReceiveMessage, msg:{int}",
        ],
        loghub_templates=75,
        loghub2_templates=156,
        paper_loghub2_logs=212_394,
        zipf_alpha=1.35,
    ),
    "OpenStack": _spec(
        "OpenStack",
        [
            'nova.osapi_compute.wsgi.server [{uuid} {user} {user}] {ip} "GET /v2/{long_hex}/servers/detail HTTP/1.1" status: {int} len: {int} time: {float}',
            'nova.osapi_compute.wsgi.server [{uuid} {user} {user}] {ip} "POST /v2/{long_hex}/os-server-external-events HTTP/1.1" status: {int} len: {int} time: {float}',
            "nova.compute.manager [{uuid} {user} {user}] [instance: {uuid}] VM Started (Lifecycle Event)",
            "nova.compute.manager [{uuid} {user} {user}] [instance: {uuid}] VM Paused (Lifecycle Event)",
            "nova.compute.manager [{uuid} {user} {user}] [instance: {uuid}] During sync_power_state the instance has a pending task (spawning). Skip.",
            "nova.compute.claims [{uuid} {user} {user}] [instance: {uuid}] Total memory: {int} MB, used: {float} MB",
            "nova.virt.libvirt.imagecache [{uuid}] image {uuid} at ({path}): checking",
            "nova.compute.resource_tracker [{uuid}] Final resource view: name={host} phys_ram={int}MB used_ram={int}MB phys_disk={int}GB used_disk={int}GB total_vcpus={small_int} used_vcpus={small_int} pci_stats=[]",
            "nova.scheduler.client.report [{uuid}] Deleted allocation for instance {uuid}",
            "nova.metadata.wsgi.server [{uuid}] {ip} \"GET /openstack/2013-10-17 HTTP/1.1\" status: {int} len: {int} time: {float}",
        ],
        loghub_templates=43,
        loghub2_templates=48,
        paper_loghub2_logs=207_632,
        zipf_alpha=1.4,
    ),
    "OpenSSH": _spec(
        "OpenSSH",
        [
            "Accepted password for {user} from {ip} port {int} ssh2",
            "Failed password for {user} from {ip} port {int} ssh2",
            "Failed password for invalid user {word} from {ip} port {int} ssh2",
            "Invalid user {word} from {ip}",
            "input_userauth_request: invalid user {word} [preauth]",
            "Connection closed by {ip} [preauth]",
            "Received disconnect from {ip}: {small_int}: Bye Bye [preauth]",
            "pam_unix(sshd:auth): authentication failure; logname= uid={small_int} euid={small_int} tty=ssh ruser= rhost={ip} user={user}",
            "pam_unix(sshd:session): session opened for user {user} by (uid={small_int})",
            "pam_unix(sshd:session): session closed for user {user}",
            "error: Received disconnect from {ip}: {small_int}: com.jcraft.jsch.JSchException: Auth fail [preauth]",
            "reverse mapping checking getaddrinfo for {host} [{ip}] failed - POSSIBLE BREAK-IN ATTEMPT!",
            "message repeated {small_int} times: [ Failed password for {user} from {ip} port {int} ssh2]",
        ],
        loghub_templates=27,
        loghub2_templates=38,
        paper_loghub2_logs=638_947,
        zipf_alpha=1.5,
    ),
    "Proxifier": _spec(
        "Proxifier",
        [
            "{word}.exe - proxy.cse.cuhk.edu.hk:{int} open through proxy proxy.cse.cuhk.edu.hk:{int} HTTPS",
            "{word}.exe - proxy.cse.cuhk.edu.hk:{int} close, {int} bytes sent, {int} bytes received, lifetime {duration}",
            "{word}.exe *{int} - {host}.com:{int} open through proxy socks.cse.cuhk.edu.hk:{int} SOCKS5",
            "{word}.exe *{int} - {host}.com:{int} close, {int} bytes ({size}) sent, {int} bytes ({size}) received, lifetime {duration}",
            "{word}.exe - {host}.com:{int} error : Could not connect through proxy proxy.cse.cuhk.edu.hk:{int} - Proxy server cannot establish a connection with the target, status code {int}",
            "open through proxy proxy.cse.cuhk.edu.hk:{int} HTTPS",
        ],
        loghub_templates=8,
        loghub2_templates=11,
        paper_loghub2_logs=21_320,
        zipf_alpha=1.6,
    ),
    "HPC": _spec(
        "HPC",
        [
            "inconsistent nodesets node-{int} 0x1fffffffe <ok> node-D{small_int} {hex} <ok>",
            "PSU status ( on on )",
            "PSU status ( off on )",
            "Temperature ({word}) exceeds warning threshold",
            "ambient={small_int}",
            "Fan speeds ( {int} {int} {int} {int} {int} {int} )",
            "Link error on broadcast tree Interconnect-0T00:{small_int}:{small_int}",
            "ServerFileSystem domain storage{small_int} has the no new failures state",
            "node node-{int} has detected an available network connection on network {ip} via interface alt0",
            "Node node-{int} detected network connection fault on network {ip}",
            "boot (command {int}) Error: machine check exception",
            "critical temperature reached shutting down node-{int}",
        ],
        loghub_templates=46,
        loghub2_templates=74,
        paper_loghub2_logs=429_988,
        zipf_alpha=1.4,
    ),
    "Zookeeper": _spec(
        "Zookeeper",
        [
            "Received connection request /{ip_port}",
            "Accepted socket connection from /{ip_port}",
            "Closed socket connection for client /{ip_port} which had sessionid {hex}",
            "Closed socket connection for client /{ip_port} (no session established for client)",
            "Client attempting to establish new session at /{ip_port}",
            "Established session {hex} with negotiated timeout {int} for client /{ip_port}",
            "Expiring session {hex}, timeout of {int}ms exceeded",
            "Processed session termination for sessionid: {hex}",
            "caught end of stream exception EndOfStreamException: Unable to read additional data from client sessionid {hex}, likely client has closed socket",
            "Notification: {small_int} (n.leader), {hex} (n.zxid), {small_int} (n.round), LOOKING (n.state), {small_int} (n.sid), {hex} (n.peerEPoch), FOLLOWING (my state)",
            "Cannot open channel to {small_int} at election address {host}/{ip_port} java.net.ConnectException: Connection refused",
            "Interrupted while waiting for message on queue java.lang.InterruptedException",
            "Snapshotting: {hex} to {path}",
        ],
        loghub_templates=50,
        loghub2_templates=89,
        paper_loghub2_logs=74_273,
        zipf_alpha=1.45,
    ),
    "Android": _spec(
        "Android",
        [
            "PowerManagerService: acquire lock={int}, flags=0x1, tag=\"RILJ_ACK_WL\", name=phone, ws=null, uid={int}, pid={int}",
            "PowerManagerService: release lock={int}, flg=0x0, tag=\"View Lock\", name=systemui, ws=null, uid={int}, pid={int}",
            "ActivityManager: Displayed {word}.{word}/.MainActivity: +{int}ms",
            "ActivityManager: Start proc {int}:{word}.{word}/u0a{int} for service {word}.{word}/.PushService",
            "WindowManager: Relayout Window{{{long_hex} u0 StatusBar}}: viewVisibility={small_int} req={int}x{int}",
            "InputReader: Reconfiguring input devices.  changes={hex}",
            "libprocessgroup: Successfully killed process cgroup uid {int} pid {int} in {int}ms",
            "chatty: uid={int}({word}) expire {small_int} lines",
            "DisplayPowerController: Blocking screen off",
            "AudioFlinger: BUFFER TIMEOUT: remove(4097) from active list on thread {hex}",
            "GCMService: connection established to {ip_port}",
            "dex2oat: dex2oat took {duration} (threads: {small_int}) arena alloc={size} java alloc={size} native alloc={size}",
        ],
        loghub_templates=166,
        loghub2_templates=0,
        paper_loghub2_logs=0,
        zipf_alpha=1.2,
        in_loghub2=False,
    ),
    "Windows": _spec(
        "Windows",
        [
            "CBS    Loaded Servicing Stack v{float} with Core: {path}",
            "CBS    Starting TrustedInstaller initialization.",
            "CBS    Ending TrustedInstaller initialization.",
            "CBS    SQM: Initializing online with Windows opt-in: False",
            "CBS    SQM: Cleaning up report files older than {small_int} days.",
            "CSI    {hex} [SR] Verify complete",
            "CSI    {hex} [SR] Verifying {int} components",
            "CSI    {hex} [SR] Beginning Verify and Repair transaction",
            "CBS    Session: {int}_{int} initialized by client WindowsUpdateAgent.",
            "CBS    Appl: detect Parent, Package: {word}-Package~{long_hex}~amd64~~{float}, Parent: Microsoft-Windows-Foundation-Package~{long_hex}~amd64~~{float}, Disposition = Detect, VersionComp: EQ, BuildComp: GE",
            "CBS    Failed to internally open package. [HRESULT = {hex} - CBS_E_INVALID_PACKAGE]",
        ],
        loghub_templates=50,
        loghub2_templates=0,
        paper_loghub2_logs=0,
        zipf_alpha=1.5,
        in_loghub2=False,
    ),
}


def system_names(loghub2_only: bool = False) -> List[str]:
    """Names of the catalogued systems (optionally only those in LogHub-2.0)."""
    if loghub2_only:
        return [name for name, spec in SYSTEM_SPECS.items() if spec.in_loghub2]
    return list(SYSTEM_SPECS)
