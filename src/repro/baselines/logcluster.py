"""LogCluster: frequent-word based log clustering.

Re-implementation of Vaarandi & Pihelgas / Lin et al.-style frequent-word
clustering as used in the LogPai benchmark: words whose support exceeds a
relative threshold are "frequent"; every log is keyed by the ordered
sequence of its frequent words, and logs sharing a key form a cluster.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from repro.baselines.base import BaselineParser

__all__ = ["LogClusterParser"]


class LogClusterParser(BaselineParser):
    """Frequent-word-sequence clustering (LogCluster)."""

    name = "LogCluster"

    def __init__(self, support: float = 0.01) -> None:
        if not 0.0 < support < 1.0:
            raise ValueError("support must be in (0, 1)")
        self.support = support

    def parse(self, lines: Sequence[str]) -> List[int]:
        token_lists = self.preprocess_many(lines)
        token_lists = [tokens if tokens else ["<empty>"] for tokens in token_lists]
        word_support: Counter = Counter()
        for tokens in token_lists:
            word_support.update(set(tokens))
        minimum = max(2, int(self.support * len(token_lists)))
        frequent = {word for word, count in word_support.items() if count >= minimum}

        keys: List[Tuple] = []
        for tokens in token_lists:
            # The cluster key is the ordered sequence of frequent words only;
            # unlike length-partitioned parsers, LogCluster merges messages
            # of different lengths when their frequent words coincide (the
            # weakness the paper points out in §2).
            frequent_sequence = tuple(token for token in tokens if token in frequent)
            keys.append(frequent_sequence)
        return self.group_by(keys)
