"""Integration tests for the LogParsingService (topics, training, queries, analytics)."""

import pytest

from repro.core.config import ByteBrainConfig
from repro.service.analytics import FailureScenario
from repro.service.scheduler import SchedulerPolicy
from repro.service.service import LogParsingService


def make_service(volume_threshold=500, initial=50):
    return LogParsingService(
        config=ByteBrainConfig(),
        scheduler_policy=SchedulerPolicy(
            volume_threshold=volume_threshold,
            time_interval_seconds=600,
            initial_volume_threshold=initial,
        ),
    )


def order_lines(start, count):
    return [f"order {start + i} created for customer {i % 17} amount {i * 3} cents" for i in range(count)]


def error_lines(count):
    return [f"payment gateway timeout after {1000 + i} ms for order {i}" for i in range(count)]


class TestTopicLifecycle:
    def test_create_and_list_topics(self):
        service = make_service()
        service.create_topic("checkout")
        service.create_topic("payments")
        assert set(service.topic_names()) == {"checkout", "payments"}

    def test_duplicate_topic_rejected(self):
        service = make_service()
        service.create_topic("checkout")
        with pytest.raises(ValueError):
            service.create_topic("checkout")

    def test_drop_topic(self):
        service = make_service()
        service.create_topic("checkout")
        service.drop_topic("checkout")
        assert service.topic_names() == []


class TestIngestionAndTraining:
    def test_first_training_triggered_by_initial_volume(self):
        service = make_service(initial=50)
        service.create_topic("checkout")
        for i, line in enumerate(order_lines(0, 60)):
            service.ingest("checkout", line, now=float(i))
        state = service.topic("checkout")
        assert state.scheduler.training_rounds >= 1
        assert len(state.parser.model) > 0

    def test_records_before_first_training_are_backfilled(self):
        service = make_service(initial=50)
        service.create_topic("checkout")
        for i, line in enumerate(order_lines(0, 80)):
            service.ingest("checkout", line, now=float(i))
        state = service.topic("checkout")
        assert all(record.template_id is not None for record in state.topic.records())

    def test_internal_topic_receives_model_snapshots(self):
        service = make_service(initial=20)
        service.create_topic("checkout")
        service.ingest_batch("checkout", order_lines(0, 40), now=0.0)
        state = service.topic("checkout")
        assert state.internal_topic.training_rounds >= 1
        assert len(state.internal_topic) >= len(state.parser.model)

    def test_volume_threshold_triggers_retraining(self):
        service = make_service(volume_threshold=200, initial=50)
        service.create_topic("checkout")
        service.ingest_batch("checkout", order_lines(0, 60), now=0.0)
        rounds_after_first = service.topic("checkout").scheduler.training_rounds
        service.ingest_batch("checkout", order_lines(60, 250), now=1.0)
        assert service.topic("checkout").scheduler.training_rounds > rounds_after_first

    def test_train_now_forces_training(self):
        service = make_service(initial=10_000)
        service.create_topic("checkout")
        service.ingest_batch("checkout", order_lines(0, 30), now=0.0)
        assert service.topic("checkout").scheduler.training_rounds == 0
        service.train_now("checkout", now=1.0)
        assert service.topic("checkout").scheduler.training_rounds == 1


class TestQueries:
    @pytest.fixture()
    def populated(self):
        service = make_service(initial=50)
        service.create_topic("checkout")
        service.ingest_batch("checkout", order_lines(0, 150) + error_lines(40), now=0.0)
        service.train_now("checkout", now=1.0)
        return service

    def test_query_groups_by_template(self, populated):
        groups = populated.query_templates("checkout", threshold=0.6)
        assert sum(group.count for group in groups) == 190
        assert len(groups) >= 2

    def test_precision_slider_changes_group_count(self, populated):
        fine = populated.query_templates("checkout", threshold=0.95)
        coarse = populated.query_templates("checkout", threshold=0.2)
        assert len(coarse) <= len(fine)

    def test_text_filter(self, populated):
        groups = populated.query_templates("checkout", threshold=0.6, text_filter="timeout")
        assert sum(group.count for group in groups) == 40

    def test_template_count_at_threshold(self, populated):
        assert populated.template_count("checkout", threshold=0.6) >= 2


class TestTemplateLibraryAndAnalytics:
    @pytest.fixture()
    def service(self):
        service = make_service(initial=40)
        service.create_topic("checkout")
        service.ingest_batch("checkout", order_lines(0, 100), now=0.0)
        service.train_now("checkout", now=10.0)
        return service

    def test_save_and_count_library_templates(self, service):
        groups = service.query_templates("checkout", threshold=0.6)
        template_id = groups[0].template_ids[0]
        service.save_template_to_library("checkout", "orders-created", template_id)
        counts = service.library_counts("checkout")
        assert counts["orders-created"] > 0

    def test_save_unknown_template_rejected(self, service):
        with pytest.raises(KeyError):
            service.save_template_to_library("checkout", "nope", 999_999)

    def test_anomaly_detection_flags_new_template(self, service):
        # A new failure pattern floods in during the second window.
        service.ingest_batch("checkout", error_lines(60), now=100.0)
        anomalies = service.detect_anomalies(
            "checkout", baseline_window=(0.0, 50.0), current_window=(50.0, 200.0)
        )
        assert any(a.kind in ("new_template", "count_spike") for a in anomalies)

    def test_period_comparison_reports_divergence(self, service):
        service.ingest_batch("checkout", error_lines(60), now=100.0)
        comparison = service.compare_periods("checkout", (0.0, 50.0), (50.0, 200.0))
        assert comparison.jensen_shannon_divergence > 0.0

    def test_failure_scenario_matching(self, service):
        service.failure_library.add(
            FailureScenario(
                name="gateway-timeouts",
                description="payment gateway timing out",
                # "1042 ms" is masked as a single duration variable, so the
                # signature mirrors the parser's template text.
                signature_templates=["payment gateway timeout after <*> for order <*>"],
                min_coverage=1.0,
            )
        )
        service.ingest_batch("checkout", error_lines(30), now=200.0)
        service.train_now("checkout", now=201.0)
        matches = service.match_failure_scenarios("checkout", window=(190.0, 300.0))
        assert matches and matches[0].scenario.name == "gateway-timeouts"

    def test_topic_stats(self, service):
        stats = service.topic_stats("checkout")
        assert stats["n_records"] == 100
        assert stats["n_templates"] >= 1
        assert stats["model_size_bytes"] > 0
        assert stats["training_rounds"] >= 1
