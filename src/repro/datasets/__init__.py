"""Benchmark datasets: synthetic LogHub-style corpora and real-data loaders.

The paper evaluates on LogHub and LogHub-2.0.  Those corpora are public but
cannot be downloaded in this offline environment, so
:mod:`repro.datasets.synthetic` generates statistically similar corpora from
per-system template catalogues (:mod:`repro.datasets.catalog`) with exact
ground-truth labels.  :mod:`repro.datasets.loghub` loads the genuine LogHub
CSV format when the files are available locally, so every experiment can be
re-run on the real benchmark unchanged.
"""

from repro.datasets.registry import (
    DATASET_NAMES,
    LOGHUB2_NAMES,
    generate_dataset,
    list_datasets,
)
from repro.datasets.synthetic import LogDataset, SyntheticLogGenerator

__all__ = [
    "DATASET_NAMES",
    "LOGHUB2_NAMES",
    "LogDataset",
    "SyntheticLogGenerator",
    "generate_dataset",
    "list_datasets",
]
