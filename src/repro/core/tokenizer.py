"""Regex tokenization of raw log records (paper §4.1.1).

The paper tokenizes with a single delimiter regular expression (Listing 1)
covering URL protocol separators, common punctuation, sentence-ending
periods, and escaped quotes.  Users may supply a custom pattern per log
topic, but high-complexity constructs (look-around, back-references) are
rejected because they can blow up matching from ``O(n)`` to ``O(2^n)``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Pattern, Sequence, Tuple

from repro.core.config import WILDCARD

__all__ = [
    "DEFAULT_TOKENIZER_PATTERN",
    "Tokenizer",
    "tokenize",
    "validate_user_pattern",
    "UnsafePatternError",
]

#: Private-use sentinel protecting already-masked wildcards from being torn
#: apart by the delimiter regex ("<" and ">" are delimiters).  Variable
#: masking runs *before* tokenization (§4.1.2), so the wildcard must survive
#: tokenization as a single token.
_WILDCARD_SENTINEL = ""

#: The paper's default delimiter expression (Listing 1).  It matches runs of
#: delimiters; the text between matches becomes the tokens.  The only change
#: from the paper's listing is that the sentence-period group is
#: non-capturing, so ``re.split`` does not emit the captured whitespace as a
#: spurious token.
DEFAULT_TOKENIZER_PATTERN = (
    r"(?:://)"
    r"|(?:(?:[\s\'\";=()\[\]{}?@&<>:\n\t\r,])"
    r"|(?:[\.](?:\s+|$))"
    r"|(?:\\[\"\']))+"
)

#: Regex constructs we refuse in user-supplied patterns (§4.1.1: "we prohibit
#: the use of high-complexity regex features ... such as look around").
_FORBIDDEN_CONSTRUCTS: Tuple[Tuple[str, str], ...] = (
    (r"\(\?=", "lookahead (?=...)"),
    (r"\(\?!", "negative lookahead (?!...)"),
    (r"\(\?<=", "lookbehind (?<=...)"),
    (r"\(\?<!", "negative lookbehind (?<!...)"),
    (r"\\[1-9]", "backreference \\N"),
    (r"\(\?P=", "named backreference (?P=...)"),
)


class UnsafePatternError(ValueError):
    """Raised when a user-supplied tokenizer pattern uses forbidden features."""


def validate_user_pattern(pattern: str) -> None:
    """Reject user patterns that use look-around or backreferences.

    Raises
    ------
    UnsafePatternError
        If the pattern contains a forbidden construct.
    re.error
        If the pattern does not compile at all.
    """
    for construct, label in _FORBIDDEN_CONSTRUCTS:
        if re.search(construct, pattern):
            raise UnsafePatternError(
                f"user tokenizer pattern uses forbidden construct: {label}"
            )
    re.compile(pattern)


class Tokenizer:
    """Splits raw log text into tokens with a delimiter regex.

    Parameters
    ----------
    pattern:
        Delimiter regex.  ``None`` selects the paper's default
        (:data:`DEFAULT_TOKENIZER_PATTERN`).  Custom patterns are validated
        against the forbidden-construct list.
    """

    def __init__(self, pattern: Optional[str] = None) -> None:
        if pattern is None:
            pattern = DEFAULT_TOKENIZER_PATTERN
        else:
            validate_user_pattern(pattern)
        self.pattern: str = pattern
        self._regex: Pattern[str] = re.compile(pattern)

    def tokenize(self, text: str) -> List[str]:
        """Split ``text`` on the delimiter regex, dropping empty tokens.

        Wildcards produced by variable masking are kept atomic: a masked
        fragment like ``part-<*>`` stays a single token instead of being
        split on the angle brackets.
        """
        if not text:
            return []
        protected = text.replace(WILDCARD, _WILDCARD_SENTINEL)
        return [
            token.replace(_WILDCARD_SENTINEL, WILDCARD)
            for token in self._regex.split(protected)
            if token
        ]

    def tokenize_many(self, texts: Sequence[str]) -> List[List[str]]:
        """Tokenize a batch of log records."""
        return [self.tokenize(text) for text in texts]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        custom = "default" if self.pattern == DEFAULT_TOKENIZER_PATTERN else "custom"
        return f"Tokenizer({custom})"


_DEFAULT_TOKENIZER = Tokenizer()


def tokenize(text: str) -> List[str]:
    """Tokenize with the paper's default pattern (module-level convenience)."""
    return _DEFAULT_TOKENIZER.tokenize(text)
