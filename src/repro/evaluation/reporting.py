"""Plain-text rendering of reproduced tables and figure series.

The paper's figures are plots; a benchmark harness cannot (and need not)
draw them, so every "figure" is reproduced as the series of numbers behind
it, printed as an aligned text table next to the paper's reference values
where the paper states them.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_matrix", "format_series", "banner"]


def banner(title: str, width: int = 78) -> str:
    """A section banner used at the top of every benchmark's output."""
    line = "=" * width
    return f"{line}\n{title}\n{line}"


def format_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(cells[i]) for cells in rendered_rows))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(cells[i].ljust(widths[i]) for i in range(len(columns))) for cells in rendered_rows
    )
    return "\n".join([header, separator, body])


def format_matrix(
    matrix: Mapping[str, Mapping[str, object]],
    row_label: str = "row",
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render a nested mapping ``{row: {column: value}}`` as a table."""
    if not matrix:
        return "(empty matrix)"
    if columns is None:
        seen: List[str] = []
        for row_values in matrix.values():
            for key in row_values:
                if key not in seen:
                    seen.append(key)
        columns = seen
    rows = []
    for row_name, row_values in matrix.items():
        row: Dict[str, object] = {row_label: row_name}
        for column in columns:
            row[column] = row_values.get(column, "")
        rows.append(row)
    return format_table(rows, [row_label, *columns])


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render one figure series as ``x -> y`` lines."""
    lines = [f"series: {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x):>12} -> {_fmt(y)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
