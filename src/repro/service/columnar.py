"""Incremental columnar analytics over the parse stream (ROADMAP item 3).

The §6 analytics surface (anomaly detection, period comparison, failure
matching) originally recomputed every answer with an O(N) scan over the
topic's record list — the query side got *slower* as PRs 1–7 made the
ingest side faster.  This module is the fix: a per-topic columnar store
plus time-bucketed materialized aggregates that are maintained
**incrementally under insertions** (PAPERS.md: "Answering FO+MOD queries
under updates") instead of recomputed, so a window query costs
O(buckets touched), not O(records stored).

:class:`TopicAggregates` holds, per topic:

* **columnar record state** — append-indexed numpy columns
  ``template_id`` (int64, ``-1`` = unassigned) and ``timestamp``
  (float64), grown amortised-O(1).  Record id == column index, and the
  runtime's ``seq = base + record_id + 1`` mapping turns any row back
  into a WAL position, which is what drill-down rides on;
* **time-bucketed frequency counters** — ``floor(ts / bucket_seconds)``
  keys a dict of per-template counts.  A window query sums whole-bucket
  counters for every fully covered bucket and resolves the (at most two)
  partially covered edge buckets with one vectorised scan over that
  bucket's row span — the window-shrinking trick: the exact-scan region
  shrinks to the edges as the window widens;
* **a lazy prefix-sum index** — per-template cumulative counts over the
  sorted bucket keys, built on first wide query and reused until a
  mutation dirties it, dropping the full-bucket sum from O(buckets) to
  O(templates · log buckets) for repeated queries over a quiet stream;
* **a first-seen index** — per-template ``(record_id, timestamp)``
  minima for new-template burst detection without any scan;
* **bounded variable-value sketches** — a K-minimum-values distinct
  sketch per template over stable 32-bit hashes of the raw text.
  Distinct raw realisations of one template ≈ distinct variable
  bindings, so the sketch estimates per-template variable diversity in
  O(sketch_size) memory however hot the template runs.

Every mutation enters through exactly two hooks, called by
:class:`~repro.service.topic.LogTopic` on the ingest commit path:
:meth:`TopicAggregates.observe_append` and
:meth:`TopicAggregates.observe_restamp` (backfill and late-temporary
carry-over re-stamp records; counters move, they are never rebuilt).
Because the hooks live on the topic itself, WAL recovery replay,
supervisor resync and the process backend's parent mirror all maintain
their aggregates for free by replaying the same append/restamp stream.
:meth:`TopicAggregates.digest` folds the live aggregate state into one
crc so the process backend can assert child and mirror agree at every
sync barrier.

All query methods are exact (the sketches are estimates, but counters
and indexes are not): the differential tests assert byte-identical
answers against the retained O(N) recompute oracle.
"""

from __future__ import annotations

import heapq
import math
import struct
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ValueSketch", "TopicAggregates"]

#: Column value for records whose template is not (yet) assigned.
UNASSIGNED = -1

#: Full-bucket ranges at least this many buckets wide go through the
#: prefix-sum index (when clean); narrower ones sum bucket dicts directly,
#: which is cheaper than a potential rebuild.
_PREFIX_MIN_BUCKETS = 16

_HASH_SPACE = float(1 << 32)


def stable_raw_hash(raw: str) -> int:
    """Stable 32-bit hash of a raw record (crc32 — identical across
    processes and Python versions, unlike the salted built-in ``hash``,
    so child and mirror sketches agree bit-for-bit)."""
    return zlib.crc32(raw.encode("utf-8", "surrogatepass")) & 0xFFFFFFFF


class ValueSketch:
    """Bounded-memory K-minimum-values distinct-count sketch.

    Keeps the ``k`` smallest hashes ever inserted.  The state is a pure
    function of the inserted hash *set* — insertion order never matters —
    which is what makes child and parent-mirror sketches comparable even
    though restamps reach them in different orders.
    """

    __slots__ = ("k", "_members", "_heap")

    def __init__(self, k: int = 64) -> None:
        if k < 2:
            raise ValueError("sketch size must be >= 2")
        self.k = k
        self._members: set = set()
        self._heap: List[int] = []  # max-heap via negation

    def insert(self, value: int) -> None:
        """Insert one hash (no-op for duplicates and values above the
        current k-th minimum once full)."""
        if value in self._members:
            return
        if len(self._members) < self.k:
            self._members.add(value)
            heapq.heappush(self._heap, -value)
        elif value < -self._heap[0]:
            evicted = -heapq.heappushpop(self._heap, -value)
            self._members.discard(evicted)
            self._members.add(value)

    def __len__(self) -> int:
        return len(self._members)

    def estimate(self) -> float:
        """Estimated distinct-value count (exact while under capacity)."""
        if len(self._members) < self.k:
            return float(len(self._members))
        kth = float(-self._heap[0])
        if kth <= 0.0:
            return float(self.k)
        return (self.k - 1) * _HASH_SPACE / kth

    def state(self) -> List[int]:
        """Canonical (sorted) retained hashes — deterministic for digests."""
        return sorted(self._members)


class TopicAggregates:
    """Columnar store + materialized time-bucketed aggregates for one topic."""

    def __init__(self, bucket_seconds: float = 60.0, sketch_size: int = 64) -> None:
        if bucket_seconds <= 0.0:
            raise ValueError("bucket_seconds must be positive")
        self.bucket_seconds = float(bucket_seconds)
        self.sketch_size = int(sketch_size)
        self._n = 0
        self._tids = np.full(1024, UNASSIGNED, dtype=np.int64)
        self._ts = np.zeros(1024, dtype=np.float64)
        #: bucket key -> {template_id: count}; counts are exact and move
        #: under restamps (decrement old, increment new) — never rebuilt.
        self._buckets: Dict[int, Dict[int, int]] = {}
        #: bucket key -> inclusive (lo, hi) record-id span: the only rows
        #: an exact edge-bucket scan ever has to touch.
        self._spans: Dict[int, List[int]] = {}
        #: Ascending bucket keys (kept sorted on creation) so range
        #: queries over sparse streams bisect instead of iterating gaps.
        self._sorted_keys: List[int] = []
        #: template -> (min record_id, min timestamp) ever stamped.
        self._first_seen: Dict[int, Tuple[int, float]] = {}
        #: template -> current total count across all buckets ("live"
        #: templates have a positive total; fully-restamped temporaries
        #: drop to zero and vanish from every query and the digest).
        self._totals: Dict[int, int] = {}
        self._sketches: Dict[int, ValueSketch] = {}
        # Lazy prefix-sum index over full buckets.
        self._prefix_keys: Optional[np.ndarray] = None
        self._prefix_cum: Dict[int, np.ndarray] = {}
        self._prefix_dirty = True

    # ------------------------------------------------------------------ #
    # mutation hooks (the ingest commit path)
    # ------------------------------------------------------------------ #
    def bucket_key(self, timestamp: float) -> int:
        """Bucket a timestamp falls into."""
        return math.floor(timestamp / self.bucket_seconds)

    def observe_append(
        self, record_id: int, timestamp: float, raw: str, template_id: Optional[int]
    ) -> None:
        """Account one appended record (O(1) amortised)."""
        if record_id >= len(self._tids):
            self._grow(record_id + 1)
        tid = UNASSIGNED if template_id is None else int(template_id)
        self._tids[record_id] = tid
        self._ts[record_id] = timestamp
        if record_id >= self._n:
            self._n = record_id + 1
        key = self.bucket_key(timestamp)
        span = self._spans.get(key)
        if span is None:
            self._spans[key] = [record_id, record_id]
            self._insert_key(key)
        else:
            if record_id < span[0]:
                span[0] = record_id
            if record_id > span[1]:
                span[1] = record_id
        if tid != UNASSIGNED:
            self._count(key, tid, 1)
            self._note_template(tid, record_id, timestamp, raw)
        self._prefix_dirty = True

    def observe_restamp(self, record_id: int, timestamp: float, raw: str, template_id: int) -> None:
        """Move one record's count from its previous template to a new one."""
        old = int(self._tids[record_id])
        tid = int(template_id)
        if old == tid:
            return
        key = self.bucket_key(timestamp)
        if old != UNASSIGNED:
            self._count(key, old, -1)
        self._tids[record_id] = tid
        self._count(key, tid, 1)
        self._note_template(tid, record_id, timestamp, raw)
        self._prefix_dirty = True

    def _note_template(self, tid: int, record_id: int, timestamp: float, raw: str) -> None:
        seen = self._first_seen.get(tid)
        if seen is None:
            self._first_seen[tid] = (record_id, timestamp)
        else:
            self._first_seen[tid] = (min(seen[0], record_id), min(seen[1], timestamp))
        sketch = self._sketches.get(tid)
        if sketch is None:
            sketch = self._sketches[tid] = ValueSketch(self.sketch_size)
        sketch.insert(stable_raw_hash(raw))

    def _count(self, key: int, tid: int, delta: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = {}
        new = bucket.get(tid, 0) + delta
        if new:
            bucket[tid] = new
        else:
            bucket.pop(tid, None)
        total = self._totals.get(tid, 0) + delta
        if total:
            self._totals[tid] = total
        else:
            self._totals.pop(tid, None)

    def _insert_key(self, key: int) -> None:
        keys = self._sorted_keys
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        keys.insert(lo, key)

    def _grow(self, needed: int) -> None:
        capacity = max(needed, 2 * len(self._tids))
        tids = np.full(capacity, UNASSIGNED, dtype=np.int64)
        tids[: self._n] = self._tids[: self._n]
        ts = np.zeros(capacity, dtype=np.float64)
        ts[: self._n] = self._ts[: self._n]
        self._tids = tids
        self._ts = ts

    # ------------------------------------------------------------------ #
    # window queries (exact; O(buckets touched))
    # ------------------------------------------------------------------ #
    def template_counts_between(self, start_time: float, end_time: float) -> Dict[int, int]:
        """Exact per-template counts over ``[start_time, end_time)`` —
        identical to counting ``records_between`` but without the scan."""
        counts: Dict[int, int] = {}
        if end_time <= start_time or not self._sorted_keys:
            return counts
        k_lo = self.bucket_key(start_time)
        k_hi = self.bucket_key(end_time)
        lo_partial = start_time > k_lo * self.bucket_seconds
        hi_partial = end_time > k_hi * self.bucket_seconds
        full_lo = k_lo + 1 if lo_partial else k_lo
        full_hi = k_hi - 1
        self._sum_full_buckets(full_lo, full_hi, counts)
        if lo_partial:
            self._scan_edge_bucket(k_lo, start_time, end_time, counts)
        if hi_partial and k_hi != k_lo:
            self._scan_edge_bucket(k_hi, start_time, end_time, counts)
        return counts

    def _sum_full_buckets(self, full_lo: int, full_hi: int, counts: Dict[int, int]) -> None:
        if full_hi < full_lo:
            return
        keys = self._sorted_keys
        lo_i = _bisect_left(keys, full_lo)
        hi_i = _bisect_right(keys, full_hi)
        if hi_i <= lo_i:
            return
        if hi_i - lo_i >= _PREFIX_MIN_BUCKETS:
            self._ensure_prefix()
            p_lo = int(np.searchsorted(self._prefix_keys, full_lo, side="left"))
            p_hi = int(np.searchsorted(self._prefix_keys, full_hi, side="right")) - 1
            if p_hi >= p_lo:
                for tid, cum in self._prefix_cum.items():
                    total = int(cum[p_hi]) - (int(cum[p_lo - 1]) if p_lo > 0 else 0)
                    if total:
                        counts[tid] = counts.get(tid, 0) + total
            return
        for key in keys[lo_i:hi_i]:
            bucket = self._buckets.get(key)
            if bucket:
                for tid, count in bucket.items():
                    counts[tid] = counts.get(tid, 0) + count

    def _scan_edge_bucket(
        self, key: int, start_time: float, end_time: float, counts: Dict[int, int]
    ) -> None:
        """Exactly count one partially covered bucket with a vectorised
        scan over its row span.  The bucket-membership mask excludes rows
        of *other* buckets interleaved into the span by out-of-order
        timestamps, so nothing is double counted against the whole-bucket
        counters."""
        span = self._spans.get(key)
        if span is None:
            return
        lo, hi = span[0], span[1] + 1
        ts = self._ts[lo:hi]
        tids = self._tids[lo:hi]
        mask = (
            (np.floor(ts / self.bucket_seconds) == key)
            & (ts >= start_time)
            & (ts < end_time)
            & (tids != UNASSIGNED)
        )
        if not mask.any():
            return
        ids, found = np.unique(tids[mask], return_counts=True)
        for tid, count in zip(ids.tolist(), found.tolist()):
            counts[tid] = counts.get(tid, 0) + count

    def _ensure_prefix(self) -> None:
        if not self._prefix_dirty and self._prefix_keys is not None:
            return
        keys = np.asarray(self._sorted_keys, dtype=np.int64)
        per_template: Dict[int, np.ndarray] = {}
        for index, key in enumerate(self._sorted_keys):
            for tid, count in self._buckets.get(key, {}).items():
                row = per_template.get(tid)
                if row is None:
                    row = per_template[tid] = np.zeros(len(keys), dtype=np.int64)
                row[index] = count
        self._prefix_keys = keys
        self._prefix_cum = {tid: np.cumsum(row) for tid, row in per_template.items()}
        self._prefix_dirty = False

    def top_k(self, start_time: float, end_time: float, k: int = 10) -> List[Tuple[int, int]]:
        """Top-``k`` ``(template_id, count)`` over the window, ordered by
        descending count with template id as the deterministic tiebreak."""
        counts = self.template_counts_between(start_time, end_time)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[: max(k, 0)]

    def distinct_templates_between(self, start_time: float, end_time: float) -> List[int]:
        """Sorted distinct template ids observed in the window."""
        return sorted(self.template_counts_between(start_time, end_time))

    def new_templates_between(
        self, start_time: float, end_time: float
    ) -> List[Tuple[int, int, float]]:
        """Templates *born* in the window: ``(template_id, first_record_id,
        first_timestamp)`` for every live template whose earliest stamp
        falls in ``[start_time, end_time)`` — the burst-detection feed."""
        born: List[Tuple[int, int, float]] = []
        for tid in sorted(self._first_seen):
            if tid not in self._totals:
                continue  # fully re-stamped temporary: not a live template
            record_id, first_ts = self._first_seen[tid]
            if start_time <= first_ts < end_time:
                born.append((tid, record_id, first_ts))
        return born

    def first_seen(self, template_id: int) -> Optional[Tuple[int, float]]:
        """``(record_id, timestamp)`` of a template's earliest stamp."""
        return self._first_seen.get(template_id)

    def record_ids_between(
        self,
        start_time: float,
        end_time: float,
        template_id: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[int]:
        """Record ids in the window (ascending), optionally filtered to one
        template — the drill-down path from a bucket back to raw records.
        Only the row spans of touched buckets are scanned."""
        if end_time <= start_time:
            return []
        k_lo = self.bucket_key(start_time)
        k_hi = self.bucket_key(end_time)
        keys = self._sorted_keys
        lo_i = _bisect_left(keys, k_lo)
        hi_i = _bisect_right(keys, k_hi)
        found: List[np.ndarray] = []
        for key in keys[lo_i:hi_i]:
            span = self._spans.get(key)
            if span is None:
                continue
            lo, hi = span[0], span[1] + 1
            ts = self._ts[lo:hi]
            mask = (np.floor(ts / self.bucket_seconds) == key) & (ts >= start_time) & (
                ts < end_time
            )
            if template_id is not None:
                mask &= self._tids[lo:hi] == template_id
            if mask.any():
                found.append(np.nonzero(mask)[0] + lo)
        if not found:
            return []
        ids = np.sort(np.concatenate(found))
        if limit is not None:
            ids = ids[: max(limit, 0)]
        return ids.tolist()

    def distinct_value_estimate(self, template_id: int) -> float:
        """Estimated distinct raw realisations (≈ variable bindings) of a
        template, from its bounded K-minimum-values sketch."""
        sketch = self._sketches.get(template_id)
        return sketch.estimate() if sketch is not None else 0.0

    # ------------------------------------------------------------------ #
    # state summaries
    # ------------------------------------------------------------------ #
    def digest(self) -> int:
        """crc32 over the canonical live aggregate state.

        Covers bucket counters, per-live-template first-seen minima and
        sketch states.  Dead templates (total count zero — fully
        re-stamped temporaries) are excluded: the child observed them,
        the parent mirror never did, and neither can answer a query from
        them.  The process backend compares child and mirror digests at
        every sync barrier."""
        crc = zlib.crc32(struct.pack("<qd", self._n, self.bucket_seconds))
        for key in self._sorted_keys:
            bucket = self._buckets.get(key)
            if not bucket:
                continue
            for tid in sorted(bucket):
                crc = zlib.crc32(struct.pack("<qqq", key, tid, bucket[tid]), crc)
        for tid in sorted(self._totals):
            record_id, first_ts = self._first_seen[tid]
            crc = zlib.crc32(struct.pack("<qqd", tid, record_id, first_ts), crc)
            sketch = self._sketches.get(tid)
            if sketch is not None:
                state = sketch.state()
                crc = zlib.crc32(struct.pack(f"<{len(state)}I", *state), crc)
        return crc

    def stats(self) -> Dict[str, float]:
        """Operational counters for reporting surfaces."""
        return {
            "records": float(self._n),
            "buckets": float(len(self._buckets)),
            "live_templates": float(len(self._totals)),
            "bucket_seconds": self.bucket_seconds,
            "prefix_index_clean": float(not self._prefix_dirty),
        }


def _bisect_left(keys: List[int], value: int) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(keys: List[int], value: int) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= value:
            lo = mid + 1
        else:
            hi = mid
    return lo
