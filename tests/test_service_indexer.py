"""Unit tests for the indexing pipeline that embeds online matching."""

import pytest

from repro.core.config import ByteBrainConfig
from repro.core.matcher import OnlineMatcher
from repro.core.trainer import OfflineTrainer
from repro.service.indexer import IndexingPipeline
from repro.service.scheduler import SchedulerPolicy, TrainingScheduler
from repro.service.topic import LogTopic


@pytest.fixture()
def trained_matcher():
    lines = [f"request {i} served in {i % 90} ms" for i in range(200)]
    trainer = OfflineTrainer(ByteBrainConfig())
    result = trainer.train(lines)
    return OnlineMatcher(result.model, preprocessor=trainer.preprocessor)


@pytest.fixture()
def pipeline():
    return IndexingPipeline(LogTopic("requests"), TrainingScheduler(SchedulerPolicy()))


class TestIngestion:
    def test_ingest_without_model_stores_untemplated_record(self, pipeline):
        outcome = pipeline.ingest("request 1 served in 5 ms", timestamp=0.0)
        assert outcome.template_id is None
        assert len(pipeline.topic) == 1
        assert pipeline.scheduler.pending_records == 1

    def test_ingest_with_model_attaches_template(self, pipeline, trained_matcher):
        pipeline.attach_matcher(trained_matcher)
        outcome = pipeline.ingest("request 9 served in 12 ms", timestamp=1.0)
        assert outcome.template_id is not None
        assert not outcome.is_new_template
        assert outcome.total_seconds >= 0.0

    def test_unseen_pattern_creates_temporary_template(self, pipeline, trained_matcher):
        pipeline.attach_matcher(trained_matcher)
        outcome = pipeline.ingest("kernel oops at address deadbeef", timestamp=2.0)
        assert outcome.is_new_template

    def test_backfill_assigns_templates_to_old_records(self, pipeline, trained_matcher):
        pipeline.ingest("request 1 served in 5 ms", timestamp=0.0)
        pipeline.ingest("request 2 served in 6 ms", timestamp=0.5)
        updated = pipeline.backfill_templates(trained_matcher)
        assert updated == 2
        assert all(r.template_id is not None for r in pipeline.topic.records())

    def test_latency_breakdown_reported(self, pipeline, trained_matcher):
        pipeline.attach_matcher(trained_matcher)
        outcome = pipeline.ingest("request 3 served in 7 ms", timestamp=3.0)
        assert outcome.parse_seconds >= 0.0
        assert outcome.index_seconds >= 0.0
        assert outcome.total_seconds == pytest.approx(
            outcome.parse_seconds + outcome.index_seconds
        )
