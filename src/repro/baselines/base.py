"""Shared infrastructure for the baseline parsers.

All baselines follow the LogPai benchmark convention: whitespace
tokenization after masking the handful of obvious variables (numbers, IPs,
hex ids) that the benchmark's per-dataset regexes would normally cover.
Using the same masking rules for every baseline and for ByteBrain keeps the
comparison fair — differences in accuracy and speed come from the grouping
algorithms, not from preprocessing tricks.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple

__all__ = ["BaselineParser", "WILDCARD"]

WILDCARD = "<*>"

_MASK_PATTERNS = [
    re.compile(r"(?<!\d)\d{4}-\d{2}-\d{2}[T ]\d{2}:\d{2}:\d{2}(?:[.,]\d+)?(?!\d)"),
    re.compile(r"\b[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}\b"),
    re.compile(r"\b(?:\d{1,3}\.){3}\d{1,3}(?::\d{1,5})?\b"),
    re.compile(r"\b0[xX][0-9a-fA-F]+\b"),
    re.compile(r"\b[0-9a-fA-F]{16,}\b"),
    re.compile(r"\bblk_-?\d+\b"),
    re.compile(r"(?<![\w.])[-+]?\d+(?:\.\d+)?(?![\w.])"),
]


class BaselineParser(ABC):
    """Minimal interface every baseline implements."""

    #: Display name matching the paper's tables.
    name: str = "baseline"

    def preprocess(self, line: str) -> List[str]:
        """Mask obvious variables and split on whitespace."""
        for pattern in _MASK_PATTERNS:
            line = pattern.sub(WILDCARD, line)
        return line.split()

    def preprocess_many(self, lines: Sequence[str]) -> List[List[str]]:
        """Preprocess a batch of lines."""
        return [self.preprocess(line) for line in lines]

    @abstractmethod
    def parse(self, lines: Sequence[str]) -> List[int]:
        """Return one group id per input line."""

    # ------------------------------------------------------------------ #
    # helpers shared by several baselines
    # ------------------------------------------------------------------ #
    @staticmethod
    def sequence_template(token_lists: Sequence[Sequence[str]]) -> Tuple[str, ...]:
        """Positional template of equal-length token sequences."""
        if not token_lists:
            return ()
        template = list(token_lists[0])
        for tokens in token_lists[1:]:
            for index, token in enumerate(tokens):
                if template[index] != token:
                    template[index] = WILDCARD
        return tuple(template)

    @staticmethod
    def group_by(keys: Sequence[object]) -> List[int]:
        """Turn arbitrary hashable keys into dense integer group ids."""
        mapping: Dict[object, int] = {}
        result: List[int] = []
        for key in keys:
            if key not in mapping:
                mapping[key] = len(mapping)
            result.append(mapping[key])
        return result
