"""Shared token-hash cache used by every layer that hashes tokens (§4.1.4).

Hash encoding maps each token to a deterministic 64-bit blake2b prefix.  The
hash of a token never changes, so there is no reason for the trainer, the
:class:`~repro.core.encoding.HashEncoder` and the online match index to each
re-hash the same tokens: this module holds ONE process-wide ``str -> uint64``
memo shared by all of them.  On real log streams the distinct-token count is
tiny compared to the token count (Fig. 4 duplication), so after warm-up the
hot matching path never touches blake2b at all.

The cache is append-only and unsynchronised by design: concurrent writers can
only ever race to store the *same* value under the same key, which is safe
under the GIL, and readers see either a hit or recompute the identical value.
A soft cap bounds memory on pathological vocabularies.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "hash_token_uncached",
    "hash_token",
    "hash_tokens",
    "encode_unique_batch",
    "pack_hash_matrix",
    "cache_info",
    "clear_cache",
]

_UINT64_MASK = (1 << 64) - 1

#: Soft cap on memoised tokens; when exceeded the cache is reset wholesale.
#: 4M entries is roughly 500 MB worst case — far beyond any vocabulary the
#: paper's corpora produce (§4.1.4 sizes collision risk at 10M tokens).
_MAX_CACHE_TOKENS = 4_000_000

_CACHE: Dict[str, int] = {}


def hash_token_uncached(token: str) -> int:
    """Deterministic 64-bit hash of a token (no memoisation).

    Uses the first 8 bytes of blake2b, which is stable across processes and
    Python versions (unlike the built-in ``hash``), exactly the property the
    paper needs so that offline training and online matching agree without a
    shared dictionary.
    """
    digest = hashlib.blake2b(token.encode("utf-8", "surrogatepass"), digest_size=8).digest()
    return struct.unpack("<Q", digest)[0] & _UINT64_MASK


def hash_token(token: str) -> int:
    """Memoised :func:`hash_token_uncached` backed by the shared cache."""
    value = _CACHE.get(token)
    if value is None:
        if len(_CACHE) >= _MAX_CACHE_TOKENS:
            _CACHE.clear()
        value = hash_token_uncached(token)
        _CACHE[token] = value
    return value


def hash_tokens(tokens: Sequence[str]) -> np.ndarray:
    """Hash one token sequence into a 1-D ``uint64`` array via the cache."""
    values = np.empty(len(tokens), dtype=np.uint64)
    cache = _CACHE
    for i, token in enumerate(tokens):
        value = cache.get(token)
        if value is None:
            value = hash_token(token)
        values[i] = value
    return values


def encode_unique_batch(token_lists: Sequence[Sequence[str]]) -> List[np.ndarray]:
    """Hash a whole corpus, touching blake2b once per *distinct* token.

    One cache-mediated pass: the first occurrence of a token hashes and
    memoises it, every later occurrence is a dict hit.  The cap is applied
    once up front so the cache cannot be reset mid-batch (the cap is soft —
    a single batch with more distinct tokens than the cap may overshoot it).
    This is the batch counterpart of :func:`hash_tokens` and the encoding
    primitive of the vectorised match engine.
    """
    if len(_CACHE) >= _MAX_CACHE_TOKENS:
        _CACHE.clear()
    return [hash_tokens(tokens) for tokens in token_lists]


def pack_hash_matrix(token_lists: Sequence[Sequence[str]], length: int) -> np.ndarray:
    """Pack equal-length token sequences into one ``(n, length)`` matrix.

    All sequences must have exactly ``length`` tokens; the result is the
    dense operand of the batched broadcast comparison in
    :meth:`~repro.core.matcher.TemplateMatchIndex.match_batch`.
    """
    n = len(token_lists)
    cache = _CACHE
    flat = np.empty(n * length, dtype=np.uint64)
    pos = 0
    for tokens in token_lists:
        if len(tokens) != length:
            raise ValueError(f"expected {length} tokens, got {len(tokens)}")
        for token in tokens:
            value = cache.get(token)
            if value is None:
                value = hash_token(token)
            flat[pos] = value
            pos += 1
    return flat.reshape(n, length)


def cache_info() -> Dict[str, int]:
    """Size statistics of the shared cache (benchmarks / debugging)."""
    return {"n_tokens": len(_CACHE), "max_tokens": _MAX_CACHE_TOKENS}


def clear_cache() -> None:
    """Reset the shared cache (tests and cold-start benchmarking)."""
    _CACHE.clear()
