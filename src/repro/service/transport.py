"""Process-backend shard transport: worker processes that escape the GIL.

The thread backend (:class:`~repro.service.runtime.ShardedRuntime`) moves
every record through the interpreter twice — once as a producer-side
Python object, once on the consumer side — and every byte of that work
contends on one GIL.  :class:`ProcessShardedRuntime` promotes shard
workers to **forked worker processes**: each child owns its shard's topic
engines, its shard's WAL directory, and its own training rounds; record
batches cross the process boundary as framed binary blocks (topic +
contiguous seq range + packed f64 timestamps + length-prefixed utf-8
blobs, see :func:`encode_record_batch`) instead of per-record pickled
objects.

Process topology (see docs/ARCHITECTURE.md for the diagram)::

    parent (producers, seq allocation, mirror engines, watermark.json)
      │  cmd pipe:  B <batch frame> | C <control pickle>      (one per shard)
      │  resp pipe: A acks | P captured | S/T/R control replies
      │             | E soft error | X fatal crash report
      └─ shard-worker process 0..N-1 (engines, ShardWal, rounds)

Ownership rules, which every other design decision follows from:

* **Seqs** — the parent allocates per-topic WAL sequence numbers at
  submit time (even without a WAL): the exactly-once redelivery filter
  needs them, and only one allocator can keep them gap-free.
* **Shard WAL directory** — opened and appended by exactly one writer,
  the shard's worker process (opening a :class:`ShardWal` starts a fresh
  segment; two openers of one directory would collide).  The child also
  truncates its own directory; the parent only ever reclaims *orphan*
  directories left by a previous run with more shards
  (:meth:`WriteAheadLog.truncate_orphans`).
* **watermark.json** — single writer: the parent.  Children report
  snapshot coverage over the resp pipe (``P``) and the parent persists
  it.  Children persist each round's store snapshot (stamped with
  ``wal_seq``) *before* sending ``P``, so a lagging watermark file only
  ever under-claims — recovery treats the snapshot's own ``wal_seq`` as
  authoritative.
* **Mirror engines** — the parent keeps every engine too, frozen at the
  last sync barrier.  ``drain()`` / ``train_topic`` / ``rollback_model``
  ship a *sync payload* (new records with template ids, model JSON,
  scheduler counters, backfill restamps) and the parent applies it, so
  reads (``match`` / ``query_templates`` / ``topic_stats``) against the
  parent service work exactly as with the thread backend — which is what
  the differential harness (``tests/test_differential_backends.py``)
  asserts.

Supervision carries over from the thread backend: a dead child is
detected by resp-pipe EOF, restarted under the shared
:class:`~repro.core.retry.RetryPolicy` (fresh pipes, fork from the
mirror, WAL resync past the mirror's watermark, redelivery of unacked
frames), and the delivery-time seq filter makes acked records apply
*exactly once* no matter how resync and redelivery interleave.  A shard
that exhausts its restart budget is quarantined (producers shed load,
``drain`` raises).  Armed failpoints propagate into children via
:func:`repro.core.failpoints.active_specs` (remaining ``times`` budget)
and dead children's counters fold back via ``absorb_child_state``, so a
bounded fault stays bounded across incarnations.

Restamp safety: sync barriers wait out in-flight rounds before building
the payload, so any later round's plan watermark is at or past the
synced watermark — late-temporary re-stamping never touches a record the
mirror already holds.  The one exception is the first round's backfill
(template ids for records ingested before any model existed); the child
tracks it and ships explicit ``(record_id, template_id)`` restamps.

Known limits: topics created directly on the parent service after
construction are invisible to the children — register them through
:meth:`ProcessShardedRuntime.create_topic`, which teaches the owning
worker over the control pipe.  Without a WAL a child crash loses
acked-but-unsynced records (at-most-once degradation) — supervised
durability requires ``wal_dir``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import struct
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field
from pathlib import Path
from queue import Queue
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import failpoints, parallel
from repro.core.model import ParserModel
from repro.core.retry import RetryPolicy
from repro.service.runtime import (
    _BATCH_SYNC_INTERVAL,
    _HEALTHY_RESET_SECONDS,
    _RESYNC_BATCH,
    ShardStats,
    ShardTransport,
)
from repro.service.wal import ShardWal, WriteAheadLog

__all__ = [
    "BatchSection",
    "encode_record_batch",
    "decode_record_batch",
    "ProcessShardedRuntime",
]

# --------------------------------------------------------------------- #
# wire protocol
# --------------------------------------------------------------------- #
#: Parent -> child: a batch frame (body is :func:`encode_record_batch`).
_TAG_BATCH = b"B"
#: Parent -> child: a pickled control dict ({"op": ..., "token": ...}).
_TAG_CONTROL = b"C"
#: Child -> parent: pickled [(topic, through_seq, n_applied)] acks, one
#: entry per batch-frame section.
_TAG_ACK = b"A"
#: Child -> parent: drain reply (pickled sync payload).
_TAG_SYNC = b"S"
#: Child -> parent: train reply (info + sync payload).
_TAG_TRAIN = b"T"
#: Child -> parent: rollback phase reply.
_TAG_ROLLBACK = b"R"
#: Child -> parent: (topic, captured_seq) — a round persisted a snapshot;
#: the parent advances watermark.json.
_TAG_CAPTURED = b"P"
#: Child -> parent: a non-fatal error string (training round failure).
_TAG_ERROR = b"E"
#: Child -> parent: fatal crash report (message, traceback, failpoint
#: state) sent immediately before the child exits non-zero.
_TAG_FATAL = b"X"

_FRAME_VERSION = 1
#: Frame version carrying per-section producer dedup marks; emitted only
#: when at least one section has marks, so markless traffic (and every
#: pre-upgrade peer reading it) stays byte-identical to version 1.
_FRAME_VERSION_MARKS = 2
_BATCH_HEADER = struct.Struct("<BI")  # version, n_sections
_SECTION_HEAD = struct.Struct("<HQI")  # len(topic), first_seq, n_records
_MARK_COUNT = struct.Struct("<H")  # v2: producer marks per section
_MARK_KEY = struct.Struct("<H")  # v2: len(producer key)
_MARK_SEQ = struct.Struct("<Q")  # v2: producer batch_seq


@dataclass
class BatchSection:
    """One topic's seq-contiguous slice of a batch frame."""

    topic: str
    #: WAL seq of ``raws[0]``; record ``i`` holds ``first_seq + i``.
    first_seq: int
    timestamps: List[float]
    raws: List[str]
    #: Producer dedup marks covering this section's records —
    #: ``(producer_key, batch_seq)`` pairs the worker embeds in the WAL
    #: frame it writes for the section (see ``wal.py``'s BBWAL002).
    marks: List[Tuple[str, int]] = field(default_factory=list)


def encode_record_batch(sections: Sequence[BatchSection]) -> bytes:
    """Encode sections into one binary batch frame.

    Layout: ``u8 version | u32 n_sections``, then per section
    ``u16 len(topic) | topic utf-8 | u64 first_seq | u32 n | f64[n]
    timestamps | u32[n] raw byte lengths | concatenated raw utf-8``.
    Version 2 (used only when a section carries producer marks) inserts
    ``u16 n_marks | n_marks x (u16 len(key) | key utf-8 | u64 batch_seq)``
    between the topic name and the timestamps.
    Timestamps and lengths travel as packed little-endian numpy arrays, so
    a thousand-record section costs two array copies, not a thousand
    object serialisations.  Exact inverse of :func:`decode_record_batch`
    (byte-identical round trip — property-tested in
    ``tests/test_transport_codec.py``).
    """
    with_marks = any(section.marks for section in sections)
    version = _FRAME_VERSION_MARKS if with_marks else _FRAME_VERSION
    parts: List[bytes] = [_BATCH_HEADER.pack(version, len(sections))]
    for section in sections:
        n_records = len(section.raws)
        if len(section.timestamps) != n_records:
            raise ValueError("timestamps must match raws in length")
        topic_bytes = section.topic.encode("utf-8")
        raw_bytes = [raw.encode("utf-8") for raw in section.raws]
        parts.append(_SECTION_HEAD.pack(len(topic_bytes), section.first_seq, n_records))
        parts.append(topic_bytes)
        if with_marks:
            parts.append(_MARK_COUNT.pack(len(section.marks)))
            for producer_key, batch_seq in section.marks:
                key_bytes = producer_key.encode("utf-8")
                parts.append(_MARK_KEY.pack(len(key_bytes)))
                parts.append(key_bytes)
                parts.append(_MARK_SEQ.pack(batch_seq))
        parts.append(np.asarray(section.timestamps, dtype="<f8").tobytes())
        parts.append(
            np.fromiter((len(b) for b in raw_bytes), dtype="<u4", count=n_records).tobytes()
        )
        parts.extend(raw_bytes)
    return b"".join(parts)


def decode_record_batch(data: bytes) -> List[BatchSection]:
    """Decode one batch frame back into sections (inverse of encode)."""
    version, n_sections = _BATCH_HEADER.unpack_from(data, 0)
    if version not in (_FRAME_VERSION, _FRAME_VERSION_MARKS):
        raise ValueError(f"unknown batch frame version {version}")
    offset = _BATCH_HEADER.size
    sections: List[BatchSection] = []
    for _ in range(n_sections):
        topic_len, first_seq, n_records = _SECTION_HEAD.unpack_from(data, offset)
        offset += _SECTION_HEAD.size
        topic = data[offset : offset + topic_len].decode("utf-8")
        offset += topic_len
        marks: List[Tuple[str, int]] = []
        if version == _FRAME_VERSION_MARKS:
            (n_marks,) = _MARK_COUNT.unpack_from(data, offset)
            offset += _MARK_COUNT.size
            for _ in range(n_marks):
                (key_len,) = _MARK_KEY.unpack_from(data, offset)
                offset += _MARK_KEY.size
                producer_key = data[offset : offset + key_len].decode("utf-8")
                offset += key_len
                (batch_seq,) = _MARK_SEQ.unpack_from(data, offset)
                offset += _MARK_SEQ.size
                marks.append((producer_key, batch_seq))
        timestamps = np.frombuffer(data, dtype="<f8", count=n_records, offset=offset).tolist()
        offset += 8 * n_records
        lengths = np.frombuffer(data, dtype="<u4", count=n_records, offset=offset)
        offset += 4 * n_records
        raws: List[str] = []
        for length in lengths.tolist():
            raws.append(data[offset : offset + length].decode("utf-8"))
            offset += length
        sections.append(
            BatchSection(topic=topic, first_seq=first_seq, timestamps=timestamps,
                         raws=raws, marks=marks)
        )
    if offset != len(data):
        raise ValueError("batch frame has trailing bytes")
    return sections


# --------------------------------------------------------------------- #
# child side
# --------------------------------------------------------------------- #
@dataclass
class _ChildSpec:
    """Everything a worker process needs, passed as live objects through
    ``fork`` (no pickling — the child inherits the parent's memory)."""

    index: int
    n_shards: int
    #: Monotonic per-shard spawn counter.  The child stamps every control
    #: reply with it, so the parent can tell a reply from the *live*
    #: incarnation (its sync increments must be applied, even when a
    #: retried barrier made the token stale) from one a dead incarnation
    #: left behind (must be dropped — the restart forked from the parent
    #: mirror *without* that increment, and the WAL resync re-covers it).
    incarnation: int
    cmd_r: object
    resp_w: object
    #: Every *other* Connection the child inherited; closed at bootstrap
    #: so pipe EOF semantics stay exact (a sibling holding a stray write
    #: end would keep a dead peer's reader alive forever).
    close_conns: List[object]
    service: object
    wal_shard_dir: Optional[Path]
    wal_sync_mode: str
    wal_segment_bytes: int
    wal_retain_versions: int
    #: Per-topic seq base / next seq at fork time (parent-allocated).
    bases: Dict[str, int]
    next_seqs: Dict[str, int]
    captured: Dict[str, int]
    #: Armed failpoints' remaining behaviour (re-armed after the fork).
    failpoint_specs: List[str] = field(default_factory=list)
    #: True on restart: replay acked-but-unapplied WAL records past the
    #: inherited mirror state before serving.
    resync: bool = False


def _child_main(spec: _ChildSpec) -> None:
    worker = _ShardWorker(spec)
    try:
        worker.bootstrap()
        worker.serve()
    except BaseException as error:  # noqa: BLE001 — last-resort crash report
        worker.fatal(error)


class _ShardWorker:
    """One shard's worker process: engines, WAL, rounds, the serve loop."""

    def __init__(self, spec: _ChildSpec) -> None:
        self.spec = spec
        self.service = spec.service
        self.index = spec.index
        self.cmd = spec.cmd_r
        self.resp = spec.resp_w
        self.wal: Optional[ShardWal] = None
        self._send_lock = threading.Lock()
        self._engine_locks: Dict[str, threading.Lock] = {}
        self._rounds_lock = threading.Lock()
        self._rounds_in_flight: Dict[str, Future] = {}
        self._rounds_delta = 0
        self._batches = 0
        self._largest_batch = 0
        self._bases = dict(spec.bases)
        self._next_seqs = dict(spec.next_seqs)
        self._captured = dict(spec.captured)
        #: Topic -> record id through which the parent mirror is up to
        #: date (captured at bootstrap = the fork-time high watermark).
        self._synced_watermark: Dict[str, int] = {}
        #: Topics whose first round backfilled template ids onto records
        #: the mirror already holds — their restamps ship at next sync.
        self._backfilled: set = set()
        self._last_seen: Dict[str, float] = {}
        self._owned: List[str] = []
        #: Producer dedup marks applied by this incarnation; checkpointed
        #: to the shard's sessions.json before any truncation.
        self._producer_marks: Dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------- #
    def bootstrap(self) -> None:
        parallel.reset_after_fork()
        failpoints.reset_after_fork()
        for fp_spec in self.spec.failpoint_specs:
            failpoints.configure_from_spec(fp_spec)
        for conn in self.spec.close_conns:
            if conn is self.cmd or conn is self.resp:
                continue
            try:
                conn.close()
            except OSError:
                pass
        self._owned = [
            name
            for name in self.service.topic_names()
            if self._shard_of(name) == self.index
        ]
        for name in self._owned:
            engine = self.service.topic(name)
            # Inherited locks may have been captured mid-acquire by a
            # parent thread that does not exist here; replace them.
            engine.swap_guard = threading.Lock()
            engine.topic._token_index_lock = threading.Lock()
            self._synced_watermark[name] = engine.topic.high_watermark
        if self.spec.wal_shard_dir is not None:
            self.wal = ShardWal(
                self.spec.wal_shard_dir,
                sync_mode=self.spec.wal_sync_mode,
                segment_bytes=self.spec.wal_segment_bytes,
            )
        if self.spec.resync and self.wal is not None:
            self._resync_from_wal()

    def _shard_of(self, topic_name: str) -> int:
        import zlib

        return zlib.crc32(topic_name.encode("utf-8")) % self.spec.n_shards

    def _resync_from_wal(self) -> None:
        """Replay acked records the inherited mirror state never applied."""
        floors: Dict[str, int] = {}
        for name in self._owned:
            engine = self.service.topic(name)
            floors[name] = self._bases.get(name, 0) + engine.topic.high_watermark
        if not floors:
            return
        pending = self.wal.pending_records(floors)
        for name in sorted(pending):
            records = pending[name]
            if not records:
                continue
            engine = self.service.topic(name)
            with self._engine_lock(name):
                for start in range(0, len(records), _RESYNC_BATCH):
                    chunk = records[start : start + _RESYNC_BATCH]
                    engine.ingest_batch_fast(
                        [record.raw for record in chunk],
                        now=chunk[-1].timestamp,
                        timestamps=[record.timestamp for record in chunk],
                    )
            self._next_seqs[name] = max(
                self._next_seqs.get(name, 1), records[-1].seq + 1
            )
            self._last_seen[name] = records[-1].timestamp

    def serve(self) -> None:
        while True:
            try:
                message = self.cmd.recv_bytes()
            except (EOFError, OSError):
                # Parent is gone (its cmd write end closed).  Flush the
                # WAL and exit; orphaned workers must not linger.
                self._wait_rounds()
                if self.wal is not None:
                    self.wal.close()
                return
            tag, body = message[:1], message[1:]
            if tag == _TAG_BATCH:
                self._handle_batch(body)
            elif tag == _TAG_CONTROL:
                control = pickle.loads(body)
                op = control.get("op")
                if op == "stop":
                    self._wait_rounds()
                    if self.wal is not None:
                        self.wal.close()
                    return
                if op == "drain":
                    self._handle_drain(control)
                elif op == "train":
                    self._handle_train(control)
                elif op == "rollback_prepare":
                    self._handle_rollback_prepare(control)
                elif op == "rollback_commit":
                    self._handle_rollback_commit(control)
                elif op == "create_topic":
                    self._handle_create_topic(control)

    def fatal(self, error: BaseException) -> None:
        """Report the crash over the resp pipe, then die non-zero.

        ``os._exit`` mimics a hard crash: no atexit hooks, no WAL close —
        everything appended is already in the OS page cache (unbuffered
        writes), which a process death cannot lose, and the restarted
        incarnation resyncs from it.
        """
        report = (repr(error), traceback.format_exc(), failpoints.state())
        self._send(_TAG_FATAL, pickle.dumps(report))
        try:
            self.resp.close()
        except OSError:
            pass
        os._exit(1)

    def _send(self, tag: bytes, body: bytes) -> None:
        with self._send_lock:
            try:
                self.resp.send_bytes(tag + body)
            except (BrokenPipeError, OSError):
                pass  # parent died; the serve loop will see EOF shortly

    # -- ingest -------------------------------------------------------- #
    def _handle_batch(self, body: bytes) -> None:
        try:
            failpoints.hit("worker.batch")
            sections = decode_record_batch(body)
            self._batches += 1
            frame_records = sum(len(section.raws) for section in sections)
            if frame_records > self._largest_batch:
                self._largest_batch = frame_records
            acks: List[Tuple[str, int, int]] = []
            for section in sections:
                if not section.raws:
                    continue
                engine = self.service.topic(section.topic)
                base = self._bases.get(section.topic, 0)
                # Exactly-once across restarts: the WAL resync may already
                # have applied a prefix of a redelivered section.
                applied_seq = base + engine.topic.high_watermark
                first_new = min(max(0, applied_seq + 1 - section.first_seq), len(section.raws))
                raws = section.raws[first_new:]
                timestamps = section.timestamps[first_new:]
                if raws:
                    if self.wal is not None:
                        # Durability point: the frame reaches the page
                        # cache (always mode: stable storage) before the
                        # ack — acked therefore implies recoverable.  The
                        # section's producer marks ride the same frame,
                        # so dedup state is exactly as durable as the
                        # records it covers.
                        self.wal.append_batch(
                            section.topic,
                            section.first_seq + first_new,
                            timestamps[-1],
                            raws,
                            timestamps=timestamps,
                            session=section.marks or None,
                        )
                    with self._engine_lock(section.topic):
                        engine.ingest_batch_fast(
                            raws, now=timestamps[-1], timestamps=timestamps
                        )
                    self._next_seqs[section.topic] = max(
                        self._next_seqs.get(section.topic, 1),
                        section.first_seq + len(section.raws),
                    )
                self._last_seen[section.topic] = section.timestamps[-1]
                for producer_key, batch_seq in section.marks:
                    if batch_seq > self._producer_marks.get(producer_key, 0):
                        self._producer_marks[producer_key] = batch_seq
                acks.append(
                    (section.topic, section.first_seq + len(section.raws) - 1, len(raws))
                )
            if self.wal is not None and self.wal.sync_mode == "batch":
                self.wal.sync(min_interval=_BATCH_SYNC_INTERVAL)
            self._send(_TAG_ACK, pickle.dumps(acks))
            for section in sections:
                if not section.raws:
                    continue
                engine = self.service.topic(section.topic)
                self._maybe_dispatch_round(section.topic, engine, section.timestamps[-1])
        except Exception as error:
            # Batch-stage failures are fatal to the incarnation — the
            # parent's supervisor restarts the process, resyncs from the
            # WAL and redelivers unacked frames, which is exactly the
            # thread backend's requeue-and-restart semantics.
            self.fatal(error)

    # -- training rounds ----------------------------------------------- #
    def _engine_lock(self, topic_name: str) -> threading.Lock:
        return self._engine_locks.setdefault(topic_name, threading.Lock())

    def _maybe_dispatch_round(self, topic_name: str, engine, now: float) -> bool:
        if not engine.scheduler.should_train(now):
            return False
        with self._rounds_lock:
            if topic_name in self._rounds_in_flight:
                return False
            with self._engine_lock(topic_name):
                plan = engine.plan_round(now)
            if plan is None:
                return False
            future = parallel.shared_executor().submit(
                self._run_round, topic_name, engine, plan
            )
            self._rounds_in_flight[topic_name] = future
            self._rounds_delta += 1
            return True

    def _run_round(self, topic_name: str, engine, plan) -> None:
        try:
            prepared = engine.execute_round(plan)
            with self._engine_lock(topic_name):
                engine.commit_round(prepared, persist=False)
            if plan.base_model is None:
                self._backfilled.add(topic_name)
            self._persist_round(topic_name, engine, plan, prepared)
        except Exception as error:
            self._send(
                _TAG_ERROR, pickle.dumps(f"training round for {topic_name!r}: {error!r}")
            )
        finally:
            with self._rounds_lock:
                self._rounds_in_flight.pop(topic_name, None)

    def _persist_round(self, topic_name: str, engine, plan, prepared) -> None:
        """Snapshot-first durability ordering, then report coverage.

        Store snapshot (with ``wal_seq``) → ``P`` to the parent (which
        advances watermark.json) → truncate this shard's own segments.  A
        crash between any two steps leaves the watermark *lagging* the
        snapshot, which recovery resolves in the snapshot's favour.
        """
        if self.wal is None:
            engine.persist_round(prepared)
            return
        captured_seq = self._seq_of_watermark(topic_name, plan.watermark)
        engine.persist_round(prepared, extra_metadata={"wal_seq": captured_seq})
        if prepared.model_changed and engine.store is not None:
            self._captured[topic_name] = captured_seq
            self._send(_TAG_CAPTURED, pickle.dumps((topic_name, captured_seq)))
            # Marks outlive the segments that carried them: checkpoint
            # before reclaiming (no-op when nothing advanced).
            self.wal.record_producer_marks(self._producer_marks)
            self.wal.truncate(self._wal_floors())

    def _seq_of_watermark(self, topic_name: str, watermark: int) -> int:
        base = self._bases.get(topic_name, 0)
        next_seq = self._next_seqs.get(topic_name, 1)
        return max(0, min(base + watermark, next_seq - 1))

    def _wal_floors(self) -> Dict[str, int]:
        """Per-topic truncation floors for this shard's own directory
        (same retained-rollback-targets rule as the thread backend)."""
        floors: Dict[str, int] = {}
        retain = self.spec.wal_retain_versions
        for name in self._owned:
            engine = self.service.topic(name)
            floor = self._captured.get(name, 0)
            if engine.store is None:
                floors[name] = 0
                continue
            current, versions = engine.store.current_and_versions()
            if current is None:
                floors[name] = 0
                continue
            for entry in versions:
                if current - retain < entry.version <= current:
                    floor = min(floor, int(entry.metadata.get("wal_seq", 0)))
            floors[name] = floor
        return floors

    def _wait_rounds(self) -> None:
        while True:
            with self._rounds_lock:
                futures = list(self._rounds_in_flight.values())
            if not futures:
                return
            wait_futures(futures)

    # -- sync barriers -------------------------------------------------- #
    def _handle_drain(self, control: Dict[str, object]) -> None:
        self._wait_rounds()
        while True:
            dispatched = False
            for topic_name, last_ts in list(self._last_seen.items()):
                try:
                    engine = self.service.topic(topic_name)
                except KeyError:
                    continue
                if self._maybe_dispatch_round(topic_name, engine, last_ts):
                    dispatched = True
            self._wait_rounds()
            if not dispatched:
                break
        if self.wal is not None:
            self.wal.sync()  # full fsync barrier, mirroring drain()'s sync_all
            self.wal.record_producer_marks(self._producer_marks)
            self.wal.truncate(self._wal_floors())
        payload = self._build_sync_payload()
        payload["token"] = control.get("token")
        payload["incarnation"] = self.spec.incarnation
        self._send(_TAG_SYNC, pickle.dumps(payload))

    def _handle_create_topic(self, control: Dict[str, object]) -> None:
        """Register a dynamically created topic in this (owning) worker.

        Idempotent: a retry after a mid-op restart finds the topic either
        absent (create it) or inherited through the fork (the restarted
        child's bootstrap already registered it in ``_owned``) — both
        converge on the same state.
        """
        topic_name = control["topic"]
        error: Optional[str] = None
        try:
            if self._shard_of(topic_name) == self.index:
                try:
                    engine = self.service.topic(topic_name)
                except KeyError:
                    engine = self.service.create_topic(topic_name)
                if topic_name not in self._owned:
                    self._owned.append(topic_name)
                    engine.swap_guard = threading.Lock()
                    engine.topic._token_index_lock = threading.Lock()
                    self._synced_watermark[topic_name] = engine.topic.high_watermark
        except Exception as exc:
            error = repr(exc)
        reply = {
            "token": control.get("token"),
            "incarnation": self.spec.incarnation,
            "error": error,
        }
        self._send(_TAG_SYNC, pickle.dumps(reply))

    def _handle_train(self, control: Dict[str, object]) -> None:
        topic_name = control["topic"]
        self._wait_rounds()
        info = None
        error: Optional[str] = None
        try:
            engine = self.service.topic(topic_name)
            with self._engine_lock(topic_name):
                plan = engine.plan_round(
                    control["now"], force_full=bool(control.get("force_full"))
                )
            if plan is not None:
                prepared = engine.execute_round(plan)
                with self._engine_lock(topic_name):
                    engine.commit_round(prepared, persist=False)
                if plan.base_model is None:
                    self._backfilled.add(topic_name)
                self._persist_round(topic_name, engine, plan, prepared)
                self._rounds_delta += 1
                info = {
                    "mode": prepared.round.mode,
                    "reason": prepared.round.reason,
                    "n_clustered": prepared.round.n_clustered,
                    "n_reused": prepared.round.n_reused,
                    "model_changed": prepared.model_changed,
                }
        except Exception as exc:
            error = repr(exc)
        reply = {
            "token": control.get("token"),
            "incarnation": self.spec.incarnation,
            "info": info,
            "error": error,
            "sync": self._build_sync_payload(),
        }
        self._send(_TAG_TRAIN, pickle.dumps(reply))

    def _handle_rollback_prepare(self, control: Dict[str, object]) -> None:
        """Phase 1: predict the rollback target and the watermark rewind.

        Read-only — the parent rewinds watermark.json *before* phase 2
        moves the store pointer, preserving the thread backend's
        crash-ordering (see ``ShardedRuntime.rollback_model``).
        """
        topic_name = control["topic"]
        reply: Dict[str, object] = {
            "token": control.get("token"),
            "incarnation": self.spec.incarnation,
            "error": None,
        }
        try:
            engine = self.service.topic(topic_name)
            if engine.store is None:
                raise RuntimeError(
                    f"topic {topic_name!r} has no model store configured"
                )
            current = engine.store.current_version()
            if current is None:
                raise LookupError("model store is empty; nothing to roll back to")
            earlier = [
                v for v in engine.store.versions() if v.version < current.version
            ]
            if not earlier:
                raise LookupError(
                    f"no version earlier than current ({current.version})"
                )
            target = max(earlier, key=lambda v: v.version)
            reply["target_version"] = target.version
            if self.wal is not None:
                base = self._bases.get(topic_name, 0)
                reply["rewind"] = max(int(target.metadata.get("wal_seq", 0)), base)
            else:
                reply["rewind"] = None
        except Exception as exc:
            reply["error"] = str(exc)
            reply["error_type"] = type(exc).__name__
        self._send(_TAG_ROLLBACK, pickle.dumps(reply))

    def _handle_rollback_commit(self, control: Dict[str, object]) -> None:
        """Phase 2: move the store pointer to the prepared target and
        install it.  Explicit ``to_version`` keeps a retry after a crash
        idempotent (a default one-back rollback would step twice)."""
        topic_name = control["topic"]
        to_version = int(control["to_version"])
        reply: Dict[str, object] = {
            "token": control.get("token"),
            "incarnation": self.spec.incarnation,
            "error": None,
        }
        try:
            engine = self.service.topic(topic_name)
            version = engine.store.rollback(to_version=to_version)
            model = engine.store.load(version.version)
            model.reserve_ids(engine.parser.model.next_template_id)
            matcher = engine.parser.build_matcher(model)
            with self._engine_lock(topic_name):
                with engine.swap_guard:
                    engine.parser.install_model(model, matcher=matcher)
                    engine.pipeline.attach_matcher(matcher)
                    engine.trained_watermark = int(
                        version.metadata.get("trained_watermark", 0)
                    )
                    if self.wal is not None:
                        self._rebase_watermark_after_rollback(
                            engine, topic_name, version
                        )
            engine.internal_topic.publish_model(model)
            rewind = control.get("rewind")
            if rewind is not None:
                self._captured[topic_name] = int(rewind)
            reply["version"] = version
            reply["model_json"] = model.to_json()
            reply["next_template_id"] = model.next_template_id
            reply["trained_watermark"] = engine.trained_watermark
        except Exception as exc:
            reply["error"] = str(exc)
            reply["error_type"] = type(exc).__name__
        self._send(_TAG_ROLLBACK, pickle.dumps(reply))

    def _rebase_watermark_after_rollback(self, engine, topic_name: str, version) -> None:
        wal_seq = version.metadata.get("wal_seq")
        if wal_seq is None:
            return
        base = self._bases.get(topic_name, 0)
        rebased = min(max(0, int(wal_seq) - base), engine.topic.high_watermark)
        engine.trained_watermark = rebased

    def _build_sync_payload(self) -> Dict[str, object]:
        """Everything the parent mirror needs to catch up to this child.

        Callers hold the sync-barrier invariant: no round in flight, so
        every record below the new synced watermark carries its final
        template id (late-temporary restamps only touch records at or
        past a round's plan watermark, which is at or past the *previous*
        synced watermark).
        """
        topics: Dict[str, Dict[str, object]] = {}
        for name in self._owned:
            engine = self.service.topic(name)
            from_id = self._synced_watermark.get(name, 0)
            high = engine.topic.high_watermark
            restamps: List[Tuple[int, Optional[int]]] = []
            if name in self._backfilled:
                restamps = [
                    (record.record_id, record.template_id)
                    for record in engine.topic.slice(0, from_id)
                ]
                self._backfilled.discard(name)
            scheduler = engine.scheduler
            topics[name] = {
                "from_id": from_id,
                "records": [
                    (record.raw, record.timestamp, record.template_id)
                    for record in engine.topic.slice(from_id, high)
                ],
                "restamps": restamps,
                "model_json": (
                    engine.parser.model.to_json() if engine.parser.is_trained else None
                ),
                "next_template_id": engine.parser.model.next_template_id,
                "trained_watermark": engine.trained_watermark,
                "scheduler": {
                    "records_since": scheduler._records_since_training,
                    "last_time": scheduler._last_training_time,
                    "rounds": scheduler._training_rounds,
                    "incremental": scheduler._incremental_rounds,
                    "full": scheduler._full_rounds,
                    "last_mode": scheduler._last_mode,
                },
                "captured": self._captured.get(name, 0),
                # Digest of the child's live materialized aggregates
                # (bucket counters, first-seen index, value sketches).
                # The shipped records/restamps above *are* the aggregate
                # delta — the parent mirror's topic hooks replay them
                # into its own aggregates — and the digest lets the
                # parent assert both sides agree at this barrier.
                "analytics_digest": (
                    engine.analytics.digest() if engine.topic.aggregates is not None else None
                ),
            }
            self._synced_watermark[name] = high
        payload: Dict[str, object] = {
            "topics": topics,
            "stats": {
                "batches": self._batches,
                "largest_batch": self._largest_batch,
                "rounds_delta": self._rounds_delta,
            },
            "failpoints": failpoints.state(),
        }
        self._rounds_delta = 0
        return payload


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
@dataclass
class _ProcessFailure:
    """One worker-process death, as seen by its supervisor."""

    message: str
    traceback_text: str
    exitcode: Optional[int]


def _section_marks(records: Sequence[Tuple]) -> List[Tuple[str, int]]:
    """Producer dedup marks for one frame section: the max ``batch_seq``
    per producer across the records' ``(producer_key, batch_seq)``
    sessions (most sections carry none and encode as version-1 frames)."""
    marks: Dict[str, int] = {}
    for record in records:
        session = record[4]
        if session is not None and session[1] > marks.get(session[0], 0):
            marks[session[0]] = session[1]
    return sorted(marks.items())


class _ProcessShard:
    """Parent-side state for one shard's worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        #: Guards pending, the pipe handles and seq-order invariants —
        #: submits, flushes and restarts all serialise on it.
        self.lock = threading.Lock()
        #: Records accepted but not yet framed and sent, as
        #: ``(topic, raw, timestamp, seq, session)`` tuples where
        #: ``session`` is ``None`` or a ``(producer_key, batch_seq)``
        #: idempotent-producer mark that must ride the records' frame.
        self.pending: List[Tuple[str, str, float, int, Optional[Tuple[str, int]]]] = []
        #: Topic -> seq-ordered records sent but not yet acked; the
        #: redelivery source after a child death.
        self.unacked: Dict[str, deque] = {}
        #: Records sent and not yet acked (backpressure accounting).
        self.in_flight = 0
        self.cmd_w = None
        self.resp_r = None
        self.process = None
        #: Bumped (under ``lock``) each time a worker process is forked
        #: for this shard; see :class:`_ChildSpec.incarnation`.
        self.incarnation = 0
        self.state = "running"
        #: Control replies (S/T/R payloads and ("died", msg) markers)
        #: forwarded by the applier to whoever runs the barrier op.
        self.control_replies: Queue = Queue()
        self.stats = ShardStats(shard=index)


class ProcessShardedRuntime(ShardTransport):
    """Process-backend shard transport (see the module docstring).

    Accepts the same constructor surface as the thread backend
    (``executor`` is accepted and ignored — rounds run on each child's
    own shared executor).  Select it through
    :func:`repro.service.runtime.create_runtime` /
    ``service.sharded_runtime(backend="process")`` / the
    ``shard_backend`` config knob / ``REPRO_SHARD_BACKEND``.
    """

    backend = "process"

    def __init__(
        self,
        service,
        n_shards: Optional[int] = None,
        micro_batch_size: Optional[int] = None,
        max_batch_delay: Optional[float] = None,
        queue_capacity: Optional[int] = None,
        executor=None,
        wal: Optional[WriteAheadLog] = None,
        wal_dir=None,
        wal_positions: Optional[Dict[str, Tuple[int, int]]] = None,
    ) -> None:
        config = service.config
        self.service = service
        self.n_shards = n_shards if n_shards is not None else config.n_shards
        self.micro_batch_size = (
            micro_batch_size if micro_batch_size is not None else config.micro_batch_size
        )
        self.max_batch_delay = (
            max_batch_delay if max_batch_delay is not None else config.max_batch_delay
        )
        capacity = queue_capacity if queue_capacity is not None else config.ingest_queue_capacity
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.micro_batch_size < 1:
            raise ValueError("micro_batch_size must be >= 1")
        if capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if wal is not None and wal_dir is not None:
            raise ValueError("pass either wal or wal_dir, not both")
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "the process shard backend requires the 'fork' start method; "
                "use the thread backend on this platform"
            )
        self._mp = mp.get_context("fork")
        self.wal = wal if wal is not None else (
            WriteAheadLog(
                wal_dir,
                sync_mode=config.wal_sync_mode,
                segment_bytes=config.wal_segment_bytes,
            )
            if wal_dir is not None
            else None
        )
        self._wal_positions: Dict[str, Tuple[int, int]] = dict(wal_positions or {})
        if self.wal is not None and wal_positions is None and self.wal.has_state():
            raise RuntimeError(
                f"WAL at {self.wal.root} already contains state; open it through "
                "RecoveredRuntime.open(...) (which replays it and carries the "
                "sequence positions over) instead of a fresh runtime"
            )
        if wal_positions is None:
            # Pre-existing records (bootstrap training) shift the
            # record-id <-> seq mapping; seqs are allocated even without a
            # WAL here, because the restart redelivery filter runs on them.
            for name in service.topic_names():
                pre_existing = service.topic(name).topic.high_watermark
                if pre_existing:
                    self._wal_positions[name] = (-pre_existing, 1)
        #: Topics the shard workers know about.  Children fork with the
        #: topics that exist at construction; :meth:`create_topic` teaches
        #: the owning worker about later additions and extends this set.
        self._known_topics = set(service.topic_names())
        #: Idempotent-producer dedup high-water marks observed by this
        #: runtime (seeded from the WAL's checkpoints + frame replay).
        self._producer_marks: Dict[str, int] = (
            self.wal.producer_marks() if self.wal is not None else {}
        )
        self._producer_marks_lock = threading.Lock()
        self._queue_capacity = capacity
        #: Same admission ceiling the thread backend exposes; see
        #: :meth:`ShardTransport.try_submit_many`.
        self.queue_capacity = capacity
        self._errors: List[str] = []
        self._errors_lock = threading.Lock()
        self._worker_failures: Dict[int, _ProcessFailure] = {}
        self._restart_policy = RetryPolicy(
            max_attempts=config.worker_restart_max_attempts,
            base_delay=config.worker_restart_backoff,
            max_delay=config.worker_restart_backoff_max,
            deadline=config.worker_restart_deadline_seconds,
        )
        self._stop_event = threading.Event()
        self._closed = False
        #: Serialises drain / train / rollback barrier operations.
        self._control_lock = threading.Lock()
        self._control_token = 0
        self._stop_sent = [False] * self.n_shards
        self._shards = [_ProcessShard(index) for index in range(self.n_shards)]
        for shard in self._shards:
            self._spawn(shard, resync=False)
        self._supervisors = [
            threading.Thread(
                target=self._supervisor_loop,
                args=(shard,),
                name=f"repro-shard-sup-{shard.index}",
                daemon=True,
            )
            for shard in self._shards
        ]
        for thread in self._supervisors:
            thread.start()
        self._flusher = threading.Thread(
            target=self._flusher_loop, name="repro-shard-flusher", daemon=True
        )
        self._flusher.start()

    # -- child lifecycle ------------------------------------------------ #
    def _spawn(self, shard: _ProcessShard, resync: bool) -> None:
        """Fork one worker process (caller holds ``shard.lock`` on restart;
        at construction no other thread exists yet)."""
        cmd_r, cmd_w = self._mp.Pipe(duplex=False)
        resp_r, resp_w = self._mp.Pipe(duplex=False)
        close_conns: List[object] = [cmd_w, resp_r]
        for other in self._shards:
            for conn in (other.cmd_w, other.resp_r):
                if conn is not None:
                    close_conns.append(conn)
        shard.incarnation += 1
        spec = _ChildSpec(
            index=shard.index,
            n_shards=self.n_shards,
            incarnation=shard.incarnation,
            cmd_r=cmd_r,
            resp_w=resp_w,
            close_conns=close_conns,
            service=self.service,
            wal_shard_dir=(
                self.wal.shard_directory(shard.index) if self.wal is not None else None
            ),
            wal_sync_mode=self.wal.sync_mode if self.wal is not None else "batch",
            wal_segment_bytes=(
                self.wal.segment_bytes if self.wal is not None else 4 * 1024 * 1024
            ),
            wal_retain_versions=self.service.config.wal_retain_versions,
            bases={name: base for name, (base, _n) in self._wal_positions.items()},
            next_seqs={name: nxt for name, (_b, nxt) in self._wal_positions.items()},
            captured=self.wal.captured() if self.wal is not None else {},
            failpoint_specs=failpoints.active_specs(),
            resync=resync,
        )
        process = self._mp.Process(
            target=_child_main,
            args=(spec,),
            name=f"repro-shard-proc-{shard.index}",
            daemon=True,
        )
        process.start()
        # The parent must not hold the child's ends: resp EOF is the death
        # signal and cmd EOF is the child's parent-death signal.
        cmd_r.close()
        resp_w.close()
        shard.cmd_w, shard.resp_r, shard.process = cmd_w, resp_r, process

    def _restart(self, shard: _ProcessShard) -> None:
        """Fork a fresh incarnation and redeliver the unacked backlog."""
        with shard.lock:
            for conn in (shard.cmd_w, shard.resp_r):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            shard.cmd_w = shard.resp_r = None
            self._spawn(shard, resync=self.wal is not None)
            # Redeliver in micro-batch-sized frames, not one giant frame:
            # the thread backend requeues unacked records and re-batches
            # them at ``micro_batch_size``, so per-batch behaviour (batch
            # stats, ``worker.batch`` failpoint evaluations) stays
            # equivalent across backends.
            frames: List[List[BatchSection]] = []
            for topic, dq in shard.unacked.items():
                records = list(dq)
                start = 0
                while start < len(records):
                    if records[start][4] is not None:
                        # A sessioned batch must stay in ONE frame: its
                        # dedup mark is only valid when it is exactly as
                        # durable as every record it covers.
                        session = records[start][4]
                        end = start + 1
                        while end < len(records) and records[end][4] == session:
                            end += 1
                    else:
                        end = min(start + self.micro_batch_size, len(records))
                        for i in range(start + 1, end):
                            if records[i][4] is not None:
                                end = i
                                break
                    chunk = records[start:end]
                    frames.append(
                        [
                            BatchSection(
                                topic=topic,
                                first_seq=chunk[0][3],
                                timestamps=[record[2] for record in chunk],
                                raws=[record[1] for record in chunk],
                                marks=_section_marks(chunk),
                            )
                        ]
                    )
                    start = end
            for sections in frames:
                try:
                    shard.cmd_w.send_bytes(_TAG_BATCH + encode_record_batch(sections))
                except OSError:
                    break  # died instantly; the next supervisor pass retries

    def _supervisor_loop(self, shard: _ProcessShard) -> None:
        state = self._restart_policy.start(seed=shard.index)
        while True:
            started_at = time.monotonic()
            failure = self._applier(shard)
            if failure is None:
                return  # clean stop
            shard.state = "restarting"
            shard.control_replies.put(("died", failure.message))
            if self._closed:
                return  # shutting down: no point restarting
            if time.monotonic() - started_at >= _HEALTHY_RESET_SECONDS:
                state.reset()
            delay = state.record_failure()
            if delay is None:
                self._quarantine(shard, failure, state.attempts)
                return
            shard.stats.restarts += 1
            self._record_error(
                f"shard {shard.index} worker process died ({failure.message}); "
                f"restart {state.attempts}/{self._restart_policy.max_attempts} "
                f"in {delay * 1000:.0f} ms"
            )
            self._stop_event.wait(delay)
            if self._closed:
                return
            try:
                self._restart(shard)
            except Exception as error:  # fork/redelivery failed
                failure = _ProcessFailure(repr(error), traceback.format_exc(), None)
                shard.control_replies.put(("died", failure.message))
                continue
            shard.state = "running"

    def _applier(self, shard: _ProcessShard) -> Optional[_ProcessFailure]:
        """Apply one incarnation's resp stream; returns the failure (or
        ``None`` for a clean post-stop exit)."""
        resp = shard.resp_r
        process = shard.process
        fatal: Optional[Tuple[str, str, Dict]] = None
        while True:
            try:
                message = resp.recv_bytes()
            except (EOFError, OSError):
                break
            tag, body = message[:1], message[1:]
            if tag == _TAG_ACK:
                self._apply_acks(shard, pickle.loads(body))
            elif tag == _TAG_CAPTURED:
                topic_name, captured_seq = pickle.loads(body)
                if self.wal is not None:
                    self.wal.set_captured(topic_name, captured_seq)
            elif tag in (_TAG_SYNC, _TAG_TRAIN, _TAG_ROLLBACK):
                shard.control_replies.put((tag, pickle.loads(body)))
            elif tag == _TAG_ERROR:
                self._record_error(pickle.loads(body))
            elif tag == _TAG_FATAL:
                fatal = pickle.loads(body)
        process.join(timeout=10.0)
        exitcode = process.exitcode
        if fatal is not None:
            # Fold the dead child's failpoint counters back so bounded
            # (times=N) faults stay bounded across incarnations.
            failpoints.absorb_child_state(fatal[2])
            return _ProcessFailure(fatal[0], fatal[1], exitcode)
        if self._stop_sent[shard.index] and exitcode == 0:
            return None
        return _ProcessFailure(
            f"worker process exited with code {exitcode}", "", exitcode
        )

    def _apply_acks(self, shard: _ProcessShard, acks) -> None:
        removed_total = 0
        applied_total = 0
        # The whole ack must apply under ``shard.lock``: ``_flush_locked``
        # holds it across send_bytes *and* the unacked extend, and a hot
        # child can ack in between — popping lock-free here would observe
        # the pre-extend backlog, clear nothing, and strand the (already
        # acked) records in ``unacked`` forever.
        with shard.lock:
            for topic_name, through_seq, n_applied in acks:
                backlog = shard.unacked.get(topic_name)
                while backlog and backlog[0][3] <= through_seq:
                    backlog.popleft()
                    removed_total += 1
                applied_total += n_applied
            shard.in_flight -= removed_total
        shard.stats.ingested += applied_total
        shard.stats.batches += 1
        if applied_total > shard.stats.largest_batch:
            shard.stats.largest_batch = applied_total

    def _quarantine(self, shard: _ProcessShard, failure: _ProcessFailure, attempts: int) -> None:
        with self._errors_lock:
            self._worker_failures[shard.index] = failure
            self._errors.append(
                f"shard {shard.index} worker died after {attempts} restart(s), "
                f"shard quarantined: {failure.traceback_text or failure.message}"
            )
        shard.state = "quarantined"
        shard.control_replies.put(("died", failure.message))

    # -- producer side -------------------------------------------------- #
    def submit(self, topic_name: str, raw: str, timestamp: float) -> int:
        """Enqueue one record; same contract as the thread backend."""
        if self._closed:
            raise RuntimeError("runtime is shut down")
        self.service.topic(topic_name)  # fail fast on unknown topics
        if topic_name not in self._known_topics:
            raise KeyError(
                f"topic {topic_name!r} is not registered with the shard "
                "workers; create it through create_topic() first"
            )
        shard = self._shards[self.shard_of(topic_name)]
        self._backpressure(shard)
        with shard.lock:
            if shard.state == "quarantined" or self._closed:
                raise RuntimeError("shard queue is closed (shutdown or dead worker)")
            base, next_seq = self._wal_positions.get(topic_name, (0, 1))
            self._wal_positions[topic_name] = (base, next_seq + 1)
            shard.pending.append((topic_name, raw, timestamp, next_seq, None))
            if len(shard.pending) >= self.micro_batch_size:
                self._flush_locked(shard)
        return shard.index

    def submit_many(self, topic_name: str, raws: Sequence[str], timestamp: float) -> int:
        """Enqueue a sequence of records for one topic; returns the count."""
        if self._closed:
            raise RuntimeError("runtime is shut down")
        self.service.topic(topic_name)
        if topic_name not in self._known_topics:
            raise KeyError(
                f"topic {topic_name!r} is not registered with the shard "
                "workers; create it through create_topic() first"
            )
        if not raws:
            return 0
        shard = self._shards[self.shard_of(topic_name)]
        self._backpressure(shard)
        with shard.lock:
            if shard.state == "quarantined" or self._closed:
                raise RuntimeError("shard queue is closed (shutdown or dead worker)")
            base, next_seq = self._wal_positions.get(topic_name, (0, 1))
            self._wal_positions[topic_name] = (base, next_seq + len(raws))
            pending = shard.pending
            for offset, raw in enumerate(raws):
                pending.append((topic_name, raw, timestamp, next_seq + offset, None))
                if len(pending) >= self.micro_batch_size:
                    self._flush_locked(shard)
        return len(raws)

    def submit_session_batch(
        self,
        topic_name: str,
        raws: Sequence[str],
        timestamps: Sequence[float],
        session_key: str,
        batch_seq: int,
        timeout: float = 30.0,
    ) -> int:
        """Durably apply one idempotent-producer wire batch and return only
        once it is recoverable.

        The whole batch targets one topic (hence one shard, one child WAL
        frame): the producer's ``(session_key, batch_seq)`` dedup mark is
        embedded in the *same* frame as the records, so the mark is
        durable if and only if every record it covers is — a replay after
        a crash can never be half-deduplicated.  Unlike :meth:`submit_many`
        this blocks until the owning child has appended and acked the
        records (the wire server's ack must imply recoverability, and on
        this backend the plain submit path only hands records to the
        parent's in-memory pending queue).

        A dead child is waited out: the records sit in ``pending`` /
        ``unacked`` and the restart path redelivers them, mark included,
        as one unsplit frame.  Raises ``TimeoutError`` when the barrier
        does not clear within ``timeout`` — the batch is then in an
        indeterminate state and the caller must *not* ack it.
        """
        if self._closed:
            raise RuntimeError("runtime is shut down")
        self.service.topic(topic_name)
        if topic_name not in self._known_topics:
            raise KeyError(
                f"topic {topic_name!r} is not registered with the shard "
                "workers; create it through create_topic() first"
            )
        if len(raws) != len(timestamps):
            raise ValueError("raws and timestamps must have the same length")
        session = (session_key, int(batch_seq))
        if not raws:
            self._note_producer_mark(session_key, int(batch_seq))
            return 0
        shard = self._shards[self.shard_of(topic_name)]
        self._backpressure(shard)
        with shard.lock:
            if shard.state == "quarantined" or self._closed:
                raise RuntimeError("shard queue is closed (shutdown or dead worker)")
            base, next_seq = self._wal_positions.get(topic_name, (0, 1))
            self._wal_positions[topic_name] = (base, next_seq + len(raws))
            for offset, raw in enumerate(raws):
                shard.pending.append(
                    (topic_name, raw, float(timestamps[offset]), next_seq + offset, session)
                )
            last_seq = next_seq + len(raws) - 1
            # One flush for everything pending: the sessioned records were
            # appended contiguously under this lock, so they share one
            # section (one child WAL frame) carrying their mark.
            self._flush_locked(shard)
        self._await_session_applied(shard, topic_name, last_seq, timeout)
        self._note_producer_mark(session_key, int(batch_seq))
        return len(raws)

    def _await_session_applied(
        self, shard: _ProcessShard, topic_name: str, last_seq: int, timeout: float
    ) -> None:
        """Block until the child has acked every record of ``topic_name``
        up to ``last_seq`` (i.e. appended them to its shard WAL)."""
        deadline = time.monotonic() + timeout
        while True:
            with shard.lock:
                if shard.state == "quarantined":
                    raise RuntimeError(
                        "shard queue is closed (shutdown or dead worker)"
                    )
                settled = True
                for record in shard.pending:
                    if record[0] == topic_name and record[3] <= last_seq:
                        settled = False
                        break
                if settled:
                    backlog = shard.unacked.get(topic_name)
                    if backlog and backlog[0][3] <= last_seq:
                        settled = False
                if not settled and shard.pending and shard.cmd_w is not None:
                    self._flush_locked(shard)  # e.g. a send raced a restart
            if settled:
                return
            if time.monotonic() >= deadline:
                with shard.lock:
                    backlog = shard.unacked.get(topic_name)
                    raise TimeoutError(
                        f"session batch for topic {topic_name!r} not applied "
                        f"within {timeout:.1f}s (shard {shard.index} "
                        f"state={shard.state} pending={len(shard.pending)} "
                        f"unacked={len(backlog) if backlog else 0} "
                        f"unacked_head={backlog[0][3] if backlog else None} "
                        f"in_flight={shard.in_flight} "
                        f"restarts={shard.stats.restarts} "
                        f"child_alive={shard.process.is_alive() if shard.process else None})"
                    )
            time.sleep(0.0005)

    def _note_producer_mark(self, session_key: str, batch_seq: int) -> None:
        with self._producer_marks_lock:
            if batch_seq > self._producer_marks.get(session_key, 0):
                self._producer_marks[session_key] = batch_seq

    def producer_marks(self) -> Dict[str, int]:
        """Per-producer dedup high-water marks (durable + this run's)."""
        with self._producer_marks_lock:
            return dict(self._producer_marks)

    def create_topic(self, topic_name: str):
        """Create ``topic_name`` in the parent mirror *and* its owning
        shard worker, so first-write-to-unseen-topic works on this backend.

        Idempotent and restart-safe: the parent mirror is created first,
        so a worker restarted mid-operation forks with the topic already
        present and its bootstrap re-registers ownership; the control
        reply is only bookkeeping confirmation.
        """
        if self._closed:
            raise RuntimeError("runtime is shut down")
        try:
            engine = self.service.topic(topic_name)
        except KeyError:
            engine = self.service.create_topic(topic_name)
        if topic_name in self._known_topics:
            return engine
        with self._control_lock:
            if topic_name in self._known_topics:
                return engine
            reply = self._control_roundtrip(
                topic_name,
                lambda token: {
                    "op": "create_topic",
                    "topic": topic_name,
                    "token": token,
                },
            )
            if reply.get("error"):
                raise RuntimeError(
                    f"shard worker failed to register topic {topic_name!r}: "
                    f"{reply['error']}"
                )
            self._known_topics.add(topic_name)
        return engine

    def shard_load(self, shard_index: int) -> int:
        """Records accepted for a shard's child but not yet acked by it."""
        shard = self._shards[shard_index]
        return shard.in_flight + len(shard.pending)

    def _backpressure(self, shard: _ProcessShard) -> None:
        while shard.in_flight + len(shard.pending) >= self._queue_capacity:
            if shard.state == "quarantined" or self._closed:
                raise RuntimeError("shard queue is closed (shutdown or dead worker)")
            time.sleep(0.0002)

    def _flush_locked(self, shard: _ProcessShard) -> None:
        """Frame and send the pending backlog (caller holds ``shard.lock``).

        Seqs are allocated under the same lock, so each topic's slice of
        the frame is seq-contiguous.  A send failure (dead or restarting
        child) leaves everything pending — the restart path flushes again.
        """
        if not shard.pending or shard.cmd_w is None:
            return
        groups: Dict[str, List[Tuple]] = {}
        for record in shard.pending:
            groups.setdefault(record[0], []).append(record)
        sections = [
            BatchSection(
                topic=topic_name,
                first_seq=records[0][3],
                timestamps=[record[2] for record in records],
                raws=[record[1] for record in records],
                marks=_section_marks(records),
            )
            for topic_name, records in groups.items()
        ]
        try:
            shard.cmd_w.send_bytes(_TAG_BATCH + encode_record_batch(sections))
        except (BrokenPipeError, OSError):
            return
        shard.in_flight += len(shard.pending)
        for topic_name, records in groups.items():
            shard.unacked.setdefault(topic_name, deque()).extend(records)
            if topic_name not in shard.stats.topics:
                shard.stats.topics.append(topic_name)
        shard.pending.clear()

    def _flusher_loop(self) -> None:
        while not self._stop_event.wait(self.max_batch_delay):
            for shard in self._shards:
                with shard.lock:
                    self._flush_locked(shard)

    # -- barrier operations --------------------------------------------- #
    def drain(self) -> None:
        """Block until every accepted record is applied in its child,
        every round committed, and the parent mirror is synced.

        Same contract as the thread backend's ``drain`` (flush +
        durability barrier; producers must have quiesced), plus the
        mirror sync that makes parent-side reads current.
        """
        with self._control_lock:
            self._drain_locked()

    def _drain_locked(self) -> None:
        while True:
            self._raise_on_dead_workers()
            if any(shard.state == "restarting" for shard in self._shards):
                time.sleep(0.001)
                continue
            for shard in self._shards:
                with shard.lock:
                    self._flush_locked(shard)
            if any(shard.in_flight > 0 or shard.pending for shard in self._shards):
                time.sleep(0.001)
                continue
            self._control_token += 1
            token = self._control_token
            if not all(
                self._send_control(shard, {"op": "drain", "token": token})
                for shard in self._shards
            ):
                time.sleep(0.005)
                continue
            synced = True
            for shard in self._shards:
                reply = self._await_control_reply(shard, token)
                if reply is None or not self._apply_live_reply(shard, reply):
                    synced = False  # died mid-drain; restart, then retry
                    break
            if synced:
                break
        if self.wal is not None:
            marks = self.producer_marks()
            if marks:
                # Orphan segments may carry marks no shard checkpoint
                # covers; persist to the root file (parent-owned) first.
                self.wal.record_producer_marks(marks)
            self.wal.truncate_orphans(
                self._wal_floors(),
                [self.wal.shard_directory(index) for index in range(self.n_shards)],
            )

    def _send_control(self, shard: _ProcessShard, control: Dict[str, object]) -> bool:
        with shard.lock:
            if shard.state != "running" or shard.cmd_w is None:
                return False
            try:
                shard.cmd_w.send_bytes(_TAG_CONTROL + pickle.dumps(control))
                return True
            except (BrokenPipeError, OSError):
                return False

    def _await_control_reply(self, shard: _ProcessShard, token: int):
        """Next control reply for ``token``; ``None`` when the child died.

        A reply whose token is stale (the parent abandoned that barrier
        attempt, e.g. over a leftover death marker) is NOT discarded if it
        came from the live incarnation: the child advanced its synced
        watermark when it built the payload, so dropping the increment
        would diverge the mirror.  It is applied here, then the wait
        continues.  Replies from dead incarnations ARE dropped — the
        restart forked the new child from the parent mirror *without*
        that increment, so applying it would diverge the other way
        (:meth:`_apply_live_reply` arbitrates under the shard lock).
        """
        while True:
            tag, payload = shard.control_replies.get()
            if tag == "died":
                return None
            if not isinstance(payload, dict):
                continue
            if payload.get("token") == token:
                return payload
            self._apply_live_reply(shard, payload)

    def _apply_live_reply(self, shard: _ProcessShard, reply: Dict[str, object]) -> bool:
        """Apply a control reply's sync increment iff its incarnation is
        still the live one; False means the child died and the caller
        must retry its barrier.

        The incarnation check and the apply share one ``shard.lock``
        acquisition, making them atomic against :meth:`_restart`'s fork
        (which bumps the incarnation under the same lock): either the
        increment lands before the fork (the new child inherits it) or
        the fork wins and the increment is dropped (the new child
        re-derives it from the WAL resync).
        """
        sync = reply if "topics" in reply else reply.get("sync")
        with shard.lock:
            if reply.get("incarnation") != shard.incarnation:
                return False
            if sync is not None:
                self._apply_sync_payload(shard, sync)
            return True

    def _apply_sync_payload(self, shard: _ProcessShard, payload: Dict[str, object]) -> None:
        """Catch the parent mirror up to a child's sync barrier."""
        for topic_name, entry in payload["topics"].items():
            engine = self.service.topic(topic_name)
            topic = engine.topic
            if topic.high_watermark != entry["from_id"]:
                raise RuntimeError(
                    f"mirror diverged for topic {topic_name!r}: parent holds "
                    f"{topic.high_watermark} records, child synced from "
                    f"{entry['from_id']}"
                )
            for record_id, template_id in entry["restamps"]:
                if template_id is not None:
                    topic.set_template(record_id, template_id)
            for raw, record_ts, template_id in entry["records"]:
                topic.append(raw, record_ts, template_id=template_id)
            # The mirror's topic hooks just replayed the child's aggregate
            # delta; its materialized analytics must now be bit-identical
            # to the child's (same bucket counters, first-seen minima and
            # sketch states), or local window queries would silently
            # answer from diverged state.
            child_digest = entry.get("analytics_digest")
            if child_digest is not None and topic.aggregates is not None:
                mirror_digest = topic.aggregates.digest()
                if mirror_digest != child_digest:
                    raise RuntimeError(
                        f"mirror aggregates diverged for topic {topic_name!r}: "
                        f"parent digest {mirror_digest:#010x}, child digest "
                        f"{child_digest:#010x}"
                    )
            if entry["model_json"] is not None:
                model = ParserModel.from_json(entry["model_json"])
                model.reserve_ids(entry["next_template_id"])
                matcher = engine.parser.build_matcher(model)
                with engine.swap_guard:
                    engine.parser.install_model(model, matcher=matcher)
                    engine.pipeline.attach_matcher(matcher)
                    engine.trained_watermark = entry["trained_watermark"]
                engine.internal_topic.publish_model(model)
            else:
                engine.trained_watermark = entry["trained_watermark"]
            scheduler = engine.scheduler
            counters = entry["scheduler"]
            scheduler._records_since_training = counters["records_since"]
            scheduler._last_training_time = counters["last_time"]
            scheduler._training_rounds = counters["rounds"]
            scheduler._incremental_rounds = counters["incremental"]
            scheduler._full_rounds = counters["full"]
            scheduler._last_mode = counters["last_mode"]
            if self.wal is not None and entry["captured"] > self.wal.captured().get(
                topic_name, 0
            ):
                self.wal.set_captured(topic_name, entry["captured"])
        shard.stats.rounds_dispatched += payload["stats"]["rounds_delta"]

    def drill_down(
        self,
        topic_name: str,
        start_time: float,
        end_time: float,
        template_id: Optional[int] = None,
        limit: int = 100,
    ) -> List[Dict[str, object]]:
        """Window drill-down answered from the parent's mirror.

        The mirror's materialized aggregates are current as of the last
        sync barrier (``drain()`` to force one), so this needs no child
        round-trip — the shipped aggregate deltas already landed here.
        Same row shape and ``seq = base + record_id + 1`` mapping as the
        thread backend's drill-down.
        """
        engine = self.service.topic(topic_name)
        base, _ = self._wal_positions.get(topic_name, (0, 1))
        if engine.topic.aggregates is not None:
            record_ids = engine.analytics.record_ids_between(
                start_time, end_time, template_id=template_id, limit=limit
            )
            records = [engine.topic.record(record_id) for record_id in record_ids]
        else:
            records = [
                record
                for record in engine.topic.records_between(start_time, end_time)
                if template_id is None or record.template_id == template_id
            ][:limit]
        rows: List[Dict[str, object]] = []
        for record in records:
            seq = base + record.record_id + 1
            rows.append(
                {
                    "seq": seq if seq >= 1 else None,
                    "record_id": record.record_id,
                    "timestamp": record.timestamp,
                    "template_id": record.template_id,
                    "raw": record.raw,
                }
            )
        return rows

    def _wal_floors(self) -> Dict[str, int]:
        """Same retained-versions floor rule as the thread backend, read
        from the children-written stores (stateless manifest reads)."""
        floors: Dict[str, int] = {}
        retain = self.service.config.wal_retain_versions
        captured = self.wal.captured()
        for topic_name in self.service.topic_names():
            engine = self.service.topic(topic_name)
            floor = captured.get(topic_name, 0)
            if engine.store is None:
                floors[topic_name] = 0
                continue
            current, versions = engine.store.current_and_versions()
            if current is None:
                floors[topic_name] = 0
                continue
            for entry in versions:
                if current - retain < entry.version <= current:
                    floor = min(floor, int(entry.metadata.get("wal_seq", 0)))
            floors[topic_name] = floor
        return floors

    def train_topic(
        self, topic_name: str, now: float, force_full: bool = False
    ) -> Optional[Dict[str, object]]:
        """Synchronous training round inside the owning child, mirrored
        back — the process twin of the thread backend's ``train_topic``."""
        self.service.topic(topic_name)
        with self._control_lock:
            reply = self._control_roundtrip(
                topic_name,
                lambda token: {
                    "op": "train",
                    "topic": topic_name,
                    "now": now,
                    "force_full": force_full,
                    "token": token,
                },
            )
            if reply["error"] is not None:
                raise RuntimeError(
                    f"training round for {topic_name!r} failed in worker: "
                    f"{reply['error']}"
                )
            return reply["info"]

    def rollback_model(self, topic_name: str):
        """WAL-aware hot rollback with the thread backend's crash ordering:
        watermark rewind (parent, durable) *before* the store pointer move
        (child).  Returns the restored ``ModelVersion``."""
        engine = self.service.topic(topic_name)
        with self._control_lock:
            prepare = self._control_roundtrip(
                topic_name,
                lambda token: {
                    "op": "rollback_prepare",
                    "topic": topic_name,
                    "token": token,
                },
            )
            self._raise_reply_error(prepare)
            rewind = prepare.get("rewind")
            if self.wal is not None and rewind is not None:
                self.wal.set_captured(topic_name, int(rewind))
            commit = self._control_roundtrip(
                topic_name,
                lambda token: {
                    "op": "rollback_commit",
                    "topic": topic_name,
                    "to_version": prepare["target_version"],
                    "rewind": rewind,
                    "token": token,
                },
            )
            self._raise_reply_error(commit)
            model = ParserModel.from_json(commit["model_json"])
            model.reserve_ids(commit["next_template_id"])
            matcher = engine.parser.build_matcher(model)
            with engine.swap_guard:
                engine.parser.install_model(model, matcher=matcher)
                engine.pipeline.attach_matcher(matcher)
                engine.trained_watermark = commit["trained_watermark"]
            engine.internal_topic.publish_model(model)
            return commit["version"]

    def _control_roundtrip(self, topic_name: str, build_control):
        """Drain-barrier + request/reply with the topic's child, retrying
        across child restarts (quarantine surfaces via the drain).

        The reply's sync increment (if any) is applied before returning.
        A retry can re-run the operation in the new incarnation — for
        ``train`` that may produce a duplicate store version (records and
        assignments stay correct); ``rollback_commit`` is idempotent via
        its explicit ``to_version``.
        """
        shard = self._shards[self.shard_of(topic_name)]
        while True:
            self._drain_locked()
            self._control_token += 1
            token = self._control_token
            if not self._send_control(shard, build_control(token)):
                time.sleep(0.005)
                continue
            reply = self._await_control_reply(shard, token)
            if reply is None or not self._apply_live_reply(shard, reply):
                continue  # died mid-op; the next drain waits out the restart
            return reply

    @staticmethod
    def _raise_reply_error(reply: Dict[str, object]) -> None:
        if reply.get("error") is None:
            return
        message = str(reply["error"])
        if reply.get("error_type") == "LookupError":
            raise LookupError(message)
        raise RuntimeError(message)

    # -- shutdown / reporting ------------------------------------------- #
    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting records, optionally drain, stop the children."""
        if self._closed:
            return
        self._closed = True
        try:
            if drain:
                self.drain()
        finally:
            self._stop_event.set()
            for shard in self._shards:
                self._stop_sent[shard.index] = True
                with shard.lock:
                    if shard.cmd_w is not None:
                        try:
                            shard.cmd_w.send_bytes(
                                _TAG_CONTROL + pickle.dumps({"op": "stop"})
                            )
                        except (BrokenPipeError, OSError):
                            pass
            for thread in self._supervisors:
                thread.join(timeout=30.0)
            self._flusher.join(timeout=5.0)
            for shard in self._shards:
                process = shard.process
                if process is not None:
                    process.join(timeout=10.0)
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=5.0)
                for conn in (shard.cmd_w, shard.resp_r):
                    if conn is not None:
                        try:
                            conn.close()
                        except OSError:
                            pass
            if self.wal is not None:
                self.wal.close()

    def _raise_on_dead_workers(self) -> None:
        with self._errors_lock:
            failures = dict(self._worker_failures)
        if failures:
            details = "; ".join(
                f"shard {index}: {info.message}" for index, info in sorted(failures.items())
            )
            raise RuntimeError(
                f"shard worker died ({details}); full tracebacks in runtime.errors"
            )

    def _record_error(self, message: str) -> None:
        with self._errors_lock:
            self._errors.append(message)

    @property
    def errors(self) -> List[str]:
        """Errors recorded by workers and training rounds (empty when healthy)."""
        with self._errors_lock:
            return list(self._errors)

    def stats(self) -> Dict[str, object]:
        """Runtime-wide and per-shard operational counters (same shape as
        the thread backend, plus each shard's worker ``pid``)."""
        with self._errors_lock:
            failures = {
                index: info.message for index, info in self._worker_failures.items()
            }
        shards = []
        for shard in self._shards:
            stats = shard.stats
            shards.append(
                {
                    "shard": shard.index,
                    "state": shard.state,
                    "pid": shard.process.pid if shard.process is not None else None,
                    "ingested": stats.ingested,
                    "batches": stats.batches,
                    "largest_batch": stats.largest_batch,
                    "mean_batch_size": round(stats.mean_batch_size, 2),
                    "rounds_dispatched": stats.rounds_dispatched,
                    "restarts": stats.restarts,
                    "last_failure": failures.get(shard.index),
                    "queue_depth": len(shard.pending) + shard.in_flight,
                    "topics": list(stats.topics),
                }
            )
        return {
            "backend": self.backend,
            "n_shards": self.n_shards,
            "micro_batch_size": self.micro_batch_size,
            "max_batch_delay": self.max_batch_delay,
            "ingested": sum(s.stats.ingested for s in self._shards),
            "batches": sum(s.stats.batches for s in self._shards),
            "rounds_dispatched": sum(s.stats.rounds_dispatched for s in self._shards),
            "restarts": sum(s.stats.restarts for s in self._shards),
            "degraded_shards": [
                shard.index for shard in self._shards if shard.state == "quarantined"
            ],
            "supervisor": {
                "max_attempts": self._restart_policy.max_attempts,
                "backoff": self._restart_policy.base_delay,
                "backoff_max": self._restart_policy.max_delay,
                "deadline": self._restart_policy.deadline,
            },
            "n_errors": len(self.errors),
            "wal": (
                {
                    "sync_mode": self.wal.sync_mode,
                    "segment_bytes": self.wal.segment_bytes,
                    "captured": self.wal.captured(),
                }
                if self.wal is not None
                else None
            ),
            "shards": shards,
        }
