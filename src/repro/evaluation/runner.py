"""Benchmark runner: run any parser on any dataset and measure it.

Two runner flavours share the :class:`EvaluationRun` result type:

* :class:`ByteBrainRunner` drives the paper's method (optionally an ablation
  variant) through the full train-then-match pipeline and groups results at
  a saturation threshold, exactly the way the cloud service serves queries.
* :class:`BaselineRunner` drives any baseline implementing the
  :class:`repro.baselines.base.BaselineParser` interface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import ByteBrainConfig
from repro.core.parser import ByteBrainParser
from repro.datasets.synthetic import LogDataset
from repro.evaluation.metrics import (
    f1_grouping_accuracy,
    grouping_accuracy,
    parsing_accuracy,
    throughput,
)

__all__ = [
    "DEFAULT_QUERY_THRESHOLD",
    "EvaluationRun",
    "ByteBrainRunner",
    "BaselineRunner",
    "evaluate_parser",
]

#: Saturation threshold used by default when reporting ByteBrain's accuracy.
#: The service default sits in the middle of the stable range of Fig. 11.
DEFAULT_QUERY_THRESHOLD = 0.6


@dataclass
class EvaluationRun:
    """Measured outcome of one (parser, dataset) run."""

    parser_name: str
    dataset_name: str
    dataset_variant: str
    n_logs: int
    grouping_accuracy: float
    f1_grouping_accuracy: float
    parsing_accuracy: float
    seconds: float
    throughput: float
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flat dict representation for report tables."""
        row: Dict[str, object] = {
            "parser": self.parser_name,
            "dataset": self.dataset_name,
            "variant": self.dataset_variant,
            "n_logs": self.n_logs,
            "GA": round(self.grouping_accuracy, 4),
            "FGA": round(self.f1_grouping_accuracy, 4),
            "PA": round(self.parsing_accuracy, 4),
            "seconds": round(self.seconds, 4),
            "throughput": round(self.throughput, 1),
        }
        row.update({key: round(value, 4) for key, value in self.extra.items()})
        return row


class ByteBrainRunner:
    """Runs ByteBrain (or one of its ablation variants) on a dataset."""

    def __init__(
        self,
        config: Optional[ByteBrainConfig] = None,
        name: str = "ByteBrain",
        query_threshold: float = DEFAULT_QUERY_THRESHOLD,
    ) -> None:
        self.config = config or ByteBrainConfig()
        self.name = name
        self.query_threshold = query_threshold

    def run(self, dataset: LogDataset) -> EvaluationRun:
        """Train on the corpus, match every record and score the grouping."""
        parser = ByteBrainParser(self.config)
        start = time.perf_counter()
        corpus_result = parser.parse_corpus(dataset.lines)
        seconds = time.perf_counter() - start

        matched_ids = corpus_result.template_ids()
        resolved_ids = [
            parser.model.resolve_threshold(template_id, self.query_threshold).template_id
            for template_id in matched_ids
        ]
        ga = grouping_accuracy(resolved_ids, dataset.ground_truth)
        fga = f1_grouping_accuracy(resolved_ids, dataset.ground_truth)
        pa = parsing_accuracy(resolved_ids, dataset.ground_truth)
        return EvaluationRun(
            parser_name=self.name,
            dataset_name=dataset.name,
            dataset_variant=dataset.variant,
            n_logs=dataset.n_logs,
            grouping_accuracy=ga,
            f1_grouping_accuracy=fga,
            parsing_accuracy=pa,
            seconds=seconds,
            throughput=throughput(dataset.n_logs, seconds),
            extra={
                "train_seconds": corpus_result.train_seconds,
                "match_seconds": corpus_result.match_seconds,
                "n_templates": float(len(parser.model)),
                "model_size_bytes": float(parser.model_size_bytes()),
            },
        )


class BaselineRunner:
    """Runs a baseline parser (anything with ``name`` and ``parse``)."""

    def __init__(self, parser_factory, name: Optional[str] = None) -> None:
        """``parser_factory`` is a zero-argument callable returning a fresh parser."""
        self.parser_factory = parser_factory
        probe = parser_factory()
        self.name = name or getattr(probe, "name", probe.__class__.__name__)

    def run(self, dataset: LogDataset) -> EvaluationRun:
        """Parse the corpus with a fresh baseline instance and score it."""
        parser = self.parser_factory()
        start = time.perf_counter()
        assignments = parser.parse(dataset.lines)
        seconds = time.perf_counter() - start
        ga = grouping_accuracy(assignments, dataset.ground_truth)
        fga = f1_grouping_accuracy(assignments, dataset.ground_truth)
        pa = parsing_accuracy(assignments, dataset.ground_truth)
        return EvaluationRun(
            parser_name=self.name,
            dataset_name=dataset.name,
            dataset_variant=dataset.variant,
            n_logs=dataset.n_logs,
            grouping_accuracy=ga,
            f1_grouping_accuracy=fga,
            parsing_accuracy=pa,
            seconds=seconds,
            throughput=throughput(dataset.n_logs, seconds),
            extra={"n_templates": float(len(set(assignments)))},
        )


def evaluate_parser(runner, datasets: Sequence[LogDataset]) -> List[EvaluationRun]:
    """Run one runner across many datasets."""
    return [runner.run(dataset) for dataset in datasets]
