"""Fig. 7 — running time scales (near-)linearly with the number of logs.

Reproduced by running ByteBrain's full train-plus-match pipeline on growing
prefixes of two large corpora and checking that the time-per-log does not
grow with corpus size (linear scaling implies a flat per-log cost).
"""

from __future__ import annotations

from repro.core.parser import ByteBrainParser
from repro.evaluation.reporting import banner, format_table

PREFIX_SIZES = [5_000, 10_000, 20_000, 40_000]
FIG7_DATASETS = ["Spark", "Thunderbird"]


def _run(datasets):
    rows = []
    for name in FIG7_DATASETS:
        corpus = datasets.get(name, "loghub2")
        for size in PREFIX_SIZES:
            if size > corpus.n_logs:
                continue
            subset = corpus.prefix(size)
            parser = ByteBrainParser()
            result = parser.parse_corpus(subset.lines)
            rows.append(
                {
                    "dataset": name,
                    "n_logs": size,
                    "seconds": round(result.total_seconds, 3),
                    "logs_per_second": round(result.throughput),
                    "microseconds_per_log": round(1e6 * result.total_seconds / size, 1),
                }
            )
    return rows


def test_fig07_running_time_scales_linearly(benchmark, datasets, report):
    rows = benchmark.pedantic(_run, args=(datasets,), rounds=1, iterations=1)
    text = banner("Fig. 7 — running time vs number of logs (ByteBrain)") + "\n"
    text += format_table(rows)
    report("fig07_scalability", text)

    for name in FIG7_DATASETS:
        series = [row for row in rows if row["dataset"] == name]
        if len(series) < 2:
            continue
        first, last = series[0], series[-1]
        size_ratio = last["n_logs"] / first["n_logs"]
        time_ratio = last["seconds"] / max(first["seconds"], 1e-9)
        # Near-linear: total time grows no faster than ~1.8x the size growth
        # (sub-linear is fine and expected thanks to deduplication).
        assert time_ratio <= 1.8 * size_ratio, (name, time_ratio, size_ratio)
