"""Fig. 6 — throughput comparison on LogHub-2.0, including ByteBrain variants.

The paper's heatmap reports logs/second for every method and dataset plus two
ByteBrain execution modes: *Sequential* (single core) and *w/o JIT* (pure
Python inner loops).  Reproduced on four representative large corpora; the
paper's headline claims are (a) ByteBrain is the fastest method overall and
(b) even without JIT/parallelism it stays ahead of the baselines by a wide
margin.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import run_baseline, run_bytebrain
from benchmarks.conftest import BASELINE_SAMPLE_LINES
from repro.core.config import ByteBrainConfig
from repro.evaluation.reporting import banner, format_matrix

FIG6_DATASETS = ["BGL", "HDFS", "Spark", "Thunderbird"]
#: Baselines shown in the heatmap reproduction (the full 16-way comparison is
#: produced by the Table 3 / Fig. 2 benches; these are the fast classics plus
#: the learning-based proxies the paper calls out).
FIG6_BASELINES = ["AEL", "Drain", "IPLoM", "LogCluster", "Spell", "UniParser", "LogPPT", "LILAC"]


def _run(datasets):
    corpora = {name: datasets.get(name, "loghub2") for name in FIG6_DATASETS}
    matrix = {}
    configs = {
        "ByteBrain": ByteBrainConfig(parallelism=4),
        "ByteBrain Sequential": ByteBrainConfig(parallelism=1),
        "ByteBrain w/o JIT": ByteBrainConfig(parallelism=1, jit_enabled=False),
    }
    for label, config in configs.items():
        matrix[label] = {
            name: round(run_bytebrain(corpus, config=config, name=label).throughput)
            for name, corpus in corpora.items()
        }
    for baseline in FIG6_BASELINES:
        matrix[baseline] = {
            name: round(run_baseline(baseline, corpus, max_lines=BASELINE_SAMPLE_LINES).throughput)
            for name, corpus in corpora.items()
        }
    return matrix


def test_fig06_throughput_comparison(benchmark, datasets, report):
    matrix = benchmark.pedantic(_run, args=(datasets,), rounds=1, iterations=1)
    averages = {method: float(np.mean(list(row.values()))) for method, row in matrix.items()}
    for method in matrix:
        matrix[method]["average"] = round(averages[method])

    text = banner("Fig. 6 — throughput (logs/s) on LogHub-2.0") + "\n"
    text += format_matrix(matrix, row_label="method")
    text += (
        "\n\npaper reference: ByteBrain 229k avg (519k on Thunderbird), fastest baseline "
        "LogCluster 23.6k, Drain 8.85k, LILAC 4.3k logs/s"
    )
    report("fig06_throughput", text)

    baseline_best = max(averages[name] for name in FIG6_BASELINES)
    # Paper claim shapes: ByteBrain (full) is the fastest method overall, and
    # the learning-based methods are 1-2 orders of magnitude slower.
    assert averages["ByteBrain"] >= baseline_best
    assert averages["ByteBrain"] > 10 * averages["LILAC"]
    assert averages["ByteBrain"] > 10 * averages["LogPPT"]
    # Disabling the vectorised kernels costs throughput but stays usable.
    assert averages["ByteBrain"] >= averages["ByteBrain w/o JIT"]
