"""Parallel execution helpers (paper §3 "Parallel", §5.5.2).

The paper parallelises per-group training and per-log matching across a
small number of cores (1–5 in production).  Here the unit of parallelism is
a thread pool: the heavy inner loops are NumPy kernels that release the GIL,
so threads give a realistic speedup while keeping the in-process service
simple.  ``parallelism == 1`` reproduces *ByteBrain Sequential*.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

__all__ = ["map_parallel", "chunk"]

T = TypeVar("T")
R = TypeVar("R")


def map_parallel(fn: Callable[[T], R], items: Sequence[T], parallelism: int = 1) -> List[R]:
    """Apply ``fn`` to every item, optionally across a thread pool.

    Results are returned in input order regardless of completion order.
    """
    if parallelism <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(parallelism, len(items))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def chunk(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-equal parts."""
    if n_chunks <= 1 or len(items) <= 1:
        return [list(items)]
    n_chunks = min(n_chunks, len(items))
    size, remainder = divmod(len(items), n_chunks)
    chunks: List[List[T]] = []
    start = 0
    for index in range(n_chunks):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks
