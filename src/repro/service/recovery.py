"""Crash recovery: rebuild a sharded service from snapshots + WAL replay.

:meth:`RecoveredRuntime.open` restores everything a crashed
:class:`~repro.service.runtime.ShardedRuntime` had acknowledged:

1. **Snapshots** — for every topic directory under ``store_dir``, load the
   model version the store's *current* pointer names and install it into a
   fresh :class:`~repro.service.engine.TopicEngine`.  The version's
   ``wal_seq`` metadata (written by the runtime at persist time) says
   which WAL sequence numbers the snapshot has captured.
2. **Replay** — read every WAL segment (CRCs verified, torn tails
   dropped and reported), sort each topic's records by sequence number,
   skip those the snapshot captured, and push the rest through the
   batched ingest path (``ingest_batch_fast``) in submission order.  The
   replayed records become the pending training delta, exactly as if they
   had just been ingested.
3. **Resume** — construct a new runtime over the same WAL directory with
   per-topic sequence positions carried over, so post-recovery appends
   continue the sequence and snapshot watermarks keep lining up with
   topic record ids.

Exactly-once accounting: an acknowledged record is either *captured* (its
seq is at or below the current snapshot's ``wal_seq`` — its template
knowledge is inside the loaded model) or *replayed* (re-ingested into
topic storage), never both and never neither.  Topics that crashed before
their first snapshot replay from sequence 0.  Records whose ``submit``
never returned (a torn final frame) were never acknowledged and may be
lost — that is the WAL contract, not a violation of it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.config import ByteBrainConfig
from repro.service.service import LogParsingService
from repro.service.wal import WriteAheadLog

__all__ = ["TopicRecovery", "RecoveryReport", "RecoveredRuntime"]

#: Replay pushes records through the batched match engine in chunks of
#: this many records — big enough to amortise, small enough to bound the
#: working set.
_REPLAY_BATCH = 1024


@dataclass
class TopicRecovery:
    """What recovery did for one topic."""

    topic: str
    #: Store version restored (None: topic had no snapshot yet).
    model_version: Optional[int]
    #: WAL seq the restored snapshot captures (0 without a snapshot).
    captured_seq: int
    #: Records re-ingested from the WAL (those past ``captured_seq``).
    replayed_records: int
    #: Highest seq seen for the topic across snapshots + WAL.
    last_seq: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "topic": self.topic,
            "model_version": self.model_version,
            "captured_seq": self.captured_seq,
            "replayed_records": self.replayed_records,
            "last_seq": self.last_seq,
        }


@dataclass
class RecoveryReport:
    """Aggregate result of one :meth:`RecoveredRuntime.open` call."""

    topics: List[TopicRecovery] = field(default_factory=list)
    segments_read: int = 0
    frames_read: int = 0
    #: Segments ending in a torn (partially written) final frame — the
    #: normal signature of a crash mid-append; the torn frame's records
    #: were never acknowledged.
    torn_segments: int = 0
    #: Non-fatal irregularities (sequence gaps, unknown-topic records).
    warnings: List[str] = field(default_factory=list)
    #: Idempotent-producer dedup high-water marks restored from frame-
    #: embedded marks (version-2 segments) and sessions.json checkpoints.
    producer_marks: Dict[str, int] = field(default_factory=dict)

    @property
    def replayed_records(self) -> int:
        return sum(t.replayed_records for t in self.topics)

    def to_dict(self) -> Dict[str, object]:
        return {
            "topics": [t.to_dict() for t in self.topics],
            "segments_read": self.segments_read,
            "frames_read": self.frames_read,
            "torn_segments": self.torn_segments,
            "replayed_records": self.replayed_records,
            "warnings": list(self.warnings),
            "producer_marks": dict(self.producer_marks),
        }


class RecoveredRuntime:
    """A service + runtime restored from ``store_dir`` and ``wal_dir``.

    Context-manager friendly::

        with RecoveredRuntime.open(store_dir, wal_dir) as recovered:
            recovered.runtime.submit(...)

    ``recovered.service`` is live immediately (match/query work off the
    restored models); ``recovered.runtime`` is a fresh
    :class:`~repro.service.runtime.ShardedRuntime` appending to the same
    WAL (``None`` when opened with ``start_runtime=False`` for read-only
    inspection, e.g. ``cli recover``).
    """

    def __init__(self, service: LogParsingService, runtime, report: RecoveryReport) -> None:
        self.service = service
        self.runtime = runtime
        self.report = report

    @classmethod
    def open(
        cls,
        store_dir: os.PathLike,
        wal_dir: os.PathLike,
        config: Optional[ByteBrainConfig] = None,
        scheduler_policy=None,
        start_runtime: bool = True,
        **runtime_kwargs,
    ) -> "RecoveredRuntime":
        """Restore service state from a model store root and a WAL root.

        ``store_dir`` is the ``store_root`` the crashed service used (one
        subdirectory per topic); ``wal_dir`` the crashed runtime's WAL
        root.  Extra keyword arguments go to the new
        :class:`~repro.service.runtime.ShardedRuntime` (shard count may
        differ from the crashed run — replay reads every shard directory
        regardless).
        """
        config = config or ByteBrainConfig()
        store_root = Path(store_dir)
        service = LogParsingService(
            config=config, scheduler_policy=scheduler_policy, store_root=store_root
        )
        report = RecoveryReport()

        # Scan the log first: it knows topics that never reached a snapshot.
        wal = WriteAheadLog(
            wal_dir, sync_mode=config.wal_sync_mode, segment_bytes=config.wal_segment_bytes
        )
        records_by_topic, segment_infos = wal.replay_records()
        report.segments_read = len(segment_infos)
        report.frames_read = sum(info.n_frames for info in segment_infos)
        report.torn_segments = sum(1 for info in segment_infos if info.torn_tail)

        # Restore idempotent-producer dedup state: max-merge the marks
        # embedded in the replayed frames with the sessions.json
        # checkpoints (which outlive truncated segments), and checkpoint
        # the merge to the root file *before* the runtime exists — the
        # runtime seeds its in-memory marks from the WAL, and any later
        # truncation re-checkpoints from there.
        marks: Dict[str, int] = wal.producer_marks()
        for info in segment_infos:
            for key, seq in info.producer_marks.items():
                if seq > marks.get(key, 0):
                    marks[key] = seq
        if marks:
            wal.record_producer_marks(marks)
        report.producer_marks = dict(marks)

        topic_names = sorted(
            {p.parent.name for p in store_root.glob("*/manifest.json")}
            | set(records_by_topic)
        )
        low_water_marks = wal.captured()
        wal_positions: Dict[str, tuple] = {}
        for name in topic_names:
            engine = service.create_topic(name)
            captured_seq = 0
            model_version: Optional[int] = None
            if engine.store is not None and len(engine.store):
                current = engine.store.current_version()
                if current is not None:
                    engine.restore_snapshot(engine.store.load(current.version))
                    model_version = current.version
                    # The snapshot's own wal_seq is authoritative; the
                    # persisted low-water mark is a safe lower bound for
                    # versions saved without one (e.g. a round persisted
                    # through the synchronous façade): watermark.json only
                    # ever advances after a snapshot captured those seqs,
                    # and WAL-aware rollback rewinds it before moving the
                    # store pointer.  Without it, such a version would
                    # replay the entire retained log on top of a model
                    # that already contains it.
                    captured_seq = max(
                        int(current.metadata.get("wal_seq", 0)),
                        int(low_water_marks.get(name, 0)),
                    )

            replayed = 0
            last_seq = captured_seq
            pending = [r for r in records_by_topic.get(name, []) if r.seq > captured_seq]
            if pending:
                expected = captured_seq + 1
                for record in pending:
                    if record.seq != expected:
                        report.warnings.append(
                            f"topic {name!r}: sequence gap — expected seq {expected}, "
                            f"found {record.seq} (records between were never logged)"
                        )
                    expected = record.seq + 1
                for start in range(0, len(pending), _REPLAY_BATCH):
                    chunk = pending[start : start + _REPLAY_BATCH]
                    engine.ingest_batch_fast(
                        [r.raw for r in chunk],
                        now=chunk[-1].timestamp,
                        timestamps=[r.timestamp for r in chunk],
                    )
                replayed = len(pending)
                last_seq = pending[-1].seq
            # Topic record id i <-> seq captured_seq + i + 1: the replayed
            # suffix starts at record id 0, so the new runtime's seq base
            # is the captured watermark.
            wal_positions[name] = (captured_seq, max(last_seq, captured_seq) + 1)
            report.topics.append(
                TopicRecovery(
                    topic=name,
                    model_version=model_version,
                    captured_seq=captured_seq,
                    replayed_records=replayed,
                    last_seq=last_seq,
                )
            )

        runtime = None
        if start_runtime:
            runtime = service.sharded_runtime(
                wal=wal, wal_positions=wal_positions, **runtime_kwargs
            )
        else:
            wal.close()
        return cls(service=service, runtime=runtime, report=report)

    def __enter__(self) -> "RecoveredRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.runtime is not None:
            self.runtime.shutdown(drain=exc_type is None)
