"""Hierarchical clustering tree (paper §4.3).

Each initial group becomes the root of a clustering tree.  Nodes are split by
the single clustering process (:mod:`repro.core.clustering`) until their
saturation reaches the target (1.0 by default) or an early-stop rule fires.
Deeper nodes carry more precise templates; the tree is what makes query-time
precision adjustment possible without re-parsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import WILDCARD, ByteBrainConfig
from repro.core.clustering import split_node
from repro.core.saturation import profile_positions, saturation_from_profile

__all__ = ["TreeNode", "ClusterTree", "build_tree", "extract_template"]


def extract_template(token_lists: Sequence[Sequence[str]], wildcard: str = WILDCARD) -> Tuple[str, ...]:
    """Template of a set of equal-length token sequences.

    A position keeps its token if every sequence agrees on it; otherwise it
    becomes the wildcard.
    """
    if not token_lists:
        return ()
    first = list(token_lists[0])
    template = first[:]
    for tokens in token_lists[1:]:
        for pos, token in enumerate(tokens):
            if template[pos] != token:
                template[pos] = wildcard
    return tuple(template)


@dataclass
class TreeNode:
    """One node of a clustering tree (== one log template).

    Attributes
    ----------
    node_id:
        Identifier local to the tree (the trainer later assigns global
        template ids).
    parent_id:
        ``None`` for the root.
    member_rows:
        Indices of the group's unique records that belong to this node.
    saturation:
        Saturation score, made monotonically non-decreasing along every
        root-to-leaf path (the paper states the score strictly increases
        with depth; we clamp children to at least their parent's score so
        query-time ancestor traversal is well defined).
    template:
        Tuple of tokens with wildcards at variable positions.
    depth:
        Root is depth 0.
    weight:
        Total occurrence count (deduplication counts) of the node's members.
    """

    node_id: int
    parent_id: Optional[int]
    member_rows: List[int]
    saturation: float
    template: Tuple[str, ...]
    depth: int
    weight: float
    children_ids: List[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children_ids

    @property
    def is_root(self) -> bool:
        """True for the root of its tree."""
        return self.parent_id is None


@dataclass
class ClusterTree:
    """A full clustering tree for one initial group.

    ``member_rows`` maps the tree's *local* row indices (used in every
    node's ``member_rows`` list) back to the global unique-record indices of
    the training batch.
    """

    nodes: Dict[int, TreeNode]
    root_id: int
    group_key: Tuple[int, Tuple[str, ...]]
    member_rows: List[int] = field(default_factory=list)

    def node(self, node_id: int) -> TreeNode:
        """Look up a node by its (tree-local) id."""
        return self.nodes[node_id]

    @property
    def n_nodes(self) -> int:
        """Total number of nodes (templates) in the tree."""
        return len(self.nodes)

    @property
    def depth(self) -> int:
        """Maximum node depth."""
        return max(node.depth for node in self.nodes.values())

    def leaves(self) -> List[TreeNode]:
        """All leaf nodes (the most precise templates)."""
        return [node for node in self.nodes.values() if node.is_leaf]

    def ancestors(self, node_id: int) -> List[TreeNode]:
        """Ancestors of a node from its parent up to the root."""
        chain: List[TreeNode] = []
        current = self.nodes[node_id]
        while current.parent_id is not None:
            current = self.nodes[current.parent_id]
            chain.append(current)
        return chain

    def leaf_assignment(self) -> Dict[int, int]:
        """Map each member row to the deepest (leaf) node containing it."""
        assignment: Dict[int, int] = {}
        for node in self.nodes.values():
            if node.is_leaf:
                for row in node.member_rows:
                    assignment[row] = node.node_id
        return assignment


def build_tree(
    tokens: Sequence[Tuple[str, ...]],
    codes: np.ndarray,
    weights: np.ndarray,
    member_rows: Sequence[int],
    config: ByteBrainConfig,
    rng: np.random.Generator,
    group_key: Tuple[int, Tuple[str, ...]],
) -> ClusterTree:
    """Build the clustering tree for one initial group.

    Parameters
    ----------
    tokens:
        Token tuples of every unique record in the *whole* training batch
        (indexed by row, shared across groups).
    codes:
        Encoded token matrix for this group's rows, aligned with ``tokens``
        via ``member_rows`` (``codes[i]`` encodes ``tokens[member_rows[i]]``
        is *not* the layout — see note below).
    weights:
        Occurrence counts aligned with ``codes`` rows.
    member_rows:
        For each row of ``codes``, the index of the corresponding record in
        ``tokens``.
    config, rng:
        Algorithm configuration and the shared random generator.
    group_key:
        The initial-group key (token count, prefix), stored on the tree.

    Notes
    -----
    ``codes``/``weights`` are *local* to the group (row ``i`` of ``codes``
    corresponds to global record ``member_rows[i]``); the clustering operates
    on local row indices throughout.
    """
    n_rows = codes.shape[0]
    local_rows = list(range(n_rows))

    def node_tokens(rows: Sequence[int]) -> List[Tuple[str, ...]]:
        return [tokens[member_rows[row]] for row in rows]

    def node_saturation(rows: Sequence[int]) -> float:
        return saturation_from_profile(
            profile_positions(codes, rows, weights=weights),
            use_variable_saturation=config.use_variable_saturation,
            use_confidence_factor=config.use_confidence_factor,
        )

    nodes: Dict[int, TreeNode] = {}
    next_id = 0

    def make_node(rows: List[int], parent_id: Optional[int], depth: int, saturation: float) -> TreeNode:
        nonlocal next_id
        node = TreeNode(
            node_id=next_id,
            parent_id=parent_id,
            member_rows=rows,
            saturation=saturation,
            template=extract_template(node_tokens(rows)),
            depth=depth,
            weight=float(weights[np.asarray(rows, dtype=np.intp)].sum()) if rows else 0.0,
        )
        nodes[node.node_id] = node
        next_id += 1
        return node

    root_saturation = node_saturation(local_rows)
    root = make_node(local_rows, parent_id=None, depth=0, saturation=root_saturation)

    frontier: List[int] = [root.node_id]
    while frontier:
        node_id = frontier.pop()
        node = nodes[node_id]
        if node.saturation >= config.saturation_target - 1e-12:
            continue
        if node.depth >= config.max_tree_depth:
            continue
        if len(node.member_rows) <= 1:
            continue
        outcome = split_node(
            codes,
            weights,
            node.member_rows,
            config,
            rng,
            parent_saturation=node.saturation,
        )
        if outcome.is_leaf:
            continue
        for child_rows in outcome.children:
            raw = node_saturation(child_rows)
            # Enforce the paper's invariant that saturation never decreases
            # along a root-to-leaf path.
            child_saturation = max(raw, node.saturation)
            child = make_node(child_rows, parent_id=node.node_id, depth=node.depth + 1, saturation=child_saturation)
            node.children_ids.append(child.node_id)
            if len(child_rows) < len(node.member_rows):
                frontier.append(child.node_id)

    return ClusterTree(
        nodes=nodes,
        root_id=root.node_id,
        group_key=group_key,
        member_rows=list(member_rows),
    )
