"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml`` (name, version,
dependencies, the src-layout package mapping the CI ``package`` job relies
on); this file exists so the package can be installed in environments
without the ``wheel`` package (offline/dev containers) via
``pip install -e . --no-use-pep517`` or ``python setup.py develop``.
"""

from setuptools import setup

setup()
