"""Token encoding: 64-bit hash encoding and ordinal encoding (paper §4.1.4).

The paper encodes tokens into numeric vectors so the clustering inner loops
operate on integers instead of strings.

* **Hash encoding** (the paper's choice) maps every token to a deterministic
  64-bit integer.  No token→id dictionary has to be stored or shipped, the
  encoder is embarrassingly parallel, and the collision probability is
  negligible (Eq. 1 — the birthday bound gives ~2.7e-6 for ten million
  distinct tokens).
* **Ordinal encoding** is kept as the ablation / storage-cost comparison
  (Fig. 10): it assigns consecutive ids but requires persisting the full
  dictionary, whose size grows with the vocabulary.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence

import numpy as np

from repro.core.hashing import encode_unique_batch, hash_token, hash_tokens

__all__ = [
    "TokenEncoder",
    "HashEncoder",
    "OrdinalEncoder",
    "hash_token",
    "collision_probability",
    "make_encoder",
]


def collision_probability(n_distinct_tokens: int, bits: int = 64) -> float:
    """Birthday-bound collision probability for ``n`` distinct tokens (Eq. 1)."""
    if n_distinct_tokens < 2:
        return 0.0
    n = float(n_distinct_tokens)
    space = float(2**bits)
    exponent = -(n * (n - 1.0)) / (2.0 * space)
    return 1.0 - math.exp(exponent)


class TokenEncoder:
    """Common interface of the two encoders."""

    name = "base"

    def encode_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Encode one token sequence into a 1-D ``uint64`` array."""
        raise NotImplementedError

    def encode_batch(self, token_lists: Sequence[Sequence[str]]) -> List[np.ndarray]:
        """Encode many token sequences."""
        return [self.encode_tokens(tokens) for tokens in token_lists]

    def dictionary_size_bytes(self) -> int:
        """Bytes required to persist the encoder's state alongside the model."""
        raise NotImplementedError


class HashEncoder(TokenEncoder):
    """Stateless 64-bit hash encoding (the paper's method).

    All instances share the process-wide token-hash cache of
    :mod:`repro.core.hashing`, so training, re-training and online matching
    each pay blake2b at most once per distinct token.
    """

    name = "hash"

    def encode_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        return hash_tokens(tokens)

    def encode_batch(self, token_lists: Sequence[Sequence[str]]) -> List[np.ndarray]:
        """Encode a corpus, hashing each distinct token exactly once."""
        return encode_unique_batch(token_lists)

    def dictionary_size_bytes(self) -> int:
        """Hash encoding stores no dictionary at all."""
        return 0


class OrdinalEncoder(TokenEncoder):
    """Dictionary-based encoding kept for the ablation and Fig. 10.

    Every distinct token receives a consecutive integer id; the token→id
    mapping must be persisted with the model, which is exactly the storage
    cost the paper's hash encoding removes.
    """

    name = "ordinal"

    def __init__(self) -> None:
        self.vocabulary: Dict[str, int] = {}

    def encode_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        vocab = self.vocabulary
        values = np.empty(len(tokens), dtype=np.uint64)
        for i, token in enumerate(tokens):
            idx = vocab.get(token)
            if idx is None:
                idx = len(vocab)
                vocab[token] = idx
            values[i] = idx
        return values

    def dictionary_size_bytes(self) -> int:
        """Size of the serialised token→id dictionary (JSON, as a proxy)."""
        if not self.vocabulary:
            return 2
        payload = json.dumps(self.vocabulary, ensure_ascii=False)
        return len(payload.encode("utf-8"))

    def vocabulary_size(self) -> int:
        """Number of distinct tokens seen so far."""
        return len(self.vocabulary)


def make_encoder(kind: str) -> TokenEncoder:
    """Factory used by the trainer: ``"hash"`` or ``"ordinal"``."""
    if kind == "hash":
        return HashEncoder()
    if kind == "ordinal":
        return OrdinalEncoder()
    raise ValueError(f"unknown encoding kind {kind!r}")
