"""Quickstart: train ByteBrain on a log corpus, match new logs, adjust precision.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ByteBrainConfig, ByteBrainParser, generate_dataset


def main() -> None:
    # 1. Get a corpus.  Here we use the synthetic HDFS benchmark corpus; in a
    #    real deployment these would be the raw lines of one log topic.
    dataset = generate_dataset("HDFS", variant="loghub")
    print(f"corpus: {dataset.name}, {dataset.n_logs} lines, {dataset.n_templates} true templates")
    print("sample line:", dataset.lines[0])

    # 2. Train the parser (the offline phase of the paper: preprocessing,
    #    deduplication, initial grouping, hierarchical clustering).
    parser = ByteBrainParser(ByteBrainConfig())
    training = parser.train(dataset.lines)
    print(
        f"\ntrained in {training.duration_seconds:.2f}s: "
        f"{len(parser.model)} templates from {training.n_unique} unique records "
        f"({training.n_groups} initial groups)"
    )

    # 3. Match new incoming logs (the online phase).
    new_logs = [
        "Received block blk_6549992 of size 67108864 from /10.251.43.21",
        "PacketResponder 2 for block blk_6549992 terminating",
        "Verification succeeded for blk_6549992",
    ]
    for line in new_logs:
        result = parser.match(line)
        print(f"\nlog     : {line}")
        print(f"template: {result.template_text}  (saturation {result.saturation:.2f})")

    # 4. Query-time precision adjustment: the same parsed corpus grouped at
    #    three different saturation thresholds, without any re-parsing.
    corpus_result = parser.match_many(dataset.lines)
    for threshold in (0.3, 0.6, 0.9):
        groups = parser.group_results(corpus_result, threshold)
        print(f"\nthreshold {threshold}: {len(groups)} template groups; top 3:")
        for group in groups[:3]:
            print(f"  {group.count:5d}  {group.display_text}")


if __name__ == "__main__":
    main()
