"""Idempotent producer sessions: WAL frame marks, runtime barriers, dedup.

The exactly-once contract under test: a sessioned wire batch's records
and its ``(producer_key, batch_seq)`` dedup mark land in **one** WAL
frame, so frame-CRC atomicity makes "mark durable" equivalent to "all
its records durable".  Recovery and replication restore dedup state
together with the data; a replayed batch is acked as a no-op, never
re-applied.  Old version-1 segments (``BBWAL001``, written before the
frame-version bump) must still recover — they simply carry no marks.
"""

import zlib

import pytest

from repro.core.config import ByteBrainConfig
from repro.service import wal as wal_mod
from repro.service.recovery import RecoveredRuntime
from repro.service.runtime import create_runtime
from repro.service.service import LogParsingService
from repro.service.wal import WalRecord, WriteAheadLog


def _drain_and_close(runtime):
    runtime.drain()
    runtime.shutdown(drain=False)


# --------------------------------------------------------------------- #
# Frame-level marks
# --------------------------------------------------------------------- #


class TestFrameMarks:
    def test_marks_round_trip_in_the_records_frame(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        shard = wal.shard(0)
        shard.append(
            [WalRecord("t", 1, 1.0, "a"), WalRecord("t", 2, 1.0, "b")],
            session=[("alpha::p1", 7)],
        )
        shard.close()

        by_topic, infos = WriteAheadLog(tmp_path).replay_records()
        assert [r.raw for r in by_topic["t"]] == ["a", "b"]
        assert len(infos) == 1
        assert infos[0].version == 2
        assert infos[0].producer_marks == {"alpha::p1": 7}

    def test_mark_without_records_is_a_valid_frame(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        shard = wal.shard(0)
        shard.append([], session=[("alpha::p1", 3)])
        shard.close()
        _, infos = WriteAheadLog(tmp_path).replay_records()
        assert infos[0].producer_marks == {"alpha::p1": 3}

    def test_segment_max_merges_marks_across_frames(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        shard = wal.shard(0)
        shard.append([WalRecord("t", 1, 1.0, "a")], session=[("k", 1)])
        shard.append([WalRecord("t", 2, 1.0, "b")], session=[("k", 2)])
        shard.close()
        _, infos = WriteAheadLog(tmp_path).replay_records()
        assert infos[0].producer_marks == {"k": 2}

    def test_sessions_checkpoint_survives_truncation(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.record_producer_marks({"alpha::p1": 9})
        wal.close()
        assert WriteAheadLog(tmp_path).producer_marks() == {"alpha::p1": 9}


# --------------------------------------------------------------------- #
# Version-1 segment compatibility
# --------------------------------------------------------------------- #


def _write_v1_segment(path, records):
    """Hand-craft a pre-version-bump (BBWAL001) segment file."""
    parts = [wal_mod._MAGIC]
    payload_parts = [wal_mod._COUNT.pack(len(records))]
    for topic, seq, timestamp, raw in records:
        topic_bytes = topic.encode()
        raw_bytes = raw.encode()
        payload_parts.append(wal_mod._RECORD_HEAD.pack(len(topic_bytes)))
        payload_parts.append(topic_bytes)
        payload_parts.append(wal_mod._RECORD_BODY.pack(seq, timestamp))
        payload_parts.append(wal_mod._RECORD_RAW.pack(len(raw_bytes)))
        payload_parts.append(raw_bytes)
    payload = b"".join(payload_parts)
    parts.append(wal_mod._FRAME_HEADER.pack(len(payload), zlib.crc32(payload)))
    parts.append(payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"".join(parts))


class TestV1Compatibility:
    def test_v1_segment_replays(self, tmp_path):
        _write_v1_segment(
            tmp_path / "shard-00" / "segment-00000000.wal",
            [("t", 1, 1.0, "old a"), ("t", 2, 1.0, "old b")],
        )
        by_topic, infos = WriteAheadLog(tmp_path).replay_records()
        assert [r.raw for r in by_topic["t"]] == ["old a", "old b"]
        assert infos[0].version == 1
        assert infos[0].producer_marks == {}

    def test_v1_segment_recovers_through_the_full_stack(self, tmp_path):
        _write_v1_segment(
            tmp_path / "wal" / "shard-00" / "segment-00000000.wal",
            [("app", i + 1, 1.0, f"legacy record {i}") for i in range(20)],
        )
        with RecoveredRuntime.open(tmp_path / "store", tmp_path / "wal") as rec:
            assert rec.report.producer_marks == {}
            topic = {t.topic: t for t in rec.report.topics}["app"]
            assert topic.replayed_records == 20
            rec.runtime.drain()
            assert rec.service.topic("app").topic.high_watermark == 20

    def test_v1_and_v2_segments_mix_in_one_replay(self, tmp_path):
        _write_v1_segment(
            tmp_path / "shard-00" / "segment-00000000.wal",
            [("t", 1, 1.0, "v1 rec")],
        )
        wal = WriteAheadLog(tmp_path)
        # A fresh process starts a fresh (v2) segment in another shard dir.
        wal.shard(1).append([WalRecord("t", 2, 2.0, "v2 rec")], session=[("k", 1)])
        wal.close()
        by_topic, infos = WriteAheadLog(tmp_path).replay_records()
        assert [r.raw for r in by_topic["t"]] == ["v1 rec", "v2 rec"]
        assert sorted(i.version for i in infos) == [1, 2]


# --------------------------------------------------------------------- #
# Runtime submit_session_batch — both backends
# --------------------------------------------------------------------- #


def _make_runtime(tmp_path, backend, n_shards=2):
    config = ByteBrainConfig(n_shards=n_shards)
    service = LogParsingService(config=config, store_root=tmp_path / "store")
    service.create_topic("alpha::app")
    runtime = create_runtime(service, backend=backend, wal_dir=tmp_path / "wal")
    return service, runtime


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestSubmitSessionBatch:
    def test_records_and_mark_are_durable_together(self, tmp_path, backend):
        service, runtime = _make_runtime(tmp_path, backend)
        raws = [f"job {i} done" for i in range(10)]
        try:
            n = runtime.submit_session_batch(
                "alpha::app", raws, [1.0] * 10, "alpha::p1", 1
            )
            assert n == 10
            assert runtime.producer_marks() == {"alpha::p1": 1}
            _drain_and_close(runtime)
        except BaseException:
            runtime.shutdown(drain=False)
            raise

        # Recovery restores records AND the mark from the same frames.
        with RecoveredRuntime.open(tmp_path / "store", tmp_path / "wal") as rec:
            assert rec.report.producer_marks == {"alpha::p1": 1}
            assert rec.runtime.producer_marks()["alpha::p1"] == 1
            rec.runtime.drain()
            assert rec.service.topic("alpha::app").topic.high_watermark == 10

    def test_empty_batch_still_advances_the_mark(self, tmp_path, backend):
        service, runtime = _make_runtime(tmp_path, backend)
        try:
            assert runtime.submit_session_batch(
                "alpha::app", [], [], "alpha::p1", 4
            ) == 0
            assert runtime.producer_marks() == {"alpha::p1": 4}
        finally:
            _drain_and_close(runtime)

    def test_marks_survive_checkpoint_truncation(self, tmp_path, backend):
        service, runtime = _make_runtime(tmp_path, backend)
        try:
            for seq in range(1, 4):
                runtime.submit_session_batch(
                    "alpha::app", [f"r{seq}"], [float(seq)], "alpha::p1", seq
                )
            runtime.drain()  # drain checkpoints marks before truncating
        finally:
            runtime.shutdown(drain=False)
        assert WriteAheadLog(tmp_path / "wal").producer_marks() == {"alpha::p1": 3}
