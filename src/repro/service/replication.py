"""WAL segment shipping to a warm standby, and standby promotion.

PR 4 made every acked record durable on the primary's disk; this module
makes it survive the *machine*.  A :class:`WalShipper` tails the
primary's per-shard WAL segments — closed ones fully, the active one
incrementally (``replication_ship_active``) — and streams CRC-verified
frames to a :class:`StandbyRuntime`, which does two things with each
frame:

1. **mirror** — the frame bytes are appended verbatim to a replica WAL
   under the standby's root (same shard/segment layout, same wire
   format), so the standby's disk is a valid WAL in its own right, and
2. **replay** — the decoded records are pushed through the batched
   ingest path into warm follower engines (the same replay discipline as
   :mod:`repro.service.recovery`: seq-sorted, applied-watermark
   filtered, gap-warned), so the follower's parser state tracks the
   primary continuously instead of being rebuilt at failover time.

Failover: ``shipper.stop(); shipper.catch_up(); standby.promote()``.
``promote()`` seals the standby and returns a live
:class:`~repro.service.runtime.ShardedRuntime` over the replica WAL with
the per-topic sequence positions carried over — new appends continue the
primary's sequences, snapshots line up, and a later crash of the
*promoted* node recovers through the ordinary
:class:`~repro.service.recovery.RecoveredRuntime` path.  The guarantee
is *zero acked-record loss up to the shipped watermark*: every record
the shipper delivered before the kill is present exactly once on the
promoted standby.  Records acked on the primary but not yet shipped are
lost at failover — that is the asynchronous-replication contract;
:meth:`WalShipper.lag` quantifies the exposure.

Known limitation (asynchronous shipping, ``wal_sync_mode="always"``): a
primary ack-path fsync failure discards a fully written frame whose seq
is re-minted for the next record.  A shipper that polled inside that
window has applied the discarded payload; the rewind is detected and
surfaced as a warning (``cursor rewound``) rather than silently
diverging.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.core import failpoints
from repro.core.config import ByteBrainConfig
from repro.service.service import LogParsingService
from repro.service.wal import (
    _FRAME_HEADER,
    _MAGIC,
    _MAGIC_V2,
    _SESSIONS_FILE,
    WalCorruptionError,
    WalRecord,
    WriteAheadLog,
    _segment_paths,
    decode_frame_payload,
    segment_version,
)

__all__ = ["ShipperStats", "WalShipper", "StandbyRuntime"]

#: Standby replay chunk size (same reasoning as recovery's replay batch).
_APPLY_BATCH = 1024


@dataclass
class ShipperStats:
    """Counters one :class:`WalShipper` maintains (reads are approximate)."""

    ship_rounds: int = 0
    frames_shipped: int = 0
    records_shipped: int = 0
    bytes_shipped: int = 0
    #: Incomplete or CRC-bad *tail* reads (an append in flight on the
    #: primary; retried next round — not an error).
    partial_reads: int = 0
    #: Primary segments observed shorter than our cursor (a discarded
    #: ack-path frame; see the module docstring's known limitation).
    cursor_rewinds: int = 0
    warnings: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ship_rounds": self.ship_rounds,
            "frames_shipped": self.frames_shipped,
            "records_shipped": self.records_shipped,
            "bytes_shipped": self.bytes_shipped,
            "partial_reads": self.partial_reads,
            "cursor_rewinds": self.cursor_rewinds,
            "warnings": list(self.warnings),
        }


class WalShipper:
    """Tail a primary WAL root and stream its frames to a standby.

    Pull-based and single-threaded: :meth:`ship_once` scans every shard
    directory, reads newly appended bytes past each segment's cursor,
    verifies frame CRCs, hands complete frames to the standby and
    advances the cursor (always to a frame boundary — a torn or
    in-flight tail is left for the next round).  :meth:`start` runs that
    loop on a daemon thread every ``poll_interval`` seconds;
    :meth:`catch_up` loops inline until a full scan ships nothing.

    The shipper never *writes* to the primary: it is safe to run against
    the WAL of a live :class:`~repro.service.runtime.ShardedRuntime` in
    another thread or (via the ``standby`` CLI command) another process.
    """

    def __init__(
        self,
        primary_wal: os.PathLike,
        standby: "StandbyRuntime",
        poll_interval: Optional[float] = None,
        ship_active: Optional[bool] = None,
    ) -> None:
        self.primary_root = Path(primary_wal)
        self.standby = standby
        config = standby.service.config
        self.poll_interval = (
            poll_interval if poll_interval is not None else config.replication_poll_interval
        )
        self.ship_active = (
            ship_active if ship_active is not None else config.replication_ship_active
        )
        self.stats = ShipperStats()
        #: Primary segment path -> bytes consumed (frame-aligned).
        #: Seeded from the standby's replica files: a mirror segment is a
        #: byte-for-byte prefix of its primary counterpart, so its size
        #: *is* the shipped cursor — a restarted shipper resumes instead
        #: of appending every frame to the mirror a second time.
        self._cursors: Dict[Path, int] = {}
        for replica in standby.replica_segments():
            primary = self.primary_root / replica.parent.name / replica.name
            try:
                self._cursors[primary] = replica.stat().st_size
            except OSError:
                continue
        #: Highest seq seen per topic in shipped frames (feeds lag()).
        self._shipped_seqs: Dict[str, int] = {}
        #: Primary segment path -> frame-format version (read from its
        #: magic once; a seeded cursor resumes past the magic bytes).
        self._versions: Dict[Path, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._ship_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # shipping
    # ------------------------------------------------------------------ #
    def ship_once(self) -> int:
        """One full scan of the primary; returns the frames shipped."""
        with self._ship_lock:
            self.stats.ship_rounds += 1
            shipped = 0
            for shard_dir in sorted(
                p for p in self.primary_root.glob("shard-*") if p.is_dir()
            ):
                segments = _segment_paths(shard_dir)
                for position, path in enumerate(segments):
                    active = position == len(segments) - 1
                    if active and not self.ship_active:
                        continue
                    shipped += self._ship_segment(shard_dir.name, path)
            # Forget cursors of segments the primary truncated away.
            for path in [p for p in self._cursors if not p.exists()]:
                del self._cursors[path]
                self._versions.pop(path, None)
            self._ship_sessions()
            return shipped

    def _ship_sessions(self) -> None:
        """Carry the primary's checkpointed producer marks to the standby.

        The in-frame marks cover everything the shipper sees; this file
        covers marks whose carrying segments the primary truncated before
        this standby ever connected (a standby seeded mid-life).  Reads
        are tolerant: the file is written crash-atomically, so a parse
        error means only that a write raced the read — retried next round.
        """
        path = self.primary_root / _SESSIONS_FILE
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        marks = {
            str(key): int(seq) for key, seq in data.get("producers", {}).items()
        }
        if marks:
            self.standby.observe_producer_marks(marks)

    def _ship_segment(self, shard_name: str, path: Path) -> int:
        offset = self._cursors.get(path, len(_MAGIC))
        try:
            size = path.stat().st_size
            if size < offset:
                # The primary discarded a tail we already consumed (failed
                # ack-path fsync).  Surface it; resume from the new end.
                self.stats.cursor_rewinds += 1
                self.stats.warnings.append(
                    f"cursor rewound on {path.name}: primary truncated "
                    f"{offset - size} shipped byte(s)"
                )
                self._cursors[path] = size
                return 0
            if size <= offset:
                return 0
            with open(path, "rb") as handle:
                magic = handle.read(len(_MAGIC))
                if len(magic) < len(_MAGIC):
                    return 0  # segment still being created
                version = segment_version(magic)
                if version is None:
                    raise WalCorruptionError(f"bad segment magic in {path}")
                self._versions[path] = version
                if offset > len(_MAGIC):
                    handle.seek(offset)
                data = handle.read()
        except OSError:
            return 0  # truncated away between listing and reading
        frames, records, marks, consumed = self._parse_frames(path, data, version)
        if consumed == 0:
            return 0
        self.standby._receive(
            shard_name, path.name, b"".join(frames), records,
            version=version, producer_marks=marks,
        )
        for record in records:
            if record.seq > self._shipped_seqs.get(record.topic, 0):
                self._shipped_seqs[record.topic] = record.seq
        self._cursors[path] = offset + consumed
        self.stats.frames_shipped += len(frames)
        self.stats.records_shipped += len(records)
        self.stats.bytes_shipped += consumed
        return len(frames)

    def _parse_frames(self, path, data: bytes, version: int = 2):
        """Split ``data`` into complete CRC-valid frames.

        Returns ``(frame_bytes, records, producer_marks, bytes_consumed)``.
        An incomplete or CRC-bad suffix at the very end is an append in
        flight (or a crash's torn tail) — left unconsumed for the next
        round.  A bad frame with more data after it is corruption.
        ``version`` selects the frame decoder (the segment magic's
        format); v2 frames may carry producer dedup marks, returned
        max-merged per producer key.
        """
        frames: List[bytes] = []
        records: List[WalRecord] = []
        marks: Dict[str, int] = {}
        position = 0
        total = len(data)
        while position + _FRAME_HEADER.size <= total:
            length, crc = _FRAME_HEADER.unpack_from(data, position)
            end = position + _FRAME_HEADER.size + length
            if end > total:
                self.stats.partial_reads += 1
                break
            payload = data[position + _FRAME_HEADER.size : end]
            bad = zlib.crc32(payload) != crc
            if not bad:
                try:
                    decoded, frame_marks = decode_frame_payload(payload, version)
                except Exception:
                    bad = True
            if bad:
                if end == total:
                    self.stats.partial_reads += 1
                    break
                raise WalCorruptionError(
                    f"corrupt frame at byte {position} of {path} while shipping"
                )
            frames.append(data[position:end])
            records.extend(decoded)
            for key, seq in frame_marks.items():
                if seq > marks.get(key, 0):
                    marks[key] = seq
            position = end
        return frames, records, marks, position

    def catch_up(self, max_rounds: int = 1000) -> int:
        """Ship inline until a full scan finds nothing new; returns the
        total frames shipped.  Call after stopping the primary (or the
        shipper thread) to reach the shipped watermark before promoting."""
        total = 0
        for _ in range(max_rounds):
            shipped = self.ship_once()
            total += shipped
            if shipped == 0:
                return total
        return total

    # ------------------------------------------------------------------ #
    # background tailing
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Tail the primary on a daemon thread every ``poll_interval``."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._tail_loop, name="repro-wal-shipper", daemon=True
        )
        self._thread.start()

    def _tail_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.ship_once()
            except Exception as error:
                self.stats.warnings.append(f"ship round failed: {error!r}")
            self._stop.wait(self.poll_interval)

    def stop(self) -> None:
        """Stop the tailing thread (the cursors keep their positions —
        ``catch_up`` or a later ``start`` resumes where it left off)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    # ------------------------------------------------------------------ #
    # lag
    # ------------------------------------------------------------------ #
    def lag(self) -> Dict[str, object]:
        """Replication lag: bytes behind on disk, records behind per topic.

        ``bytes_behind`` compares primary segment sizes against shipped
        cursors (cheap stats, no reads).  ``records_behind`` compares the
        highest seq *shipped* per topic against the highest seq *applied*
        by the standby — with a healthy standby both gaps sit at zero
        between bursts.
        """
        bytes_behind = 0
        for shard_dir in (p for p in self.primary_root.glob("shard-*") if p.is_dir()):
            for path in _segment_paths(shard_dir):
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                bytes_behind += max(0, size - self._cursors.get(path, len(_MAGIC)))
        applied = self.standby.applied_seqs()
        records_behind = {
            topic: max(0, seq - applied.get(topic, 0))
            for topic, seq in self._shipped_seqs.items()
        }
        return {"bytes_behind": bytes_behind, "records_behind": records_behind}


class StandbyRuntime:
    """A warm follower: replica WAL on disk, live parser state in memory.

    ``root_dir`` gets the standby's replica WAL (``<root>/wal``, same
    layout as the primary's) and model store (``<root>/store``, used once
    promoted).  Frames arrive through a :class:`WalShipper`; reads
    (``service.match(...)``, analytics) are live at any time — the whole
    point of a *warm* standby is serving the moment the primary dies.

    :meth:`promote` ends followership: the standby stops accepting
    shipped frames and becomes a fully fledged
    :class:`~repro.service.runtime.ShardedRuntime` over the replica WAL.
    """

    def __init__(
        self,
        root_dir: os.PathLike,
        config: Optional[ByteBrainConfig] = None,
        scheduler_policy=None,
    ) -> None:
        self.root = Path(root_dir)
        self.wal_root = self.root / "wal"
        self.wal_root.mkdir(parents=True, exist_ok=True)
        self.config = config or ByteBrainConfig()
        self.service = LogParsingService(
            config=self.config,
            scheduler_policy=scheduler_policy,
            store_root=self.root / "store",
        )
        #: Per-topic highest applied seq (the standby's replay watermark).
        self._applied: Dict[str, int] = {}
        #: Per-producer dedup high-water marks carried by shipped frames
        #: (``tenant::producer_id`` -> highest applied wire batch_seq).
        self._producer_marks: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._promoted = False
        self.warnings: List[str] = []
        #: Replica segment files currently open for appending.
        self._mirror_files: Dict[Path, object] = {}
        self._resume_from_replica()

    def _resume_from_replica(self) -> None:
        """Warm the follower from replica segments left by a previous run.

        A standby process that restarts (or a ``promote`` run in a fresh
        process) rebuilds its engines and applied watermarks by replaying
        the mirrored WAL — the same dedup/seq-sort discipline as crash
        recovery, because the mirror *is* a WAL.
        """
        if not any(self.replica_segments()):
            return
        replica = WriteAheadLog(
            self.wal_root,
            sync_mode=self.config.wal_sync_mode,
            segment_bytes=self.config.wal_segment_bytes,
        )
        records_by_topic, infos = replica.replay_records()
        for topic_name in sorted(records_by_topic):
            self.apply_records(records_by_topic[topic_name])
        # Producer marks survive a standby restart two ways: in-frame
        # (read back here) and checkpointed to the replica's sessions.json
        # at promote time / by the shipper's sessions pass.
        for info in infos:
            self.observe_producer_marks(info.producer_marks)
        self.observe_producer_marks(replica.producer_marks())

    def replica_segments(self) -> List[Path]:
        """Every mirrored segment file under the replica WAL root."""
        return [
            path
            for shard_dir in sorted(self.wal_root.glob("shard-*"))
            if shard_dir.is_dir()
            for path in _segment_paths(shard_dir)
        ]

    # ------------------------------------------------------------------ #
    # receiving (called by the shipper)
    # ------------------------------------------------------------------ #
    def _receive(self, shard_name: str, segment_name: str, frame_bytes: bytes,
                 records: List[WalRecord], version: int = 2,
                 producer_marks: Optional[Dict[str, int]] = None) -> None:
        """Mirror one batch of frames to disk, then replay its records."""
        with self._lock:
            if self._promoted:
                raise RuntimeError("standby was promoted; no longer accepting frames")
            self._mirror(shard_name, segment_name, frame_bytes, version)
            self.apply_records(records)
            if producer_marks:
                for key, seq in producer_marks.items():
                    if seq > self._producer_marks.get(key, 0):
                        self._producer_marks[key] = seq

    def _mirror(self, shard_name: str, segment_name: str, frame_bytes: bytes,
                version: int = 2) -> None:
        directory = self.wal_root / shard_name
        path = directory / segment_name
        handle = self._mirror_files.get(path)
        if handle is None:
            directory.mkdir(parents=True, exist_ok=True)
            fresh = not path.exists() or path.stat().st_size == 0
            handle = open(path, "ab", buffering=0)
            if fresh:
                # The mirror stays byte-for-byte identical to its source
                # segment, magic included — the frames that follow are in
                # the source's format, and the replica must replay as-is.
                handle.write(_MAGIC if version == 1 else _MAGIC_V2)
            self._mirror_files[path] = handle
        handle.write(frame_bytes)

    def observe_producer_marks(self, marks: Dict[str, int]) -> None:
        """Max-merge externally sourced producer marks (sessions file,
        replica resume scan) into the follower's dedup state."""
        for key, seq in marks.items():
            seq = int(seq)
            if seq > self._producer_marks.get(key, 0):
                self._producer_marks[key] = seq

    def apply_records(self, records: List[WalRecord]) -> int:
        """Replay shipped records into the follower engines.

        Same discipline as recovery replay: per-topic seq order, records
        at or below the applied watermark dropped (redelivery safe),
        sequence gaps recorded as warnings (the primary truncated
        segments faster than we shipped them — the gap records' template
        knowledge is only in the primary's snapshots).  Returns the
        number of records applied.  Caller holds no engine locks; the
        standby is single-writer by construction (one shipper).
        """
        failpoints.hit("standby.apply")
        by_topic: Dict[str, List[WalRecord]] = {}
        for record in records:
            by_topic.setdefault(record.topic, []).append(record)
        applied_total = 0
        for topic_name in sorted(by_topic):
            batch = sorted(by_topic[topic_name], key=lambda r: r.seq)
            watermark = self._applied.get(topic_name, 0)
            fresh = [r for r in batch if r.seq > watermark]
            if not fresh:
                continue
            try:
                engine = self.service.topic(topic_name)
            except KeyError:
                engine = self.service.create_topic(topic_name)
            expected = watermark + 1 if watermark else fresh[0].seq
            for record in fresh:
                if record.seq > expected:
                    self.warnings.append(
                        f"topic {topic_name!r}: shipped sequence gap — expected "
                        f"seq {expected}, got {record.seq}"
                    )
                expected = record.seq + 1
            for start in range(0, len(fresh), _APPLY_BATCH):
                chunk = fresh[start : start + _APPLY_BATCH]
                engine.ingest_batch_fast(
                    [r.raw for r in chunk],
                    now=chunk[-1].timestamp,
                    timestamps=[r.timestamp for r in chunk],
                )
            self._applied[topic_name] = fresh[-1].seq
            applied_total += len(fresh)
        return applied_total

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def applied_seqs(self) -> Dict[str, int]:
        """Per-topic highest seq replayed into the follower engines."""
        return dict(self._applied)

    def producer_marks(self) -> Dict[str, int]:
        """Per-producer dedup high-water marks the follower has observed."""
        return dict(self._producer_marks)

    def stats(self) -> Dict[str, object]:
        return {
            "promoted": self._promoted,
            "topics": sorted(self._applied),
            "applied_seqs": self.applied_seqs(),
            "applied_records": sum(self._applied.values()),
            "n_warnings": len(self.warnings),
        }

    # ------------------------------------------------------------------ #
    # failover
    # ------------------------------------------------------------------ #
    def promote(self, **runtime_kwargs):
        """Fail over: seal the standby and return a live runtime.

        Call :meth:`WalShipper.stop` and :meth:`WalShipper.catch_up`
        first so the shipped watermark is as close to the primary's ack
        watermark as the wreckage allows.  The returned
        :class:`~repro.service.runtime.ShardedRuntime` appends to the
        replica WAL with the per-topic sequence positions carried over
        (``seq_base = 0`` — the standby applied every shipped record from
        seq 1, so record id ``i`` holds seq ``i + 1``), making the
        promotion indistinguishable from a recovery to every layer above.
        Extra keyword arguments go to the runtime constructor.
        """
        with self._lock:
            if self._promoted:
                raise RuntimeError("standby already promoted")
            self._promoted = True
            for handle in self._mirror_files.values():
                handle.close()
            self._mirror_files.clear()
        wal = WriteAheadLog(
            self.wal_root,
            sync_mode=self.config.wal_sync_mode,
            segment_bytes=self.config.wal_segment_bytes,
        )
        # Checkpoint the observed producer marks into the replica root so
        # the promoted node's own recovery (and any standby re-seeded off
        # it) inherits the dedup state even after truncation.
        wal.record_producer_marks(self._producer_marks)
        wal_positions = {
            topic: (0, applied + 1) for topic, applied in self._applied.items()
        }
        return self.service.sharded_runtime(
            wal=wal, wal_positions=wal_positions, **runtime_kwargs
        )

    def close(self) -> None:
        """Release mirror file handles (idempotent; promote also closes)."""
        with self._lock:
            for handle in self._mirror_files.values():
                handle.close()
            self._mirror_files.clear()
