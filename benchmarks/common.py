"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from typing import List, Optional

from repro.baselines import BASELINE_REGISTRY, make_baseline
from repro.core.config import ByteBrainConfig
from repro.datasets.synthetic import LogDataset
from repro.evaluation.runner import BaselineRunner, ByteBrainRunner, EvaluationRun

__all__ = [
    "SYNTAX_BASELINES",
    "LEARNING_BASELINES",
    "ALL_BASELINES",
    "run_bytebrain",
    "run_baseline",
    "maybe_sample",
]

#: Baselines grouped the way the paper's related-work section groups them.
SYNTAX_BASELINES: List[str] = [
    "AEL", "Drain", "IPLoM", "LenMa", "LFA", "LogCluster", "LogMine", "Logram",
    "LogSig", "MoLFI", "SHISO", "SLCT", "Spell",
]
LEARNING_BASELINES: List[str] = ["UniParser", "LogPPT", "LILAC"]
ALL_BASELINES: List[str] = SYNTAX_BASELINES + LEARNING_BASELINES


def maybe_sample(dataset: LogDataset, max_lines: Optional[int]) -> LogDataset:
    """Return a prefix of the dataset when it exceeds ``max_lines``."""
    if max_lines is None or dataset.n_logs <= max_lines:
        return dataset
    return dataset.prefix(max_lines)


def run_bytebrain(
    dataset: LogDataset,
    config: Optional[ByteBrainConfig] = None,
    name: str = "ByteBrain",
    query_threshold: float = 0.6,
) -> EvaluationRun:
    """Run ByteBrain (or a variant) on a corpus and return the measurements."""
    runner = ByteBrainRunner(config=config, name=name, query_threshold=query_threshold)
    return runner.run(dataset)


def run_baseline(
    baseline_name: str,
    dataset: LogDataset,
    max_lines: Optional[int] = None,
) -> EvaluationRun:
    """Run one baseline (optionally on a bounded sample of the corpus)."""
    if baseline_name not in BASELINE_REGISTRY:
        raise KeyError(f"unknown baseline {baseline_name!r}")
    runner = BaselineRunner(lambda: make_baseline(baseline_name), name=baseline_name)
    return runner.run(maybe_sample(dataset, max_lines))
