"""Unit tests for §4.5 saturation (Eq. 3), including the Fig. 5 worked example."""

import numpy as np
import pytest

from repro.core.encoding import HashEncoder
from repro.core.saturation import profile_positions, saturation_from_profile, saturation_score


def encode(rows):
    encoder = HashEncoder()
    return np.stack([encoder.encode_tokens(row) for row in rows])


#: Fig. 5, Set 1: identical except the token value, which differs in every log.
SET1 = [
    ["UserService", "createUser", "token", "abc123", "success"],
    ["UserService", "createUser", "token", "xyz789", "success"],
    ["UserService", "createUser", "token", "def456", "success"],
]

#: Fig. 5, Set 2: action and status vary too.
SET2 = [
    ["UserService", "createUser", "token", "abc123", "success"],
    ["UserService", "deleteUser", "token", "xyz789", "failed"],
    ["UserService", "queryUser", "token", "def456", "success"],
]


class TestProfile:
    def test_counts_constants_and_unresolved(self):
        profile = profile_positions(encode(SET2))
        assert profile.n_positions == 5
        assert profile.n_constants == 2
        assert sorted(profile.unresolved_counts) == [2, 3, 3]

    def test_weighted_log_count(self):
        codes = encode([["a", "x"], ["a", "y"]])
        profile = profile_positions(codes, weights=np.array([10.0, 5.0]))
        assert profile.n_logs == 15.0
        assert profile.n_unique == 2

    def test_subset_of_rows(self):
        profile = profile_positions(encode(SET2), member_indices=[0, 2])
        assert profile.n_unique == 2
        assert profile.n_constants == 3

    def test_empty_group(self):
        profile = profile_positions(encode(SET1), member_indices=[])
        assert profile.n_positions == 0
        assert saturation_from_profile(profile) == 1.0


class TestFig5Example:
    def test_set1_is_fully_saturated(self):
        # The lone unresolved position holds a distinct token per log, so the
        # group is fully resolved (saturation 1.0 in Fig. 5).
        assert saturation_score(encode(SET1)) == pytest.approx(1.0)

    def test_set2_root_saturation_matches_figure(self):
        # Fig. 5 annotates the {4,5,6} node with ~0.4.
        score = saturation_score(encode(SET2))
        assert 0.3 <= score <= 0.45

    def test_set2_intermediate_node_is_06(self):
        # The {4,6} node (rows 0 and 2) is annotated 0.6.
        score = saturation_score(encode(SET2), member_indices=[0, 2])
        assert score == pytest.approx(0.6, abs=0.01)

    def test_leaves_are_fully_saturated(self):
        for row in range(3):
            assert saturation_score(encode(SET2), member_indices=[row]) == 1.0

    def test_saturation_increases_with_refinement(self):
        root = saturation_score(encode(SET2))
        child = saturation_score(encode(SET2), member_indices=[0, 2])
        assert child > root


class TestSaturationProperties:
    def test_all_constant_group_is_one(self):
        codes = encode([["a", "b"], ["a", "b"], ["a", "b"]])
        assert saturation_score(codes) == 1.0

    def test_single_log_is_one(self):
        assert saturation_score(encode([["a", "b", "c"]])) == 1.0

    def test_score_in_unit_interval(self):
        codes = encode([["a", str(i), "x" if i % 2 else "y"] for i in range(10)])
        score = saturation_score(codes)
        assert 0.0 <= score <= 1.0

    def test_duplication_weights_lower_variability(self):
        # Two distinct verbs over many occurrences: a near-constant split
        # position, so weighted saturation is much lower than unweighted.
        codes = encode([["job", "started", "x"], ["job", "stopped", "x"]])
        unweighted = saturation_score(codes)
        weighted = saturation_score(codes, weights=np.array([500.0, 500.0]))
        assert weighted <= unweighted

    def test_ablation_without_variable_factor_is_fc(self):
        codes = encode(SET2)
        score = saturation_score(codes, use_variable_saturation=False)
        assert score == pytest.approx(2 / 5)

    def test_ablation_without_confidence_factor(self):
        codes = encode(SET2)
        profile = profile_positions(codes)
        score = saturation_from_profile(profile, use_confidence_factor=False)
        full = saturation_from_profile(profile)
        assert score != full
        assert 0.0 <= score <= 1.0
