"""Unit tests for §4.4/§4.6/§4.7 — the single clustering process."""

import numpy as np
import pytest

from repro.core.clustering import split_node
from repro.core.config import ByteBrainConfig
from repro.core.encoding import HashEncoder


def encode(rows):
    encoder = HashEncoder()
    return np.stack([encoder.encode_tokens(row) for row in rows])


def make_inputs(rows, counts=None):
    codes = encode(rows)
    weights = np.asarray(counts, dtype=float) if counts is not None else np.ones(len(rows))
    return codes, weights


@pytest.fixture()
def config():
    return ByteBrainConfig()


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestEarlyStop:
    def test_single_member_is_leaf(self, config, rng):
        codes, weights = make_inputs([["a", "b"]])
        outcome = split_node(codes, weights, [0], config, rng)
        assert outcome.is_leaf

    def test_two_members_become_singletons(self, config, rng):
        codes, weights = make_inputs([["a", "b"], ["a", "c"]])
        outcome = split_node(codes, weights, [0, 1], config, rng)
        assert sorted(map(len, outcome.children)) == [1, 1]
        assert outcome.reason == "singletons:few-logs"

    def test_single_variable_position_stays_leaf(self, config, rng):
        rows = [["request", "id", str(i), "done"] for i in range(6)]
        codes, weights = make_inputs(rows)
        outcome = split_node(codes, weights, list(range(6)), config, rng)
        assert outcome.is_leaf
        assert outcome.reason == "leaf:single-unresolved"

    def test_single_categorical_position_still_splits(self, config, rng):
        # Two verbs over many occurrences: splitting by the verb is meaningful.
        rows = [["job", "started", "ok"], ["job", "stopped", "ok"]] * 3
        codes, weights = make_inputs(rows, counts=[100] * 6)
        outcome = split_node(codes, weights, list(range(6)), config, rng)
        assert not outcome.is_leaf

    def test_fully_distinct_positions_become_singletons(self, config, rng):
        rows = [["alpha", "x1", "y1"], ["beta", "x2", "y2"], ["gamma", "x3", "y3"]]
        codes, weights = make_inputs(rows)
        outcome = split_node(codes, weights, [0, 1, 2], config, rng)
        assert len(outcome.children) == 3
        assert outcome.reason == "singletons:fully-distinct"

    def test_early_stop_can_be_disabled(self, rng):
        config = ByteBrainConfig(early_stop_enabled=False)
        rows = [["alpha", "x1"], ["beta", "x2"], ["gamma", "x3"]]
        codes, weights = make_inputs(rows)
        outcome = split_node(codes, weights, [0, 1, 2], config, rng)
        # The iterative process still partitions the node, just without the
        # shortcut reason codes.
        assert not outcome.reason.startswith("singletons:")


class TestSplitQuality:
    def test_two_template_mixture_separates_by_structure(self, config, rng):
        acquire = [["acquire", "lock", str(i), "flag", "on"] for i in range(4)]
        release = [["release", "lock", str(i), "flag", "off"] for i in range(4)]
        rows = acquire + release
        codes, weights = make_inputs(rows)
        outcome = split_node(codes, weights, list(range(8)), config, rng)
        assert not outcome.is_leaf
        # No child may mix acquire rows (0-3) with release rows (4-7).
        for child in outcome.children:
            kinds = {0 if row < 4 else 1 for row in child}
            assert len(kinds) == 1

    def test_children_partition_the_parent(self, config, rng):
        rows = [["svc", "a", str(i % 3), "x" if i % 2 else "y"] for i in range(9)]
        codes, weights = make_inputs(rows)
        outcome = split_node(codes, weights, list(range(9)), config, rng)
        if not outcome.is_leaf:
            covered = sorted(row for child in outcome.children for row in child)
            assert covered == list(range(9))

    def test_deterministic_given_seeded_rng(self, config):
        rows = [["svc", "verb" + str(i % 2), str(i), "t"] for i in range(8)]
        codes, weights = make_inputs(rows)
        first = split_node(codes, weights, list(range(8)), config, np.random.default_rng(42))
        second = split_node(codes, weights, list(range(8)), config, np.random.default_rng(42))
        assert [sorted(c) for c in first.children] == [sorted(c) for c in second.children]

    def test_random_centroid_ablation_still_partitions(self, rng):
        config = ByteBrainConfig(use_kmeanspp_seeding=False)
        rows = [["a", "b", str(i % 4), "k"] for i in range(8)]
        codes, weights = make_inputs(rows, counts=[50] * 8)
        outcome = split_node(codes, weights, list(range(8)), config, rng)
        if not outcome.is_leaf:
            covered = sorted(row for child in outcome.children for row in child)
            assert covered == list(range(8))

    def test_without_balanced_grouping_partition_is_seed_independent(self):
        # With tie-breaking disabled the resulting *partition* no longer
        # depends on the random seed (only the cluster ordering may differ,
        # since K-Means++ still picks its first centre at random).
        config = ByteBrainConfig(balanced_grouping_enabled=False)
        rows = [["x", "p" + str(i % 2), str(i)] for i in range(6)]
        codes, weights = make_inputs(rows, counts=[10] * 6)
        results = [
            {frozenset(c) for c in split_node(codes, weights, list(range(6)), config, np.random.default_rng(seed)).children}
            for seed in (1, 2, 3)
        ]
        assert results[0] == results[1] == results[2]
