"""Drain: online log parsing with a fixed-depth parse tree.

Re-implementation of He et al., *Drain: An Online Log Parsing Approach with
Fixed Depth Tree* (ICWS 2017).  Logs descend a tree keyed first by token
count, then by the first ``depth`` tokens (tokens containing digits route to
a wildcard branch), and finally pick the most similar log group under the
leaf if the token-level similarity exceeds ``similarity_threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import WILDCARD, BaselineParser

__all__ = ["DrainParser"]


@dataclass
class _LogGroup:
    """One leaf log group holding the evolving template."""

    group_id: int
    template: List[str]


class DrainParser(BaselineParser):
    """Fixed-depth-tree parser (Drain)."""

    name = "Drain"

    def __init__(self, depth: int = 4, similarity_threshold: float = 0.5, max_children: int = 100) -> None:
        if depth < 3:
            raise ValueError("Drain requires depth >= 3")
        self.depth = depth - 2  # number of token-routing levels
        self.similarity_threshold = similarity_threshold
        self.max_children = max_children

    def parse(self, lines: Sequence[str]) -> List[int]:
        root: Dict[int, Dict] = {}
        groups: List[_LogGroup] = []
        assignments: List[int] = []
        for line in lines:
            tokens = self.preprocess(line)
            if not tokens:
                tokens = ["<empty>"]
            group = self._match(root, groups, tokens)
            if group is None:
                group = _LogGroup(group_id=len(groups), template=list(tokens))
                groups.append(group)
                self._insert(root, tokens, group)
            else:
                self._update_template(group, tokens)
            assignments.append(group.group_id)
        return assignments

    # ------------------------------------------------------------------ #
    # tree navigation
    # ------------------------------------------------------------------ #
    def _routing_tokens(self, tokens: Sequence[str]) -> List[str]:
        routed = []
        for token in tokens[: self.depth]:
            routed.append(WILDCARD if any(ch.isdigit() for ch in token) else token)
        return routed

    def _leaf(self, root: Dict, tokens: Sequence[str], create: bool) -> Optional[List[_LogGroup]]:
        node = root.get(len(tokens))
        if node is None:
            if not create:
                return None
            node = {}
            root[len(tokens)] = node
        for token in self._routing_tokens(tokens):
            child = node.get(token)
            if child is None:
                if not create:
                    return None
                if len(node) >= self.max_children and token not in node:
                    token = WILDCARD
                    child = node.get(token)
                    if child is None:
                        child = {}
                        node[token] = child
                else:
                    child = {}
                    node[token] = child
            node = child
        leaf = node.get("__groups__")
        if leaf is None:
            if not create:
                return None
            leaf = []
            node["__groups__"] = leaf
        return leaf

    def _match(self, root: Dict, groups: List[_LogGroup], tokens: Sequence[str]) -> Optional[_LogGroup]:
        leaf = self._leaf(root, tokens, create=False)
        if not leaf:
            return None
        best: Optional[_LogGroup] = None
        best_similarity = -1.0
        for group in leaf:
            similarity, _ = self._similarity(group.template, tokens)
            if similarity > best_similarity:
                best_similarity = similarity
                best = group
        if best is not None and best_similarity >= self.similarity_threshold:
            return best
        return None

    def _insert(self, root: Dict, tokens: Sequence[str], group: _LogGroup) -> None:
        leaf = self._leaf(root, tokens, create=True)
        leaf.append(group)

    @staticmethod
    def _similarity(template: Sequence[str], tokens: Sequence[str]) -> Tuple[float, int]:
        same = 0
        wildcards = 0
        for template_token, token in zip(template, tokens):
            if template_token == WILDCARD:
                wildcards += 1
            elif template_token == token:
                same += 1
        if not template:
            return 1.0, 0
        return same / len(template), wildcards

    @staticmethod
    def _update_template(group: _LogGroup, tokens: Sequence[str]) -> None:
        for index, token in enumerate(tokens):
            if group.template[index] != token:
                group.template[index] = WILDCARD
