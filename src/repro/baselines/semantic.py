"""Behavioural proxies for the learning-based baselines (UniParser, LogPPT, LILAC).

The deep-learning baselines (UniParser, LogPPT) and the LLM-based baseline
(LILAC) cannot be reproduced faithfully offline — they require pretrained
RoBERTa-class models, labelled few-shot data, or a hosted LLM.  The paper
uses them to make exactly two points: (a) they reach the highest grouping
accuracy and (b) their per-log inference cost makes them one to three orders
of magnitude slower than syntax-based methods (Fig. 2, Fig. 6, Tables 2/3).

The proxies below preserve both properties through the same code paths:

* ``UniParserProxy`` / ``LogPPTProxy`` classify every token of every log
  with a hand-built "semantic" feature scorer (character classes, position,
  vocabulary statistics) and charge a configurable per-token compute cost
  that models neural inference;
* ``LILACProxy`` keeps an adaptive template cache; cache misses run a
  high-quality grouping step and charge a simulated LLM-call latency, cache
  hits are fast — mirroring LILAC's design.

The costs default to values that land the proxies in the same relative
throughput band the paper reports (1e3–4e3 logs/s); set them to zero to
measure the proxies' raw Python speed instead.  DESIGN.md documents this
substitution.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import WILDCARD, BaselineParser

__all__ = ["UniParserProxy", "LogPPTProxy", "LILACProxy"]


class _TokenClassifierProxy(BaselineParser):
    """Shared machinery of the deep-learning proxies: per-token classification."""

    name = "TokenClassifierProxy"

    def __init__(self, per_token_cost_us: float = 18.0) -> None:
        #: Simulated neural-inference cost per token, in microseconds.
        self.per_token_cost_us = per_token_cost_us

    def parse(self, lines: Sequence[str]) -> List[int]:
        token_lists = self.preprocess_many(lines)
        token_lists = [tokens if tokens else ["<empty>"] for tokens in token_lists]
        vocabulary: Counter = Counter()
        for tokens in token_lists:
            vocabulary.update(tokens)
        n_logs = len(token_lists)

        keys: List[Tuple] = []
        for tokens in token_lists:
            self._charge(len(tokens))
            signature = tuple(
                WILDCARD if self._is_parameter(token, position, len(tokens), vocabulary, n_logs) else token
                for position, token in enumerate(tokens)
            )
            keys.append((len(tokens), signature))
        return self.group_by(keys)

    def _charge(self, n_tokens: int) -> None:
        if self.per_token_cost_us <= 0:
            return
        deadline = time.perf_counter() + n_tokens * self.per_token_cost_us * 1e-6
        while time.perf_counter() < deadline:
            pass

    @staticmethod
    def _is_parameter(
        token: str, position: int, length: int, vocabulary: Counter, n_logs: int
    ) -> bool:
        if token == WILDCARD:
            return True
        digits = sum(1 for ch in token if ch.isdigit())
        if digits and digits >= len(token) / 2:
            return True
        # Rare mixed-character tokens behave like identifiers.
        rarity = vocabulary[token] / max(n_logs, 1)
        has_symbol = any(not ch.isalnum() for ch in token)
        if rarity < 0.002 and (has_symbol or digits):
            return True
        if rarity < 0.0005 and position >= length // 2:
            return True
        return False


class UniParserProxy(_TokenClassifierProxy):
    """Proxy for UniParser (Liu et al., WWW 2022): token-level LSTM classifier."""

    name = "UniParser"

    def __init__(self, per_token_cost_us: float = 18.0) -> None:
        super().__init__(per_token_cost_us=per_token_cost_us)


class LogPPTProxy(_TokenClassifierProxy):
    """Proxy for LogPPT (Le & Zhang, ICSE 2023): prompt-tuned RoBERTa tagger."""

    name = "LogPPT"

    def __init__(self, per_token_cost_us: float = 35.0) -> None:
        super().__init__(per_token_cost_us=per_token_cost_us)


class LILACProxy(BaselineParser):
    """Proxy for LILAC (Jiang et al., FSE 2024): LLM parsing with an adaptive cache.

    Logs whose masked shape is already cached skip the "LLM"; cache misses
    run an exhaustive grouping step (merging against cached templates by
    token-level similarity) and pay a simulated LLM latency.
    """

    name = "LILAC"

    def __init__(self, llm_call_cost_ms: float = 12.0, similarity_threshold: float = 0.78) -> None:
        #: Simulated LLM inference latency per cache miss, in milliseconds.
        self.llm_call_cost_ms = llm_call_cost_ms
        self.similarity_threshold = similarity_threshold

    def parse(self, lines: Sequence[str]) -> List[int]:
        cache: Dict[Tuple[str, ...], int] = {}
        templates: List[List[str]] = []
        assignments: List[int] = []
        for line in lines:
            tokens = self.preprocess(line)
            if not tokens:
                tokens = ["<empty>"]
            key = tuple(tokens)
            cached = cache.get(key)
            if cached is not None:
                assignments.append(cached)
                continue
            self._charge()
            group_id = self._query_llm(tokens, templates)
            cache[key] = group_id
            assignments.append(group_id)
        return assignments

    def _charge(self) -> None:
        if self.llm_call_cost_ms <= 0:
            return
        deadline = time.perf_counter() + self.llm_call_cost_ms * 1e-3
        while time.perf_counter() < deadline:
            pass

    def _query_llm(self, tokens: List[str], templates: List[List[str]]) -> int:
        """Stand-in for the LLM call: merge into the best matching template."""
        masked = [WILDCARD if any(ch.isdigit() for ch in token) else token for token in tokens]
        best_id: Optional[int] = None
        best_score = self.similarity_threshold
        for template_id, template in enumerate(templates):
            if len(template) != len(masked):
                continue
            same = sum(
                1
                for a, b in zip(template, masked)
                if a == b or WILDCARD in (a, b)
            )
            score = same / len(masked) if masked else 1.0
            if score >= best_score:
                best_score = score
                best_id = template_id
        if best_id is None:
            templates.append(list(masked))
            return len(templates) - 1
        templates[best_id] = [
            a if a == b else WILDCARD for a, b in zip(templates[best_id], masked)
        ]
        return best_id
