"""Unit tests for the parallel execution helpers."""

import threading

from repro.core.parallel import chunk, map_parallel


class TestMapParallel:
    def test_sequential_path(self):
        assert map_parallel(lambda x: x * 2, [1, 2, 3], parallelism=1) == [2, 4, 6]

    def test_parallel_path_preserves_order(self):
        items = list(range(50))
        assert map_parallel(lambda x: x * x, items, parallelism=4) == [x * x for x in items]

    def test_parallel_actually_uses_multiple_threads(self):
        seen = set()

        def record(_):
            seen.add(threading.get_ident())
            return 1

        map_parallel(record, list(range(64)), parallelism=4)
        assert len(seen) >= 1  # at least runs; thread count depends on scheduling

    def test_empty_items(self):
        assert map_parallel(lambda x: x, [], parallelism=4) == []

    def test_single_item_short_circuits(self):
        assert map_parallel(lambda x: x + 1, [41], parallelism=8) == [42]


class TestChunk:
    def test_single_chunk(self):
        assert chunk([1, 2, 3], 1) == [[1, 2, 3]]

    def test_even_split(self):
        assert chunk([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_split(self):
        chunks = chunk(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for c in chunks for x in c] == list(range(10))

    def test_more_chunks_than_items(self):
        chunks = chunk([1, 2], 5)
        assert chunks == [[1], [2]]
