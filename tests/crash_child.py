"""Crash-injection workload child (driven by test_crash_recovery.py).

Runs a small sharded-runtime ingest workload with the WAL enabled and
SIGKILLs *itself* at an instrumented point, so the parent test gets a
deterministic crash exactly where the durability protocol is most
vulnerable:

* ``mid_round``    — inside ``TopicEngine.commit_round``: the round has
  executed but neither the swap nor the snapshot happened.
* ``mid_swap``     — right after ``ModelStore.save`` returned: the
  snapshot (with its ``wal_seq``) is durable, but the WAL low-water mark
  was never advanced and no truncation ran.
* ``mid_rotation`` — right after the WAL opened a fresh segment file:
  the old segment is closed, the new one holds only its magic header.
* ``after_acks``   — SIGKILL after ``--kill-after`` acknowledged submits
  (the kill-the-primary scenario: a concurrent shipper has been tailing
  the WAL; the parent promotes the standby and checks every acked record
  survived exactly once).
* ``none``         — control: run to completion and exit 0.

Failpoints: specs in the ``REPRO_FAILPOINTS`` environment variable are
armed before the workload starts (``repro.core.failpoints``), so the
parent can combine a SIGKILL with injected WAL IO faults.

After every acknowledged ``submit`` the child appends ``"topic\\ti\\n"``
to the ack file with an O_APPEND ``os.write`` — a SIGKILL cannot lose
page-cache writes, so the parent knows exactly which records were
acknowledged before death.

Not a test module (pytest only collects ``test_*.py``); invoked as::

    python tests/crash_child.py --store S --wal-dir W --ack-file A \
        --kill-at mid_round --records 400
"""

import argparse
import os
import signal
import sys


def _die() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


def install_kill_point(point: str) -> None:
    if point in ("none", "after_acks"):
        return  # after_acks kills from the submit loop, not a patch point
    if point == "mid_round":
        from repro.service.engine import TopicEngine

        def mid_round(self, prepared, persist=True):
            _die()

        TopicEngine.commit_round = mid_round
    elif point == "mid_swap":
        from repro.core.modelstore import ModelStore

        original_save = ModelStore.save

        def mid_swap(self, *args, **kwargs):
            original_save(self, *args, **kwargs)
            _die()

        ModelStore.save = mid_swap
    elif point == "mid_rotation":
        from repro.service.wal import ShardWal

        original = ShardWal._start_segment

        def mid_rotation(self, index):
            original(self, index)
            if index >= 2:  # index 1 is the initial open, 2 the first rotation
                _die()

        ShardWal._start_segment = mid_rotation
    else:
        raise SystemExit(f"unknown kill point {point!r}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--store", required=True)
    parser.add_argument("--wal-dir", required=True)
    parser.add_argument("--ack-file", required=True)
    parser.add_argument("--kill-at", required=True,
                        choices=["mid_round", "mid_swap", "mid_rotation", "after_acks", "none"])
    parser.add_argument("--kill-after", type=int, default=200,
                        help="acked submits before the after_acks SIGKILL")
    parser.add_argument("--records", type=int, default=400)
    parser.add_argument("--backend", default="thread", choices=["thread", "process"],
                        help="shard transport backend driving the workload")
    parser.add_argument("--drain-at", type=int, default=0,
                        help="drain() after this many acked submits and append a "
                             "DRAIN marker to the ack file (durability barrier for "
                             "the process backend, where submit-return is not the "
                             "durability point)")
    parser.add_argument("--volume-threshold", type=int, default=10**9)
    parser.add_argument("--initial-threshold", type=int, default=150)
    parser.add_argument("--segment-bytes", type=int, default=256 * 1024)
    args = parser.parse_args()

    install_kill_point(args.kill_at)

    from repro.core import failpoints

    failpoints.install_from_env()

    from repro.core.config import ByteBrainConfig
    from repro.service.runtime import create_runtime
    from repro.service.scheduler import SchedulerPolicy
    from repro.service.service import LogParsingService

    topics = ("checkout", "payments")
    service = LogParsingService(
        config=ByteBrainConfig(wal_segment_bytes=args.segment_bytes),
        scheduler_policy=SchedulerPolicy(
            volume_threshold=args.volume_threshold,
            time_interval_seconds=10**9,
            initial_volume_threshold=args.initial_threshold,
        ),
        store_root=args.store,
    )
    for topic in topics:
        service.create_topic(topic)
    ack_fd = os.open(args.ack_file, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    runtime = create_runtime(
        service, backend=args.backend, n_shards=2, micro_batch_size=32,
        max_batch_delay=0.002, wal_dir=args.wal_dir
    )
    acked = 0
    for i in range(args.records):
        for topic in topics:
            runtime.submit(
                topic,
                f"{topic} request {i} served for user {i % 13} with latency {i % 450}",
                timestamp=float(i),
            )
            os.write(ack_fd, f"{topic}\t{i}\n".encode("utf-8"))
            acked += 1
            if args.drain_at and acked == args.drain_at:
                runtime.drain()
                os.write(ack_fd, f"DRAIN\t{acked}\n".encode("utf-8"))
            if args.kill_at == "after_acks" and acked >= args.kill_after:
                # Give the page cache its dues (O_APPEND writes are
                # already there) and die without warning.
                _die()
    runtime.drain()
    runtime.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
