"""Indexing pipeline that online matching is embedded in (paper §3 and §6).

In production the matcher is re-implemented in C++/Rust and embedded in the
log indexing pipeline so template ids are produced alongside the traditional
text index before records hit the append-only storage.  Here the pipeline is
Python but the structure is the same: one ``ingest`` call computes the
template id, writes the record and updates the scheduler, and reports the
end-to-end latency of each step so the latency accounting of §6 can be
reproduced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.matcher import OnlineMatcher
from repro.service.scheduler import TrainingScheduler
from repro.service.topic import LogRecord, LogTopic

__all__ = ["IngestionOutcome", "IndexingPipeline"]


@dataclass
class IngestionOutcome:
    """Result of ingesting one record through the pipeline."""

    record: LogRecord
    template_id: Optional[int]
    is_new_template: bool
    parse_seconds: float
    index_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end ingestion latency for this record."""
        return self.parse_seconds + self.index_seconds


class IndexingPipeline:
    """Couples the online matcher with the append-only topic storage."""

    def __init__(self, topic: LogTopic, scheduler: TrainingScheduler) -> None:
        self.topic = topic
        self.scheduler = scheduler
        self.matcher: Optional[OnlineMatcher] = None

    def attach_matcher(self, matcher: OnlineMatcher) -> None:
        """Install (or replace) the matcher after a training round."""
        self.matcher = matcher

    def ingest(self, raw: str, timestamp: float) -> IngestionOutcome:
        """Parse (if a model exists), index and store one record."""
        parse_start = time.perf_counter()
        template_id: Optional[int] = None
        is_new = False
        if self.matcher is not None:
            result = self.matcher.match(raw)
            template_id = result.template_id
            is_new = result.is_new_template
        parse_seconds = time.perf_counter() - parse_start

        index_start = time.perf_counter()
        record = self.topic.append(raw, timestamp=timestamp, template_id=template_id)
        index_seconds = time.perf_counter() - index_start

        self.scheduler.record_ingested()
        return IngestionOutcome(
            record=record,
            template_id=template_id,
            is_new_template=is_new,
            parse_seconds=parse_seconds,
            index_seconds=index_seconds,
        )

    def backfill_templates(self, matcher: OnlineMatcher) -> int:
        """Re-match records stored before the first model existed.

        Returns the number of records that received a template id.  The
        paper accepts that pre-first-training logs have no templates; the
        service still backfills them after the first round so queries cover
        the whole topic.
        """
        updated = 0
        for record in self.topic.records():
            if record.template_id is None:
                result = matcher.match(record.raw)
                self.topic.set_template(record.record_id, result.template_id)
                updated += 1
        return updated
