"""Table 3 — grouping accuracy on LogHub-2.0 (14 large datasets, all methods).

ByteBrain's average GA on LogHub-2.0 is 0.90 in the paper — behind LILAC
(0.93) but ahead of every classic syntax-based parser, many of which degrade
sharply at scale.  Baselines parse a bounded sample of each corpus (see
conftest) so the full matrix stays laptop-sized; GA is largely insensitive to
the sample size because template frequencies are stationary.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import ALL_BASELINES, run_baseline, run_bytebrain
from benchmarks.conftest import BASELINE_SAMPLE_LINES
from repro.datasets.registry import LOGHUB2_NAMES
from repro.evaluation.reporting import banner, format_matrix, format_table

PAPER_AVERAGES = {
    "ByteBrain": 0.90,
    "Drain": 0.84,
    "AEL": 0.86,
    "IPLoM": 0.79,
    "Spell": 0.73,
    "LILAC": 0.93,
    "UniParser": 0.66,
    "LogPPT": 0.56,
    "LogSig": 0.18,
    "Logram": 0.34,
}


def _run_matrix(datasets):
    matrix = {}
    corpora = {name: datasets.get(name, "loghub2") for name in LOGHUB2_NAMES}
    matrix["ByteBrain"] = {
        name: round(run_bytebrain(corpus).grouping_accuracy, 3) for name, corpus in corpora.items()
    }
    for baseline in ALL_BASELINES:
        matrix[baseline] = {
            name: round(
                run_baseline(baseline, corpus, max_lines=BASELINE_SAMPLE_LINES).grouping_accuracy, 3
            )
            for name, corpus in corpora.items()
        }
    return matrix


def test_table3_grouping_accuracy_loghub2(benchmark, datasets, report):
    matrix = benchmark.pedantic(_run_matrix, args=(datasets,), rounds=1, iterations=1)

    averages = [
        {
            "method": method,
            "average_GA": round(float(np.mean(list(per_dataset.values()))), 3),
            "paper_average_GA": PAPER_AVERAGES.get(method, ""),
        }
        for method, per_dataset in matrix.items()
    ]
    averages.sort(key=lambda row: -row["average_GA"])

    text = banner("Table 3 — grouping accuracy on LogHub-2.0 (14 datasets)") + "\n"
    text += format_matrix(matrix, row_label="method") + "\n\n"
    text += format_table(averages)
    report("table3_accuracy_loghub2", text)

    by_method = {row["method"]: row["average_GA"] for row in averages}
    assert by_method["ByteBrain"] >= 0.85
    # ByteBrain stays ahead of the classic parsers that degrade at scale.
    for weak in ("LogSig", "MoLFI", "Logram", "LFA"):
        assert by_method["ByteBrain"] > by_method[weak]
    assert by_method["ByteBrain"] >= by_method["Drain"] - 0.02
