"""Initial grouping of logs before hierarchical clustering (paper §4.2).

Logs that cannot possibly share a template are separated early so that the
expensive clustering runs on small, independent groups (which is also what
makes per-group parallelism possible):

1. **Length** — logs with different token counts belong to different
   templates (a design decision the paper defends in §7).
2. **Prefix** — logs whose first ``k`` tokens differ are separated
   (``k`` is user-configured, 0 by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["GroupKey", "InitialGroup", "initial_grouping"]

#: Hashable key identifying an initial group: token count plus the first
#: ``k`` tokens.
GroupKey = Tuple[int, Tuple[str, ...]]


@dataclass
class InitialGroup:
    """One initial group: indices into the deduplicated record list."""

    key: GroupKey
    member_indices: List[int] = field(default_factory=list)

    @property
    def token_count(self) -> int:
        """Token count shared by every member of the group."""
        return self.key[0]

    @property
    def prefix(self) -> Tuple[str, ...]:
        """Prefix tokens shared by every member of the group."""
        return self.key[1]

    def __len__(self) -> int:
        return len(self.member_indices)


def group_key(tokens: Sequence[str], prefix_tokens: int = 0) -> GroupKey:
    """Compute the initial-group key for one token sequence."""
    if prefix_tokens <= 0:
        prefix: Tuple[str, ...] = ()
    else:
        prefix = tuple(tokens[:prefix_tokens])
    return (len(tokens), prefix)


def initial_grouping(
    token_lists: Sequence[Sequence[str]],
    prefix_tokens: int = 0,
) -> List[InitialGroup]:
    """Partition records into initial groups by length and prefix.

    Parameters
    ----------
    token_lists:
        Tokenized (and typically deduplicated) records.
    prefix_tokens:
        Number of leading tokens used for prefix grouping (paper default 0).

    Returns
    -------
    list of InitialGroup
        Groups in first-seen order; each holds indices into ``token_lists``.
    """
    groups: Dict[GroupKey, InitialGroup] = {}
    for index, tokens in enumerate(token_lists):
        key = group_key(tokens, prefix_tokens)
        group = groups.get(key)
        if group is None:
            group = InitialGroup(key=key)
            groups[key] = group
        group.member_indices.append(index)
    return list(groups.values())
