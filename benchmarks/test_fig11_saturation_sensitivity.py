"""Fig. 11 — grouping accuracy as a function of the saturation threshold.

The paper shows GA is fairly stable across a broad range of thresholds while
still giving the user real control over template precision.  Reproduced by
training once per dataset and re-grouping the matched templates at each
threshold (exactly what the query layer does — no re-parsing).
"""

from __future__ import annotations

import numpy as np

from repro.core.parser import ByteBrainParser
from repro.evaluation.metrics import grouping_accuracy
from repro.evaluation.reporting import banner, format_matrix

THRESHOLDS = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
FIG11_LOGHUB = ["Apache", "HDFS", "HPC", "Hadoop", "HealthApp", "Zookeeper"]
FIG11_LOGHUB2 = ["BGL", "Spark", "OpenStack"]


def _run(datasets):
    corpora = [(name, datasets.get(name, "loghub")) for name in FIG11_LOGHUB]
    corpora += [(f"{name} (2.0)", datasets.get(name, "loghub2")) for name in FIG11_LOGHUB2]
    matrix = {}
    for label, corpus in corpora:
        parser = ByteBrainParser()
        result = parser.parse_corpus(corpus.lines)
        matched = result.template_ids()
        row = {}
        for threshold in THRESHOLDS:
            resolved = [
                parser.model.resolve_threshold(template_id, threshold).template_id
                for template_id in matched
            ]
            row[str(threshold)] = round(grouping_accuracy(resolved, corpus.ground_truth), 3)
        # Number of result groups shrinks as the threshold drops (precision
        # slider semantics: coarser threshold -> fewer, broader templates).
        row["groups@0.9"] = len(parser.group_results(result.results, 0.9))
        row["groups@0.3"] = len(parser.group_results(result.results, 0.3))
        matrix[label] = row
    return matrix


def test_fig11_saturation_threshold_sensitivity(benchmark, datasets, report):
    matrix = benchmark.pedantic(_run, args=(datasets,), rounds=1, iterations=1)
    text = banner("Fig. 11 — grouping accuracy vs saturation threshold") + "\n"
    text += format_matrix(matrix, row_label="dataset")
    report("fig11_saturation_sensitivity", text)

    for label, row in matrix.items():
        # The threshold controls precision: fewer (or equal) result groups
        # at coarser thresholds.
        assert row["groups@0.3"] <= row["groups@0.9"]
        # Accuracy is reasonably stable over the paper's mid-range (0.5-0.8);
        # the spread within that band stays bounded for every dataset.
        band = [row[str(t)] for t in (0.5, 0.6, 0.7, 0.8)]
        assert max(band) - min(band) <= 0.6, (label, band)
    # Averaged over datasets, the mid-band accuracy is high.
    mid = np.mean([row["0.6"] for row in matrix.values()])
    assert mid >= 0.85
