"""Compare ByteBrain against the baseline parsers on a benchmark corpus.

A miniature version of the paper's Tables 2/3 and Fig. 2: pick a dataset,
run every parser on it, and print grouping accuracy and throughput.

Run with:  python examples/compare_parsers.py [dataset] [variant]
           e.g. python examples/compare_parsers.py BGL loghub2
"""

from __future__ import annotations

import sys

from repro import generate_dataset
from repro.baselines import BASELINE_REGISTRY, make_baseline
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import BaselineRunner, ByteBrainRunner


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "HDFS"
    variant = sys.argv[2] if len(sys.argv) > 2 else "loghub"
    dataset = generate_dataset(dataset_name, variant=variant)
    print(f"dataset: {dataset_name} ({variant}), {dataset.n_logs} lines, {dataset.n_templates} templates\n")

    rows = []
    run = ByteBrainRunner().run(dataset)
    rows.append(run.as_row())
    for name in sorted(BASELINE_REGISTRY):
        runner = BaselineRunner(lambda n=name: make_baseline(n), name=name)
        rows.append(runner.run(dataset).as_row())

    rows.sort(key=lambda row: -row["GA"])
    columns = ["parser", "GA", "FGA", "PA", "throughput", "seconds"]
    print(format_table(rows, columns))


if __name__ == "__main__":
    main()
