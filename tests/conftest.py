"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import ByteBrainConfig
from repro.core.parser import ByteBrainParser
from repro.datasets.registry import generate_dataset


@pytest.fixture(scope="session")
def hdfs_dataset():
    """Small HDFS-style corpus with ground truth (2,000 lines)."""
    return generate_dataset("HDFS", variant="loghub")


@pytest.fixture(scope="session")
def openssh_dataset():
    """Small OpenSSH-style corpus with ground truth (2,000 lines)."""
    return generate_dataset("OpenSSH", variant="loghub")


@pytest.fixture(scope="session")
def trained_hdfs_parser(hdfs_dataset):
    """A ByteBrain parser trained on the HDFS corpus (shared, read-mostly)."""
    parser = ByteBrainParser(ByteBrainConfig())
    parser.train(hdfs_dataset.lines)
    return parser


@pytest.fixture()
def default_config():
    """A fresh default configuration."""
    return ByteBrainConfig()


@pytest.fixture()
def wakelock_lines():
    """A handful of Android wakelock logs (the paper's running example)."""
    return [
        'release lock=2337 flg=0x0 tag="View Lock" name=systemui ws=null uid=1000 pid=2227',
        'release lock=187 flg=0x0 tag="*launch*" name=android ws=WS{10113} uid=1000 pid=881',
        'release lock=62 flg=0x0 tag="WindowManager" name=android ws=WS{1013} uid=1000 pid=881',
        'acquire lock=23 flags=0x1 tag="View Lock" name=systemui ws=null uid=1000 pid=2227',
        'acquire lock=1661 flags=0x1 tag="RILJ_ACK_WL" name=phone ws=null uid=1001 pid=2626',
    ]
