"""Matching-engine throughput benchmark (machine-readable).

Measures the online match phase (§4.8, the Fig. 6/7 hot path) on a
fig06-style synthetic LogHub-2.0 corpus and emits ``BENCH_matcher.json``.

Two sections are reported:

* ``match_phase`` — pure matching throughput: every preprocessed token tuple
  of the corpus (duplicates included, no dedup cache) is resolved to a
  template id.  This isolates the engine itself and includes
  ``seed_scalar``, a faithful re-implementation of the seed repository's
  per-log path (uncached blake2b hashing + dense comparison against every
  same-length template), which is the "before" number.
* ``end_to_end`` — ``OnlineMatcher.match_many`` over raw lines, i.e.
  preprocessing + two-level dedup + matching, per engine knob: batch
  (default), 4-thread shards, pruning off, scalar, and jit off
  (*ByteBrain w/o JIT*, pure-Python probing).

Every engine is cross-checked to return identical template ids.  Run from
the repo root::

    PYTHONPATH=src python benchmarks/bench_matcher.py [--n-logs 120000]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import hashing
from repro.core.config import WILDCARD, ByteBrainConfig
from repro.core.matcher import TemplateMatchIndex, OnlineMatcher
from repro.core.model import ParserModel
from repro.core.parallel import chunk_ranges, map_parallel
from repro.core.trainer import OfflineTrainer
from repro.datasets.catalog import SYSTEM_SPECS
from repro.datasets.synthetic import SyntheticLogGenerator

DEFAULT_N_LOGS = 120_000


class SeedScalarIndex:
    """The seed repository's match path, reproduced for the "before" number.

    One ``np.fromiter`` of *uncached* blake2b hashes per log, then a dense
    vectorised comparison against every template of that length — no shared
    hash cache, no candidate pruning, no batching.
    """

    def __init__(self, model: ParserModel) -> None:
        self._by_length: Dict[int, Tuple[np.ndarray, np.ndarray, List[int]]] = {}
        per_length: Dict[int, List] = {}
        for template in model.templates():
            per_length.setdefault(template.n_tokens, []).append(template)
        for length, templates in per_length.items():
            if length == 0:
                continue
            templates.sort(key=lambda t: (-t.saturation, t.template_id))
            codes = np.zeros((len(templates), length), dtype=np.uint64)
            wildcard_mask = np.zeros((len(templates), length), dtype=bool)
            ids: List[int] = []
            for row, template in enumerate(templates):
                ids.append(template.template_id)
                for pos, token in enumerate(template.tokens):
                    if token == WILDCARD:
                        wildcard_mask[row, pos] = True
                    else:
                        codes[row, pos] = hashing.hash_token_uncached(token)
            self._by_length[length] = (codes, wildcard_mask, ids)

    def match(self, tokens: Sequence[str]) -> Optional[int]:
        entry = self._by_length.get(len(tokens))
        if entry is None:
            return None
        codes, wildcard_mask, ids = entry
        encoded = np.fromiter(
            (hashing.hash_token_uncached(token) for token in tokens),
            dtype=np.uint64,
            count=len(tokens),
        )
        hits = ((codes == encoded) | wildcard_mask).all(axis=1)
        index = int(np.argmax(hits))
        if not hits[index]:
            return None
        return ids[index]


def build_corpus(n_logs: int, system: str = "Spark") -> List[str]:
    """Fig. 6-style synthetic LogHub-2.0 corpus (heavy Zipf duplication)."""
    generator = SyntheticLogGenerator(SYSTEM_SPECS[system])
    return generator.generate(n_logs=n_logs, variant="loghub2").lines


def _timed(fn) -> Tuple[float, object]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def measure_match_phase(
    model: ParserModel, tuples: List[Tuple[str, ...]], block_bytes: int
) -> Tuple[Dict[str, Dict[str, object]], Dict[str, List[Optional[int]]]]:
    """Pure matching throughput over every token tuple of the corpus."""
    index = TemplateMatchIndex(model)
    seed_index = SeedScalarIndex(model)
    n = len(tuples)

    def batch_parallel(parallelism: int) -> List[Optional[int]]:
        shards = chunk_ranges(n, parallelism)
        parts = map_parallel(
            lambda bounds: index.match_batch(
                tuples[bounds[0] : bounds[1]], block_bytes=block_bytes
            ),
            shards,
            parallelism,
        )
        return [tid for part in parts for tid in part]

    engines = {
        "seed_scalar": lambda: [seed_index.match(t) for t in tuples],
        "scalar": lambda: [index.match(t) for t in tuples],
        "batch": lambda: index.match_batch(tuples, block_bytes=block_bytes),
        "batch_no_pruning": lambda: index.match_batch(
            tuples, block_bytes=block_bytes, prune=False
        ),
        "batch_parallel4": lambda: batch_parallel(4),
    }
    results: Dict[str, Dict[str, object]] = {}
    ids_by_engine: Dict[str, List[Optional[int]]] = {}
    for name, engine in engines.items():
        seconds, ids = _timed(engine)
        ids_by_engine[name] = ids
        results[name] = {
            "seconds": round(seconds, 4),
            "logs_per_second": round(n / seconds) if seconds > 0 else None,
        }
    return results, ids_by_engine


def measure_end_to_end(
    model_json: str, preprocessor, lines: List[str]
) -> Tuple[Dict[str, Dict[str, object]], Dict[str, List[int]]]:
    """Full ``match_many`` (preprocess + dedup + match) per engine knob."""
    modes = {
        "batch": {},
        "batch_parallel4": {"parallelism": 4},
        "batch_no_pruning": {"candidate_pruning_enabled": False},
        "scalar": {"batch_matching_enabled": False},
        # Pure-Python template probing (*ByteBrain w/o JIT*); viable here
        # because dedup collapses the corpus before matching.
        "scalar_no_jit": {"batch_matching_enabled": False, "jit_enabled": False},
    }
    results: Dict[str, Dict[str, object]] = {}
    ids_by_mode: Dict[str, List[int]] = {}
    for mode, overrides in modes.items():
        # A fresh model per mode keeps temporary-template ids comparable.
        model = ParserModel.from_json(model_json)
        matcher = OnlineMatcher(
            model, config=ByteBrainConfig(**overrides), preprocessor=preprocessor
        )
        seconds, matched = _timed(lambda: matcher.match_many(lines))
        ids_by_mode[mode] = [r.template_id for r in matched]
        results[mode] = {
            "seconds": round(seconds, 4),
            "logs_per_second": round(len(lines) / seconds) if seconds > 0 else None,
        }
    return results, ids_by_mode


def run(n_logs: int = DEFAULT_N_LOGS, output: Optional[Path] = None) -> Dict[str, object]:
    lines = build_corpus(n_logs)
    config = ByteBrainConfig()
    trainer = OfflineTrainer(config)
    training = trainer.train(lines)
    model_json = training.model.to_json()

    tuples = [
        tokens if tokens else ("<empty>",)
        for tokens in trainer.preprocessor.process_many(lines)
    ]

    match_phase, ids_by_engine = measure_match_phase(
        ParserModel.from_json(model_json), tuples, config.match_block_bytes
    )
    reference = ids_by_engine["seed_scalar"]
    for name, ids in ids_by_engine.items():
        if ids != reference:
            raise AssertionError(f"engine {name!r} diverged from the seed scalar path")

    end_to_end, ids_by_mode = measure_end_to_end(model_json, trainer.preprocessor, lines)
    mode_reference = ids_by_mode["batch"]
    for name, ids in ids_by_mode.items():
        if ids != mode_reference:
            raise AssertionError(f"mode {name!r} diverged from the batch engine")

    batch_tp = match_phase["batch"]["logs_per_second"]
    speedups = {
        f"batch_vs_{name}": round(batch_tp / data["logs_per_second"], 2)
        for name, data in match_phase.items()
        if name != "batch" and data["logs_per_second"]
    }

    report: Dict[str, object] = {
        "benchmark": "bench_matcher",
        "corpus": {
            "system": "Spark",
            "variant": "loghub2",
            "n_logs": len(lines),
            "n_unique_tuples": len(set(tuples)),
            "n_templates_trained": len(training.model),
        },
        "train_seconds": round(training.duration_seconds, 2),
        "hash_cache_tokens": hashing.cache_info()["n_tokens"],
        "match_phase": match_phase,
        "match_phase_speedups": speedups,
        "end_to_end": end_to_end,
    }
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
    return report


#: CI floor derivation for ``--check-floor``: the measured batch-vs-scalar
#: speedup must stay above this fraction of the checked-in reference run.
#: Deliberately conservative — CI runners are noisy, shared and slower
#: than the machine that produced the reference; the job exists to catch
#: "the batch engine stopped being meaningfully faster", not 10% drift.
FLOOR_FRACTION = 0.3
#: The floor never drops below this absolute speedup: batch matching that
#: is not even 1.2x the scalar path is a regression on any hardware.
FLOOR_MINIMUM = 1.2
#: Corpus size for ``--smoke`` (CI PR gate): tiny corpus, single repeat,
#: runs in seconds instead of minutes.
SMOKE_N_LOGS = 8_000


def check_floor(report: Dict[str, object], reference_path: Path) -> int:
    """Compare this run's batch-vs-scalar speedup against the reference.

    Returns a process exit code: 0 when the measured speedup clears the
    conservative floor derived from the checked-in reference artifact,
    1 when it regressed below it.
    """
    reference = json.loads(reference_path.read_text())
    reference_speedup = float(reference["match_phase_speedups"]["batch_vs_scalar"])
    floor = max(FLOOR_MINIMUM, reference_speedup * FLOOR_FRACTION)
    measured = float(report["match_phase_speedups"]["batch_vs_scalar"])
    print(
        f"floor check: measured batch_vs_scalar {measured:.2f}x, reference "
        f"{reference_speedup:.2f}x, floor {floor:.2f}x "
        f"(= max({FLOOR_MINIMUM}, {FLOOR_FRACTION} * reference))"
    )
    if measured < floor:
        print(
            f"FAIL: batch matching speedup {measured:.2f}x fell below the "
            f"floor {floor:.2f}x — the vectorised engine regressed",
            file=sys.stderr,
        )
        return 1
    print("floor check passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-logs", type=int, default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI smoke mode: {SMOKE_N_LOGS}-log corpus, one repeat, no "
             "artifact written unless --output is given explicitly",
    )
    parser.add_argument(
        "--check-floor",
        type=Path,
        metavar="REFERENCE_JSON",
        help="compare batch-vs-scalar speedup against a checked-in "
             "BENCH_matcher.json and exit 1 below the conservative floor",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args()
    n_logs = args.n_logs if args.n_logs is not None else (
        SMOKE_N_LOGS if args.smoke else DEFAULT_N_LOGS
    )
    output = args.output
    if output is None and not args.smoke:
        output = Path(__file__).resolve().parent / "BENCH_matcher.json"
    report = run(n_logs=n_logs, output=output)
    print(f"corpus: {report['corpus']}")
    print("match phase (tuples -> template ids):")
    for name, data in report["match_phase"].items():
        print(f"  {name:>18}: {data['logs_per_second']:>10} logs/s")
    print(f"speedups: {report['match_phase_speedups']}")
    print("end to end (match_many):")
    for name, data in report["end_to_end"].items():
        print(f"  {name:>18}: {data['logs_per_second']:>10} logs/s")
    if output is not None:
        print(f"written: {output}")
    if args.check_floor is not None:
        return check_floor(report, args.check_floor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
