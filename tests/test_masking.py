"""Unit tests for §4.1.2 common variable replacement."""

import pytest

from repro.core.config import WILDCARD
from repro.core.masking import DEFAULT_MASKING_RULES, MaskingRule, VariableMasker


@pytest.fixture()
def masker():
    return VariableMasker()


class TestBuiltinRules:
    def test_ipv4_masked(self, masker):
        assert masker.mask("from 10.0.12.7 port") == f"from {WILDCARD} port"

    def test_ipv4_with_port_masked_as_one_variable(self, masker):
        assert masker.mask("dest 10.0.12.7:50010 ok") == f"dest {WILDCARD} ok"

    def test_uuid_masked(self, masker):
        text = "req 123e4567-e89b-42d3-a456-426614174000 done"
        assert masker.mask(text) == f"req {WILDCARD} done"

    def test_md5_masked(self, masker):
        assert masker.mask("hash d41d8cd98f00b204e9800998ecf8427e end") == f"hash {WILDCARD} end"

    def test_iso_timestamp_masked(self, masker):
        assert masker.mask("at 2024-05-06 12:13:14 started") == f"at {WILDCARD} started"

    def test_hex_literal_masked(self, masker):
        assert masker.mask("flags 0x1f set") == f"flags {WILDCARD} set"

    def test_plain_number_masked(self, masker):
        assert masker.mask("retried 17 times") == f"retried {WILDCARD} times"

    def test_number_attached_to_word_not_masked(self, masker):
        # "node07" is an identifier, not a standalone number.
        assert masker.mask("host node07 up") == "host node07 up"

    def test_block_id_masked(self, masker):
        assert masker.mask("blk_9082931 deleted") == f"{WILDCARD} deleted"

    def test_size_with_unit_masked(self, masker):
        assert masker.mask("read 512MB done") == f"read {WILDCARD} done"

    def test_constant_text_unchanged(self, masker):
        assert masker.mask("session opened for user root") == "session opened for user root"

    def test_mixed_date_like_number_run_not_collapsed(self, masker):
        # Regression guard: "1234-56/78" must not be treated as a date.
        masked = masker.mask("app-1234-56/78 running")
        assert masked == f"app-{WILDCARD}-{WILDCARD}/{WILDCARD} running"

    def test_mask_many_matches_mask(self, masker):
        lines = ["from 10.0.0.1", "retried 3 times", "no variables here"]
        assert masker.mask_many(lines) == [masker.mask(line) for line in lines]


class TestCustomRules:
    def test_user_rule_applied(self):
        masker = VariableMasker(extra_rules=[("session", r"session-[a-z0-9]+")])
        assert masker.mask("open session-ab12f now") == f"open {WILDCARD} now"

    def test_user_rules_take_precedence(self):
        masker = VariableMasker(extra_rules=[("port", r"port \d+")])
        # The whole "port 8080" phrase is replaced before the number rule sees it.
        assert masker.mask("on port 8080 ok") == f"on {WILDCARD} ok"

    def test_builtin_rules_can_be_disabled(self):
        masker = VariableMasker(include_builtin=False)
        assert masker.mask("retried 17 times from 10.0.0.1") == "retried 17 times from 10.0.0.1"
        assert masker.rule_names() == []

    def test_rule_names_in_order(self):
        masker = VariableMasker(extra_rules=[("custom", r"zzz")])
        names = masker.rule_names()
        assert names[0] == "custom"
        assert set(name for name, _ in DEFAULT_MASKING_RULES).issubset(set(names[1:]))

    def test_single_rule_apply(self):
        rule = MaskingRule("digits", r"\d+")
        assert rule.apply("a 12 b 345") == f"a {WILDCARD} b {WILDCARD}"

    def test_custom_wildcard_token(self):
        masker = VariableMasker(wildcard="<VAR>")
        assert masker.mask("retried 17 times") == "retried <VAR> times"
