"""Fig. 4 — log duplication before and after common-variable replacement.

The paper motivates deduplication by showing the CDF of per-record occurrence
counts across LogHub-2.0 datasets, with duplication increasing sharply after
variable replacement.  Reproduced as duplication statistics (unique fraction
and occurrence-count percentiles) with and without masking for the same four
systems the paper plots.
"""

from __future__ import annotations

import numpy as np

from repro.core.dedup import deduplicate
from repro.core.masking import VariableMasker
from repro.core.tokenizer import Tokenizer
from repro.evaluation.reporting import banner, format_table

FIG4_DATASETS = ["Linux", "Thunderbird", "Spark", "Apache"]


def _duplication_stats(lines, with_replacement):
    tokenizer = Tokenizer()
    if with_replacement:
        masker = VariableMasker()
        lines = masker.mask_many(lines)
    token_lists = tokenizer.tokenize_many(lines)
    counts = np.asarray(deduplicate(token_lists).counts, dtype=float)
    return {
        "unique_fraction": len(counts) / max(len(lines), 1),
        "p50_count": float(np.percentile(counts, 50)),
        "p90_count": float(np.percentile(counts, 90)),
        "max_count": float(counts.max()),
    }


def _collect(datasets):
    rows = []
    for name in FIG4_DATASETS:
        corpus = datasets.get(name, "loghub2")
        without = _duplication_stats(corpus.lines, with_replacement=False)
        with_mask = _duplication_stats(corpus.lines, with_replacement=True)
        rows.append(
            {
                "dataset": name,
                "n_logs": corpus.n_logs,
                "unique_frac_raw": round(without["unique_fraction"], 4),
                "unique_frac_masked": round(with_mask["unique_fraction"], 4),
                "p90_count_raw": without["p90_count"],
                "p90_count_masked": with_mask["p90_count"],
                "max_count_raw": without["max_count"],
                "max_count_masked": with_mask["max_count"],
            }
        )
    return rows


def test_fig04_duplication_cdf(benchmark, datasets, report):
    rows = benchmark.pedantic(_collect, args=(datasets,), rounds=1, iterations=1)
    text = banner("Fig. 4 — duplication with and without variable replacement") + "\n"
    text += format_table(rows)
    report("fig04_duplication_cdf", text)

    for row in rows:
        # Replacement can only merge records, so duplication increases.
        assert row["unique_frac_masked"] <= row["unique_frac_raw"] + 1e-9
        assert row["max_count_masked"] >= row["max_count_raw"]
        # Logs are heavily duplicated to begin with (the paper's premise).
        assert row["unique_frac_raw"] < 0.8
