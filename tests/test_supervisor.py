"""Shard-worker supervisor: restart, resync, quarantine, exactly-once.

Fault-injection suite (``slow`` marker): the CI ``reliability`` job runs
it; the default unit step skips it.
"""

import threading

import pytest

from repro.core import failpoints
from repro.core.config import ByteBrainConfig
from repro.service.recovery import RecoveredRuntime
from repro.service.service import LogParsingService

pytestmark = pytest.mark.slow

TOPIC = "orders"

#: Most fault scenarios here run against both shard transports.  The
#: process backend propagates failpoint specs to children **at spawn**
#: (``failpoints.active_specs()``), so parametrized tests arm their
#: failpoints *before* building the runtime — equivalent for threads,
#: mandatory for processes.  Tests that rely on submit-return being the
#: durability point (it is for threads, the drain barrier is for
#: processes) or on re-arming failpoints against live workers stay
#: thread-only; their process analogs live in ``test_process_runtime.py``.
BACKENDS = ["thread", "process"]


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.clear_all()
    yield
    failpoints.clear_all()


def fast_restart_config(**overrides) -> ByteBrainConfig:
    defaults = dict(
        worker_restart_max_attempts=3,
        worker_restart_backoff=0.005,
        worker_restart_backoff_max=0.02,
    )
    defaults.update(overrides)
    return ByteBrainConfig(**defaults)


def make_runtime(tmp_path, config=None, wal=True, backend="thread", **kwargs):
    service = LogParsingService(
        config=config or fast_restart_config(), store_root=tmp_path / "store"
    )
    service.create_topic(TOPIC)
    kwargs.setdefault("n_shards", 1)
    kwargs.setdefault("micro_batch_size", 8)
    kwargs.setdefault("max_batch_delay", 0.002)
    if wal:
        kwargs.setdefault("wal_dir", tmp_path / "wal")
    return service, service.sharded_runtime(backend=backend, **kwargs)


def raw_line(i: int) -> str:
    return f"order {i} placed by user {i % 7} total {i % 31} cents"


def stored_counts(service):
    counts = {}
    for record in service.topic(TOPIC).topic.records():
        counts[record.raw] = counts.get(record.raw, 0) + 1
    return counts


class TestSupervisedRestart:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transient_crash_is_restarted_and_no_record_lost(self, tmp_path, backend):
        failpoints.configure("worker.batch", "raise", nth=3, times=1)
        service, runtime = make_runtime(tmp_path, backend=backend)
        with runtime:
            for i in range(200):
                runtime.submit(TOPIC, raw_line(i), float(i))
            runtime.drain()
            counts = stored_counts(service)
            assert len(counts) == 200
            assert all(n == 1 for n in counts.values()), {
                raw: n for raw, n in counts.items() if n > 1
            }
            stats = runtime.stats()
            assert stats["restarts"] >= 1
            assert stats["degraded_shards"] == []
            assert stats["shards"][0]["state"] == "running"
            assert any("restart" in message for message in runtime.errors)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_repeated_crashes_with_wal_stay_exactly_once(self, tmp_path, backend):
        """Three separate mid-batch crashes; the WAL resync + seq filter
        must land every acked record exactly once."""
        failpoints.configure("worker.batch", "raise", nth=2, times=3)
        service, runtime = make_runtime(tmp_path, backend=backend)
        with runtime:
            for i in range(300):
                runtime.submit(TOPIC, raw_line(i), float(i))
            runtime.drain()
            counts = stored_counts(service)
            assert len(counts) == 300
            duplicates = {raw: n for raw, n in counts.items() if n > 1}
            assert not duplicates, duplicates
            assert runtime.stats()["restarts"] == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_quarantine_after_budget_exhausted(self, tmp_path, backend):
        failpoints.configure("worker.batch", "raise")  # every batch dies
        service, runtime = make_runtime(tmp_path, backend=backend)
        runtime.submit(TOPIC, raw_line(0), 0.0)
        with pytest.raises(RuntimeError, match="shard worker died"):
            runtime.drain()
        stats = runtime.stats()
        assert stats["degraded_shards"] == [0]
        assert stats["shards"][0]["state"] == "quarantined"
        assert stats["shards"][0]["last_failure"] is not None
        # The quarantine error carries the shard index and the traceback.
        assert any(
            "shard 0 worker died" in message and "FailpointError" in message
            for message in runtime.errors
        )
        # Load shed: producers fail fast instead of backing up.
        with pytest.raises(RuntimeError, match="closed"):
            runtime.submit(TOPIC, raw_line(1), 1.0)
        with pytest.raises(RuntimeError, match="shard worker died"):
            runtime.shutdown()

    def test_quarantined_records_remain_recoverable(self, tmp_path):
        """Records acked before a quarantine survive in the WAL: a
        recovery replays them even though the live worker never applied
        them."""
        service, runtime = make_runtime(tmp_path)
        acked = []
        for i in range(50):
            runtime.submit(TOPIC, raw_line(i), float(i))
            acked.append(raw_line(i))
        failpoints.configure("worker.batch", "raise")
        runtime.submit(TOPIC, raw_line(50), 50.0)
        acked.append(raw_line(50))
        with pytest.raises(RuntimeError, match="shard worker died"):
            runtime.shutdown()
        failpoints.clear_all()
        with RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=fast_restart_config()
        ) as recovered:
            counts = {}
            for record in recovered.service.topic(TOPIC).topic.records():
                counts[record.raw] = counts.get(record.raw, 0) + 1
            for raw in acked:
                assert counts.get(raw) == 1, f"acked record lost or duplicated: {raw}"

    def test_restart_budget_resets_after_healthy_run(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.service.runtime._HEALTHY_RESET_SECONDS", 0.0)
        service, runtime = make_runtime(tmp_path)
        with runtime:
            # 5 transient crashes against a budget of 3: only survivable
            # because every healthy incarnation resets the budget.
            failpoints.configure("worker.batch", "raise", nth=1, times=1)
            for round_index in range(5):
                base = round_index * 40
                for i in range(base, base + 40):
                    runtime.submit(TOPIC, raw_line(i), float(i))
                runtime.drain()
                failpoints.configure("worker.batch", "raise", nth=1, times=1)
            failpoints.clear_all()
            counts = stored_counts(service)
            assert len(counts) == 200
            assert runtime.stats()["restarts"] == 5
            assert runtime.stats()["degraded_shards"] == []


class TestWalFaults:
    def test_torn_append_fails_submit_but_recovers_cleanly(self, tmp_path):
        service, runtime = make_runtime(tmp_path)
        failpoints.configure("wal.append", "torn", nth=5, times=1, bytes_written=7)
        acked = []
        failed = 0
        for i in range(100):
            try:
                runtime.submit(TOPIC, raw_line(i), float(i))
                acked.append(raw_line(i))
            except Exception:
                failed += 1
        assert failed == 1
        runtime.drain()
        runtime.shutdown()
        with RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=fast_restart_config()
        ) as recovered:
            # The torn frame was repaired in place: replay sees a clean
            # log (no torn segments, no corruption) holding every acked
            # record exactly once.
            assert recovered.report.warnings == []
            counts = {}
            for record in recovered.service.topic(TOPIC).topic.records():
                counts[record.raw] = counts.get(record.raw, 0) + 1
            assert sorted(counts) == sorted(acked)
            assert all(n == 1 for n in counts.values())

    def test_sync_failure_in_always_mode_discards_unacked_frame(self, tmp_path):
        config = fast_restart_config(wal_sync_mode="always")
        service, runtime = make_runtime(tmp_path, config=config)
        failpoints.configure("wal.sync", "raise", nth=3, times=1)
        acked = []
        failed = 0
        for i in range(20):
            try:
                runtime.submit(TOPIC, raw_line(i), float(i))
                acked.append(raw_line(i))
            except Exception:
                failed += 1
        assert failed == 1
        runtime.drain()
        runtime.shutdown()
        with RecoveredRuntime.open(
            tmp_path / "store", tmp_path / "wal", config=config
        ) as recovered:
            stored = sorted(r.raw for r in recovered.service.topic(TOPIC).topic.records())
            # The failed submit's frame must not resurface: its seq was
            # re-minted for the next acked record and replay must keep
            # that one.
            assert stored == sorted(acked)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_crash_mid_batch_under_wal_io_faults(self, tmp_path, backend):
        """The acceptance scenario: a worker killed mid-batch restarts
        under injected WAL IO faults with no lost or duplicated acked
        records."""
        failpoints.configure("worker.batch", "raise", nth=4, times=2)
        failpoints.configure("wal.sync", "raise", nth=2, times=1)
        service, runtime = make_runtime(tmp_path, backend=backend)
        acked = []
        for i in range(250):
            try:
                runtime.submit(TOPIC, raw_line(i), float(i))
                acked.append(raw_line(i))
            except Exception:
                pass  # a failed submit is allowed to lose its record
        runtime.drain()
        counts = stored_counts(service)
        for raw in acked:
            assert counts.get(raw) == 1, f"acked record lost or duplicated: {raw}"
        runtime.shutdown()


class TestBackpressureDuringRestart:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_blocked_producer_survives_a_restart(self, tmp_path, backend):
        """A producer blocked on backpressure while the worker is down
        must neither deadlock nor lose its record once the restarted
        worker drains the queue."""
        failpoints.configure("worker.batch", "raise", nth=2, times=1)
        service, runtime = make_runtime(tmp_path, queue_capacity=16, backend=backend)
        errors = []
        done = threading.Event()

        def produce():
            try:
                for i in range(400):
                    runtime.submit(TOPIC, raw_line(i), float(i))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)
            finally:
                done.set()

        thread = threading.Thread(target=produce)
        thread.start()
        assert done.wait(timeout=30.0), "producer deadlocked across the restart"
        thread.join()
        assert errors == []
        runtime.drain()
        counts = stored_counts(service)
        assert len(counts) == 400
        assert all(n == 1 for n in counts.values())
        runtime.shutdown()
